//! CORGI: user-customizable and robust Geo-Indistinguishability (EDBT 2023).
//!
//! This umbrella crate re-exports the whole workspace under one roof:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`geo`] | `corgi-geo` | Validated coordinates, haversine distances, local projections |
//! | [`hexgrid`] | `corgi-hexgrid` | Aperture-7 hexagonal hierarchical spatial index (H3-like) |
//! | [`graph`] | `corgi-graph` | Mobility-graph approximation of the Geo-Ind constraint set (§4.2) |
//! | [`lp`] | `corgi-lp` | From-scratch LP solvers: simplex, interior point, block-angular |
//! | [`core`] | `corgi-core` | Location tree, policies, LP formulation, robust matrices, precision reduction |
//! | [`datagen`] | `corgi-datagen` | Synthetic Gowalla-like check-ins, priors and location metadata |
//! | [`framework`] | `corgi-framework` | Serving stack (`MatrixService`: generator → cache → instrumentation), versioned wire protocol, on-device customization (§5) |
//!
//! # Minimal flow: grid → matrix → report
//!
//! Build a spatial index, solve the ε-Geo-Ind LP for an obfuscation matrix
//! over the user's privacy subtree, and verify the privacy guarantee:
//!
//! ```
//! use corgi::core::geoind::check_all_pairs;
//! use corgi::core::{LocationTree, ObfuscationProblem, SolverKind};
//! use corgi::geo::LatLng;
//! use corgi::hexgrid::{HexGrid, HexGridConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Grid + location tree over the area of interest (§3.1).
//! let grid = HexGrid::new(HexGridConfig::san_francisco())?;
//! let tree = LocationTree::new(grid);
//!
//! // 2. The 7-leaf subtree of the privacy forest (privacy level 1) that
//! //    contains the user's real location (§3.2).
//! let user = LatLng::new(37.7749, -122.4194)?;
//! let subtree = tree.subtree_containing_point(&user, 1)?;
//!
//! // 3. Solve the Geo-Ind LP for an obfuscation matrix over that subtree,
//! //    with a uniform prior and every cell as a target (§4.1–§4.2).
//! let k = subtree.leaf_count();
//! let prior = vec![1.0 / k as f64; k];
//! let targets: Vec<usize> = (0..k).collect();
//! let epsilon = 15.0; // 1/km
//! let problem = ObfuscationProblem::new(&tree, &subtree, &prior, &targets, epsilon, true)?;
//! let matrix = problem.solve(None, SolverKind::Auto)?;
//!
//! // 4. Report: the matrix is row-stochastic and satisfies ε-Geo-Ind on
//! //    every ordered pair of cells (Definition 2.1).
//! matrix.check_stochastic(1e-9)?;
//! let report = check_all_pairs(&matrix, problem.distances(), epsilon, 1e-7);
//! assert!(report.is_satisfied());
//! # Ok(())
//! # }
//! ```
//!
//! For the full pipeline — synthetic check-in data, customization policies,
//! robust matrices, pruning and precision reduction, and the client/server
//! split — see `examples/quickstart.rs`, `examples/policy_customization.rs`
//! and `examples/rideshare_pickup.rs`.

#![warn(missing_docs)]

pub use corgi_core as core;
pub use corgi_datagen as datagen;
pub use corgi_framework as framework;
pub use corgi_geo as geo;
pub use corgi_graph as graph;
pub use corgi_hexgrid as hexgrid;
pub use corgi_lp as lp;
