//! Umbrella crate re-exporting the CORGI public API.
pub use corgi_core as core;
pub use corgi_datagen as datagen;
pub use corgi_framework as framework;
pub use corgi_geo as geo;
pub use corgi_graph as graph;
pub use corgi_hexgrid as hexgrid;
pub use corgi_lp as lp;
