//! Cross-solve warm-start contract on the serving workload: Algorithm 1's
//! robust refinement chain for a K = 49 obfuscation key (recompute the
//! reserved privacy budget from the last matrix, re-solve the tightened LP,
//! ten times) must cost materially fewer total interior-point iterations as
//! the warm-chained incremental engine than as the pre-incremental baseline
//! of independent full-tolerance cold solves — while still shipping a
//! full-tolerance Optimal final matrix with an equivalent objective.
//!
//! Two mechanisms compound, mirroring `generate_robust_matrix_warm`:
//!
//! * **warm chaining** — every solve seeds from the previous converged
//!   iterate (the reserved-budget fixed point oscillates, so this alone only
//!   trims the head of each solve);
//! * **the tolerance ladder** — intermediate matrices exist only to feed the
//!   Eq. 14 upper-bound *approximation*, so solving them past 1e-4 buys
//!   nothing but tail iterations of the interior point's slow final grind.
//!   Only the last LP — the one whose solution ships — runs at full
//!   tolerance.
//!
//! This is also the workload the `warm_vs_cold_ipm/k49` bench pair times and
//! the perf gate caps.
use corgi_bench::{ExperimentContext, DEFAULT_EPSILON};
use corgi_core::robust::reserved_privacy_budget_approx;
use corgi_core::ObfuscationMatrix;
use corgi_lp::{BlockAngularSolver, InteriorPointOptions, LpSolver, SolveStatus, WarmStart};

const REFINEMENTS: usize = 10;
const DELTA: usize = 2;

#[test]
fn warm_chained_refinement_engine_halves_total_iterations() {
    let ctx = ExperimentContext::standard();
    let problem = ctx.problem_for_n_locations(49, DEFAULT_EPSILON, true);
    let full = InteriorPointOptions::default();
    let relaxed = InteriorPointOptions {
        tolerance: 1e-4,
        ..full
    };

    let matrix_of = |x: Vec<f64>| {
        ObfuscationMatrix::from_lp_solution(problem.cells().to_vec(), x).expect("valid matrix")
    };

    // --- Pre-incremental engine: every solve cold, at full tolerance. ---
    let (lp0, blocks0) = problem.build_lp(None).expect("base LP builds");
    let mut cold_iters = Vec::new();
    let s = BlockAngularSolver::new(blocks0.clone(), full)
        .solve(&lp0)
        .expect("cold base solve");
    assert_eq!(s.status, SolveStatus::Optimal);
    cold_iters.push(s.iterations);
    let mut matrix = matrix_of(s.x);
    let mut cold_final_objective = s.objective;
    for _ in 1..=REFINEMENTS {
        let rpb =
            reserved_privacy_budget_approx(&matrix, problem.distances(), problem.epsilon(), DELTA);
        let (lp, blocks) = problem.build_lp(Some(&rpb)).expect("refined LP builds");
        let s = BlockAngularSolver::new(blocks, full)
            .solve(&lp)
            .expect("cold refinement");
        assert_eq!(s.status, SolveStatus::Optimal);
        cold_iters.push(s.iterations);
        cold_final_objective = s.objective;
        matrix = matrix_of(s.x);
    }

    // --- Incremental engine: warm-chained, tolerance ladder. ---
    let mut warm_iters = Vec::new();
    let s = BlockAngularSolver::new(blocks0, relaxed)
        .solve(&lp0)
        .expect("relaxed base solve");
    assert_eq!(s.status, SolveStatus::Optimal);
    warm_iters.push(s.iterations);
    let mut warm: Option<WarmStart> = s.warm;
    let mut matrix = matrix_of(s.x);
    let mut warm_final_objective = s.objective;
    for t in 1..=REFINEMENTS {
        let rpb =
            reserved_privacy_budget_approx(&matrix, problem.distances(), problem.epsilon(), DELTA);
        let (lp, blocks) = problem.build_lp(Some(&rpb)).expect("refined LP builds");
        let opts = if t == REFINEMENTS { full } else { relaxed };
        let s = BlockAngularSolver::new(blocks, opts)
            .solve_with_warm(&lp, warm.as_ref())
            .expect("warm refinement");
        assert_eq!(
            s.status,
            SolveStatus::Optimal,
            "warm refinement {t} not optimal after {} iterations",
            s.iterations
        );
        warm_iters.push(s.iterations);
        warm = s.warm.or(warm);
        warm_final_objective = s.objective;
        matrix = matrix_of(s.x);
    }

    let cold_total: usize = cold_iters.iter().sum();
    let warm_total: usize = warm_iters.iter().sum();
    println!("cold engine iterations: {cold_iters:?} (total {cold_total})");
    println!("warm engine iterations: {warm_iters:?} (total {warm_total})");
    println!("final objectives: cold {cold_final_objective} warm {warm_final_objective}");

    // The two engines walk slightly different refinement paths (the ladder
    // perturbs intermediate matrices within the Eq. 14 approximation's own
    // error), so the final full-tolerance objectives agree to refinement
    // noise, not machine precision.  The reserved-budget fixed point
    // oscillates at O(1) in a few entries, so "refinement noise" is a couple
    // of percent of the objective.
    let scale = 1.0 + cold_final_objective.abs();
    assert!(
        (warm_final_objective - cold_final_objective).abs() / scale < 0.05,
        "engines disagree: warm {warm_final_objective} vs cold {cold_final_objective}"
    );
    assert!(
        warm_total * 2 <= cold_total,
        "incremental engine should at least halve total iterations: {warm_total} vs {cold_total}"
    );
}
