//! Perf-gated benchmarks of the `corgi-lp` linear-algebra core: Cholesky
//! factorization (blocked vs. scalar reference), fused multi-RHS triangular
//! solves (vs. the per-column allocating reference), and the block-angular
//! interior-point method on the paper's obfuscation LPs at K ∈ {49, 343}.
//!
//! The K = 343 comparison caps the iteration count: both kernel strategies
//! perform the same per-iteration arithmetic (they agree to rounding, see
//! `crates/lp/tests/solver_agreement.rs`), so the per-iteration ratio *is* the
//! end-to-end ratio, and capping keeps the reference side runnable — at full
//! convergence the pre-PR kernels need tens of minutes at this size.
//!
//! CI (heavy lane) runs this file with `CORGI_BENCH_JSON` pointing at
//! `BENCH_results.json` and gates the medians against the checked-in
//! `BENCH_baseline.json` via the `perf_gate` binary; see README § Performance
//! for how to refresh the baseline.

use corgi_bench::{ExperimentContext, DEFAULT_EPSILON};
use corgi_lp::{
    BlockAngularSolver, DenseMatrix, InteriorPointOptions, KernelStrategy, LpProblem, LpSolver,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Deterministic SPD matrix `A = BᵀB + n·I` of size `n`, shaped like a
/// late-iteration Newton block (strongly diagonally dominant).
fn random_spd(n: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut v = if i == j { n as f64 } else { 0.0 };
            for k in 0..n {
                v += b[k * n + i] * b[k * n + j];
            }
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

fn options(kernels: KernelStrategy) -> InteriorPointOptions {
    InteriorPointOptions {
        kernels,
        ..InteriorPointOptions::default()
    }
}

/// The obfuscation LP over the `k` leaves closest to the region center, with
/// its per-column variable blocks.
fn obfuscation_lp(ctx: &ExperimentContext, k: usize) -> (LpProblem, Vec<Vec<usize>>) {
    let problem = ctx.problem_for_n_locations(k, DEFAULT_EPSILON, true);
    problem.build_lp(None).expect("LP builds")
}

fn bench_cholesky_factorize(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_factorize");
    for &n in &[49usize, 343] {
        // The 49×49 factorization sits in the microsecond range where timer
        // noise dominates small sample counts; more samples keep the gated
        // median's coefficient of variation well under the 20% gate tolerance.
        group.sample_size(if n < 100 { 60 } else { 10 });
        let a = random_spd(n, 7);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &a, |b, a| {
            b.iter(|| {
                let mut m = a.clone();
                m.cholesky_in_place(1e-10).expect("SPD");
                m
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &a, |b, a| {
            b.iter(|| {
                let mut m = a.clone();
                m.cholesky_in_place_unblocked(1e-10).expect("SPD");
                m
            });
        });
    }
    group.finish();
}

fn bench_cholesky_multi_rhs(c: &mut Criterion) {
    // 343 right-hand sides against a 343×343 factor: the exact shape of the
    // reference path's `M_b⁻¹ E_bᵀ` panel in the full-tree regime.  The fused
    // kernel solves in place with row sweeps; the per-column reference
    // allocates a fresh Vec per RHS column.
    let n = 343;
    let mut factor = random_spd(n, 11);
    factor.cholesky_in_place(1e-10).expect("SPD");
    let mut rng = StdRng::seed_from_u64(13);
    let rhs_rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let rhs = DenseMatrix::from_rows(&rhs_rows);
    let mut group = c.benchmark_group("cholesky_multi_rhs");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_function("fused_in_place", |b| {
        let mut out = rhs.clone();
        b.iter(|| {
            out.clone_from(&rhs);
            factor.cholesky_solve_matrix_into(&mut out);
        });
    });
    group.bench_function("per_column", |b| {
        b.iter(|| factor.cholesky_solve_matrix_per_column(&rhs));
    });
    group.finish();
}

fn bench_forest_generation_k49(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let (lp, blocks) = obfuscation_lp(&ctx, 49);
    let mut group = c.benchmark_group("forest_generation_k49");
    group.sample_size(10);
    group.throughput(Throughput::Elements((49 * 49) as u64));
    for (name, kernels) in [
        ("blocked", KernelStrategy::Blocked),
        ("reference", KernelStrategy::Reference),
    ] {
        let solver = BlockAngularSolver::new(blocks.clone(), options(kernels));
        group.bench_function(name, |b| {
            b.iter(|| solver.solve(&lp).expect("solve"));
        });
    }
    group.finish();
}

fn bench_forest_generation_k343(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let (lp, blocks) = obfuscation_lp(&ctx, 343);
    let mut group = c.benchmark_group("forest_generation_k343_2iters");
    group.warm_up_time(std::time::Duration::from_millis(1));
    group.throughput(Throughput::Elements((343 * 343) as u64));
    for (name, kernels) in [
        ("blocked", KernelStrategy::Blocked),
        ("reference", KernelStrategy::Reference),
    ] {
        // The blocked side is the perf-gated one: give its median a real
        // sample set (~8 s per run).  The reference side exists for the
        // speedup ratio and is reported but not gated (~26 s per run, so two
        // samples suffice); it is deliberately absent from BENCH_baseline.json.
        group.sample_size(if kernels == KernelStrategy::Blocked {
            5
        } else {
            2
        });
        let opts = InteriorPointOptions {
            max_iterations: 2,
            ..options(kernels)
        };
        let solver = BlockAngularSolver::new(blocks.clone(), opts);
        group.bench_function(name, |b| {
            b.iter(|| solver.solve(&lp).expect("solve"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cholesky_factorize,
    bench_cholesky_multi_rhs,
    bench_forest_generation_k49,
    bench_forest_generation_k343
);
criterion_main!(benches);
