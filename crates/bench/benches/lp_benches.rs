//! Perf-gated benchmarks of the `corgi-lp` linear-algebra core: Cholesky
//! factorization (blocked vs. scalar reference), fused multi-RHS triangular
//! solves (vs. the per-column allocating reference), and the block-angular
//! interior-point method on the paper's obfuscation LPs at K ∈ {49, 343}.
//!
//! The K = 343 comparison caps the iteration count: both kernel strategies
//! perform the same per-iteration arithmetic (they agree to rounding, see
//! `crates/lp/tests/solver_agreement.rs`), so the per-iteration ratio *is* the
//! end-to-end ratio, and capping keeps the reference side runnable — at full
//! convergence the pre-PR kernels need tens of minutes at this size.
//!
//! CI (heavy lane) runs this file with `CORGI_BENCH_JSON` pointing at
//! `BENCH_results.json` and gates the medians against the checked-in
//! `BENCH_baseline.json` via the `perf_gate` binary; see README § Performance
//! for how to refresh the baseline.

use corgi_bench::{ExperimentContext, DEFAULT_EPSILON};
use corgi_core::robust::reserved_privacy_budget_approx;
use corgi_core::ObfuscationMatrix;
use corgi_lp::{
    bench_support, BlockAngularSolver, DenseMatrix, InteriorPointOptions, KernelStrategy,
    LpProblem, LpSolver, WarmStart,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Worker count for the warm-vs-cold pair: both sides honour
/// `CORGI_LP_THREADS` (the knob the serving stack reads) so the gated ratio
/// isolates warm-starting from parallelism.
fn env_threads() -> usize {
    std::env::var("CORGI_LP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(1)
}

/// Deterministic SPD matrix `A = BᵀB + n·I` of size `n`, shaped like a
/// late-iteration Newton block (strongly diagonally dominant).
fn random_spd(n: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let b: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut v = if i == j { n as f64 } else { 0.0 };
            for k in 0..n {
                v += b[k * n + i] * b[k * n + j];
            }
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
    }
    a
}

fn options(kernels: KernelStrategy) -> InteriorPointOptions {
    InteriorPointOptions {
        kernels,
        ..InteriorPointOptions::default()
    }
}

/// The obfuscation LP over the `k` leaves closest to the region center, with
/// its per-column variable blocks.
fn obfuscation_lp(ctx: &ExperimentContext, k: usize) -> (LpProblem, Vec<Vec<usize>>) {
    let problem = ctx.problem_for_n_locations(k, DEFAULT_EPSILON, true);
    problem.build_lp(None).expect("LP builds")
}

fn bench_cholesky_factorize(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_factorize");
    for &n in &[49usize, 343] {
        // The 49×49 factorization sits in the microsecond range where timer
        // noise dominates small sample counts; more samples keep the gated
        // median's coefficient of variation well under the 20% gate tolerance.
        group.sample_size(if n < 100 { 60 } else { 10 });
        let a = random_spd(n, 7);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::new("blocked", n), &a, |b, a| {
            b.iter(|| {
                let mut m = a.clone();
                m.cholesky_in_place(1e-10).expect("SPD");
                m
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &a, |b, a| {
            b.iter(|| {
                let mut m = a.clone();
                m.cholesky_in_place_unblocked(1e-10).expect("SPD");
                m
            });
        });
    }
    group.finish();
}

fn bench_cholesky_multi_rhs(c: &mut Criterion) {
    // 343 right-hand sides against a 343×343 factor: the exact shape of the
    // reference path's `M_b⁻¹ E_bᵀ` panel in the full-tree regime.  The fused
    // kernel solves in place with row sweeps; the per-column reference
    // allocates a fresh Vec per RHS column.
    let n = 343;
    let mut factor = random_spd(n, 11);
    factor.cholesky_in_place(1e-10).expect("SPD");
    let mut rng = StdRng::seed_from_u64(13);
    let rhs_rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let rhs = DenseMatrix::from_rows(&rhs_rows);
    let mut group = c.benchmark_group("cholesky_multi_rhs");
    group.sample_size(10);
    group.throughput(Throughput::Elements((n * n) as u64));
    group.bench_function("fused_in_place", |b| {
        let mut out = rhs.clone();
        b.iter(|| {
            out.clone_from(&rhs);
            factor.cholesky_solve_matrix_into(&mut out);
        });
    });
    group.bench_function("per_column", |b| {
        b.iter(|| factor.cholesky_solve_matrix_per_column(&rhs));
    });
    group.finish();
}

fn bench_forest_generation_k49(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let (lp, blocks) = obfuscation_lp(&ctx, 49);
    let mut group = c.benchmark_group("forest_generation_k49");
    group.sample_size(10);
    group.throughput(Throughput::Elements((49 * 49) as u64));
    for (name, kernels) in [
        ("blocked", KernelStrategy::Blocked),
        ("reference", KernelStrategy::Reference),
    ] {
        let solver = BlockAngularSolver::new(blocks.clone(), options(kernels));
        group.bench_function(name, |b| {
            b.iter(|| solver.solve(&lp).expect("solve"));
        });
    }
    group.finish();
}

fn bench_forest_generation_k343(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let (lp, blocks) = obfuscation_lp(&ctx, 343);
    let mut group = c.benchmark_group("forest_generation_k343_2iters");
    group.warm_up_time(std::time::Duration::from_millis(1));
    group.throughput(Throughput::Elements((343 * 343) as u64));
    for (name, kernels) in [
        ("blocked", KernelStrategy::Blocked),
        ("reference", KernelStrategy::Reference),
    ] {
        // The blocked side is the perf-gated one: give its median a real
        // sample set (~8 s per run).  The reference side exists for the
        // speedup ratio and is reported but not gated (~26 s per run, so two
        // samples suffice); it is deliberately absent from BENCH_baseline.json.
        group.sample_size(if kernels == KernelStrategy::Blocked {
            5
        } else {
            2
        });
        let opts = InteriorPointOptions {
            max_iterations: 2,
            ..options(kernels)
        };
        let solver = BlockAngularSolver::new(blocks.clone(), opts);
        group.bench_function(name, |b| {
            b.iter(|| solver.solve(&lp).expect("solve"));
        });
    }
    group.finish();
}

fn bench_block_factorize_parallel(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let (lp, blocks) = obfuscation_lp(&ctx, 343);
    let mut group = c.benchmark_group("block_factorize_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements((343 * 343) as u64));
    // threads = 0 resolves to the machine's available parallelism; on a
    // single-core box both sides run the identical serial path and the gate
    // relaxes the ratio cap (see perf_gate).
    for (name, threads) in [("1_thread", 1usize), ("n_threads", 0)] {
        let opts = InteriorPointOptions {
            threads,
            ..InteriorPointOptions::default()
        };
        let mut bench =
            bench_support::FactorizationBench::new(&lp, &blocks, opts).expect("bench state");
        bench.perturb_state(17);
        group.bench_function(name, |b| {
            b.iter(|| bench.factor().expect("factorization succeeds"));
        });
    }
    group.finish();
}

fn bench_warm_vs_cold_ipm(c: &mut Criterion) {
    // The cost of warming one K = 49 grid key: Algorithm 1's full robust
    // chain (one base solve plus `robust_iterations = 10` reserved-budget
    // refinements, the serving default — eleven LP solves per key).
    //
    // "cold" replays the pre-incremental engine: every solve from scratch at
    // full tolerance.  "warm" is the shipped incremental engine
    // (`generate_robust_matrix_warm`): every solve seeds from the previous
    // converged iterate, and intermediate refinements — whose matrices only
    // feed the Eq. 14 reserved-budget approximation — run at the relaxed
    // refinement tolerance, with the final shipped LP at full tolerance.
    // The perf gate holds warm/cold under a hard cap; the measured ratio is
    // the per-key speedup of whole-grid warming (every key of a grid sweep
    // pays this chain).
    const REFINEMENTS: usize = 10;
    const DELTA: usize = 2;
    let ctx = ExperimentContext::standard();
    let problem = ctx.problem_for_n_locations(49, DEFAULT_EPSILON, true);
    let full = InteriorPointOptions {
        threads: env_threads(),
        ..InteriorPointOptions::default()
    };
    let relaxed = InteriorPointOptions {
        tolerance: 1e-4,
        ..full
    };
    let matrix_of = |x: Vec<f64>| {
        ObfuscationMatrix::from_lp_solution(problem.cells().to_vec(), x).expect("valid matrix")
    };
    let next_lp = |matrix: &ObfuscationMatrix| {
        let rpb =
            reserved_privacy_budget_approx(matrix, problem.distances(), problem.epsilon(), DELTA);
        problem.build_lp(Some(&rpb)).expect("refined LP builds")
    };

    let mut group = c.benchmark_group("warm_vs_cold_ipm");
    group.sample_size(10);
    group.throughput(Throughput::Elements((REFINEMENTS + 1) as u64));
    group.bench_function("k49/cold", |b| {
        b.iter(|| {
            let (lp, blocks) = problem.build_lp(None).expect("base LP builds");
            let s = BlockAngularSolver::new(blocks, full)
                .solve(&lp)
                .expect("cold base solve");
            let mut iterations = s.iterations;
            let mut matrix = matrix_of(s.x);
            for _ in 0..REFINEMENTS {
                let (lp, blocks) = next_lp(&matrix);
                let s = BlockAngularSolver::new(blocks, full)
                    .solve(&lp)
                    .expect("cold refinement");
                iterations += s.iterations;
                matrix = matrix_of(s.x);
            }
            iterations
        });
    });
    group.bench_function("k49/warm", |b| {
        b.iter(|| {
            let (lp, blocks) = problem.build_lp(None).expect("base LP builds");
            let s = BlockAngularSolver::new(blocks, relaxed)
                .solve(&lp)
                .expect("relaxed base solve");
            let mut iterations = s.iterations;
            let mut warm: Option<WarmStart> = s.warm;
            let mut matrix = matrix_of(s.x);
            for t in 1..=REFINEMENTS {
                let (lp, blocks) = next_lp(&matrix);
                let opts = if t == REFINEMENTS { full } else { relaxed };
                let s = BlockAngularSolver::new(blocks, opts)
                    .solve_with_warm(&lp, warm.as_ref())
                    .expect("warm refinement");
                iterations += s.iterations;
                warm = s.warm.or(warm);
                matrix = matrix_of(s.x);
            }
            iterations
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cholesky_factorize,
    bench_cholesky_multi_rhs,
    bench_forest_generation_k49,
    bench_forest_generation_k343,
    bench_block_factorize_parallel,
    bench_warm_vs_cold_ipm
);
criterion_main!(benches);
