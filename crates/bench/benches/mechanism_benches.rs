//! Criterion micro-benchmarks of the CORGI mechanism pieces: reserved-privacy-
//! budget computation (Eq. 12 exact vs Eq. 14 approximation), matrix pruning,
//! precision reduction, sampling, and the planar-Laplace baseline.

use corgi_bench::{ExperimentContext, DEFAULT_EPSILON};
use corgi_core::{
    generate_nonrobust_matrix,
    laplace::PlanarLaplace,
    precision_reduction, prune_matrix,
    robust::{reserved_privacy_budget_approx, reserved_privacy_budget_exact},
    SolverKind,
};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_rpb(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let problem = ctx.problem_for_n_locations(49, DEFAULT_EPSILON, true);
    let matrix = generate_nonrobust_matrix(&problem, SolverKind::Auto).expect("matrix");
    let mut group = c.benchmark_group("reserved_privacy_budget_49");
    group.sample_size(10);
    group.bench_function("approx_eq14_delta3", |b| {
        b.iter(|| reserved_privacy_budget_approx(&matrix, problem.distances(), DEFAULT_EPSILON, 3));
    });
    group.bench_function("exact_eq12_delta2", |b| {
        b.iter(|| {
            reserved_privacy_budget_exact(&matrix, problem.distances(), DEFAULT_EPSILON, 2)
                .expect("exact budget")
        });
    });
    group.finish();
}

fn bench_customization(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let problem = ctx.problem_for_subtree(&ctx.level2_subtree(), DEFAULT_EPSILON, true);
    let matrix = generate_nonrobust_matrix(&problem, SolverKind::Auto).expect("matrix");
    let prune_cells: Vec<_> = matrix.cells().iter().copied().take(5).collect();
    let priors: Vec<f64> = matrix
        .cells()
        .iter()
        .map(|cell| ctx.prior.prob_of_cell(ctx.grid(), cell).max(1e-12))
        .collect();
    let mut group = c.benchmark_group("customization_49");
    group.sample_size(20);
    group.bench_function("prune_5_of_49", |b| {
        b.iter(|| prune_matrix(&matrix, &prune_cells).expect("prune"));
    });
    group.bench_function("precision_reduction_to_level1", |b| {
        b.iter(|| precision_reduction(&matrix, &ctx.tree, 1, &priors).expect("reduce"));
    });
    let mut rng = StdRng::seed_from_u64(1);
    let real = matrix.cells()[0];
    group.bench_function("sample_obfuscated_cell", |b| {
        b.iter(|| matrix.sample(&real, &mut rng).expect("sample"));
    });
    group.finish();
}

fn bench_planar_laplace(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let mechanism = PlanarLaplace::new(DEFAULT_EPSILON);
    let real = ctx.grid().cell_center(&ctx.grid().leaves()[171]);
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("planar_laplace");
    group.bench_function("sample_continuous", |b| {
        b.iter(|| mechanism.sample(&real, &mut rng));
    });
    group.bench_function("sample_snapped_to_cell", |b| {
        b.iter(|| mechanism.sample_cell(ctx.grid(), &real, &mut rng));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rpb,
    bench_customization,
    bench_planar_laplace
);
criterion_main!(benches);
