//! Criterion micro-benchmarks of the spatial substrates: the hexagonal index and
//! the mobility-graph approximation.

use corgi_bench::ExperimentContext;
use corgi_graph::HexMobilityGraph;
use corgi_hexgrid::{HexGrid, HexGridConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_hexgrid(c: &mut Criterion) {
    let grid = HexGrid::new(HexGridConfig::san_francisco()).expect("grid");
    let point = grid.cell_center(&grid.leaves()[200]);
    let mut group = c.benchmark_group("hexgrid");
    group.bench_function("build_height3_grid", |b| {
        b.iter(|| HexGrid::new(HexGridConfig::san_francisco()).expect("grid"));
    });
    group.bench_function("leaf_lookup", |b| {
        b.iter(|| grid.leaf_containing(&point).expect("leaf"));
    });
    group.bench_function("descendant_leaves_of_root", |b| {
        b.iter(|| grid.root().descendant_leaves());
    });
    group.finish();
}

fn bench_mobility_graph(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let cells = ctx.level2_subtree().leaves().to_vec();
    let mut group = c.benchmark_group("mobility_graph_49");
    group.bench_function("build", |b| {
        b.iter(|| HexMobilityGraph::new(ctx.grid(), &cells));
    });
    let graph = HexMobilityGraph::new(ctx.grid(), &cells);
    group.bench_function("all_pairs_shortest_paths", |b| {
        b.iter(|| graph.shortest_path_matrix());
    });
    group.finish();
}

criterion_group!(benches, bench_hexgrid, bench_mobility_graph);
criterion_main!(benches);
