//! Criterion micro-benchmarks of the LP solver substrate: the ablation between
//! the dense simplex, the general interior-point method and the block-angular
//! interior-point method on obfuscation-shaped LPs, plus the effect of the
//! graph approximation on solve time.

use corgi_bench::{ExperimentContext, DEFAULT_EPSILON};
use corgi_core::SolverKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_solver_kinds(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let problem = ctx.problem_for_n_locations(7, 3.0, true);
    let mut group = c.benchmark_group("obfuscation_lp_7_locations");
    group.sample_size(10);
    for (name, kind) in [
        ("simplex", SolverKind::Simplex),
        ("interior_point", SolverKind::InteriorPoint),
        ("block_angular", SolverKind::BlockAngular),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| problem.solve(None, kind).expect("solve"));
        });
    }
    group.finish();
}

fn bench_graph_approximation(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let mut group = c.benchmark_group("graph_approximation_49_locations");
    group.sample_size(10);
    for (name, approx) in [("with_approx", true), ("without_approx", false)] {
        let problem = ctx.problem_for_n_locations(49, DEFAULT_EPSILON, approx);
        group.bench_with_input(BenchmarkId::from_parameter(name), &problem, |b, p| {
            b.iter(|| p.solve(None, SolverKind::Auto).expect("solve"));
        });
    }
    group.finish();
}

fn bench_problem_sizes(c: &mut Criterion) {
    let ctx = ExperimentContext::standard();
    let mut group = c.benchmark_group("block_angular_by_size");
    group.sample_size(10);
    for &n in &[7usize, 21, 49] {
        let problem = ctx.problem_for_n_locations(n, DEFAULT_EPSILON, true);
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| p.solve(None, SolverKind::Auto).expect("solve"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_solver_kinds,
    bench_graph_approximation,
    bench_problem_sizes
);
criterion_main!(benches);
