//! Serving-stack benchmarks: concurrent vs serial privacy-forest generation,
//! the cached request path, and warm-cache transport throughput over loopback
//! TCP.
//!
//! The K per-subtree LP solves of Algorithm 3 are independent, so
//! `ForestGenerator` fans them out over a fixed-size thread pool; this bench
//! pins the speed-up against the serial baseline (throughput is reported in
//! subtrees per second, so the two rows are directly comparable), plus the
//! cost of a cache hit through `CachingService` — both in-process and across
//! the full event-driven stack (frames, reactor, dispatch pool).

use corgi_core::LocationTree;
use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi_framework::messages::MatrixRequest;
use corgi_framework::{
    CachingService, ForestGenerator, MatrixService, ServerConfig, TcpServer, TcpTransport,
    TransportConfig, WarmRequest,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

fn generator(worker_threads: usize) -> ForestGenerator {
    let grid = corgi_hexgrid::HexGrid::new(corgi_hexgrid::HexGridConfig::san_francisco())
        .expect("static grid config is valid");
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    ForestGenerator::new(
        LocationTree::new(grid),
        prior,
        ServerConfig::builder()
            .robust_iterations(2)
            .targets_per_subtree(5)
            .worker_threads(worker_threads)
            .build(),
    )
}

fn bench_forest_generation(c: &mut Criterion) {
    let pooled = generator(0);
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 1,
    };
    let subtrees = 49u64; // level 1 of the height-3 tree

    let mut group = c.benchmark_group("privacy_forest_49_subtrees");
    group.sample_size(10);
    group.throughput(Throughput::Elements(subtrees));
    group.bench_function("serial", |b| {
        b.iter(|| pooled.generate_serial(request).expect("generation"));
    });
    group.bench_function(format!("pooled_{}_threads", pooled.worker_threads()), |b| {
        b.iter(|| pooled.generate(request).expect("generation"));
    });
    group.finish();
}

fn bench_cached_request_path(c: &mut Criterion) {
    let service = CachingService::with_defaults(generator(0));
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    service.privacy_forest(request).expect("warm the cache");

    let mut group = c.benchmark_group("cached_request");
    group.sample_size(30);
    group.throughput(Throughput::Elements(1));
    group.bench_function("hit", |b| {
        b.iter(|| service.privacy_forest(request).expect("cache hit"));
    });
    group.finish();
}

/// Warm-cache request/response round trips across the loopback transport:
/// requests per second through frame encode → reactor → dispatch pool → cache
/// hit → frame decode, with zero LP solves on the measured path.
fn bench_transport_roundtrip(c: &mut Criterion) {
    let service = Arc::new(CachingService::with_defaults(generator(0)));
    let config = TransportConfig {
        warm_on_start: Some(WarmRequest::level(1, 0)),
        ..TransportConfig::default()
    };
    let server = TcpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn MatrixService>,
        config,
    )
    .expect("binding the loopback bench server");
    let transport = TcpTransport::connect(server.local_addr()).expect("connecting to loopback");
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    // Ensure the startup warm has landed before timing (the first request
    // coalesces onto it if it is still in flight).
    transport.privacy_forest(request).expect("warm-up request");

    let mut group = c.benchmark_group("transport_loopback");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    group.bench_function("warm_hit_roundtrip", |b| {
        b.iter(|| {
            transport
                .privacy_forest(request)
                .expect("cache hit over TCP")
        });
    });
    group.finish();
    drop(transport);
    server.shutdown();
}

criterion_group!(
    benches,
    bench_forest_generation,
    bench_cached_request_path,
    bench_transport_roundtrip
);
criterion_main!(benches);
