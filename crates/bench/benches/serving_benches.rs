//! Serving-stack benchmarks: concurrent vs serial privacy-forest generation
//! and the cached request path.
//!
//! The K per-subtree LP solves of Algorithm 3 are independent, so
//! `ForestGenerator` fans them out over a fixed-size thread pool; this bench
//! pins the speed-up against the serial baseline (throughput is reported in
//! subtrees per second, so the two rows are directly comparable), plus the
//! cost of a cache hit through `CachingService`.

use corgi_core::LocationTree;
use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi_framework::messages::MatrixRequest;
use corgi_framework::{CachingService, ForestGenerator, MatrixService, ServerConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn generator(worker_threads: usize) -> ForestGenerator {
    let grid = corgi_hexgrid::HexGrid::new(corgi_hexgrid::HexGridConfig::san_francisco())
        .expect("static grid config is valid");
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    ForestGenerator::new(
        LocationTree::new(grid),
        prior,
        ServerConfig::builder()
            .robust_iterations(2)
            .targets_per_subtree(5)
            .worker_threads(worker_threads)
            .build(),
    )
}

fn bench_forest_generation(c: &mut Criterion) {
    let pooled = generator(0);
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 1,
    };
    let subtrees = 49u64; // level 1 of the height-3 tree

    let mut group = c.benchmark_group("privacy_forest_49_subtrees");
    group.sample_size(10);
    group.throughput(Throughput::Elements(subtrees));
    group.bench_function("serial", |b| {
        b.iter(|| pooled.generate_serial(request).expect("generation"));
    });
    group.bench_function(format!("pooled_{}_threads", pooled.worker_threads()), |b| {
        b.iter(|| pooled.generate(request).expect("generation"));
    });
    group.finish();
}

fn bench_cached_request_path(c: &mut Criterion) {
    let service = CachingService::with_defaults(generator(0));
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    service.privacy_forest(request).expect("warm the cache");

    let mut group = c.benchmark_group("cached_request");
    group.sample_size(30);
    group.throughput(Throughput::Elements(1));
    group.bench_function("hit", |b| {
        b.iter(|| service.privacy_forest(request).expect("cache hit"));
    });
    group.finish();
}

criterion_group!(benches, bench_forest_generation, bench_cached_request_path);
criterion_main!(benches);
