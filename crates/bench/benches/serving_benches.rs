//! Serving-stack benchmarks: concurrent vs serial privacy-forest generation,
//! the cached request path, the wire codecs, and warm-cache transport
//! throughput over loopback TCP.
//!
//! The K per-subtree LP solves of Algorithm 3 are independent, so
//! `ForestGenerator` fans them out over a fixed-size thread pool; this bench
//! pins the speed-up against the serial baseline (throughput is reported in
//! subtrees per second, so the two rows are directly comparable), plus the
//! cost of a cache hit through `CachingService` — in-process, per-codec
//! (encode+decode of the warm-hit forest response in binary vs JSON, the
//! ratio the perf gate holds), and across the full event-driven stack
//! (frames, reactor, dispatch pool) under each codec.

use corgi_core::LocationTree;
use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi_framework::messages::{MatrixRequest, RequestEnvelope, ResponseEnvelope};
use corgi_framework::transport::try_decode_frame;
use corgi_framework::{
    CachingService, ClientConfig, ForestGenerator, MatrixService, ReactorBackend, ServerConfig,
    TcpServer, TcpTransport, TransportConfig, WarmRequest, WireCodec,
};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

fn generator(worker_threads: usize) -> ForestGenerator {
    let grid = corgi_hexgrid::HexGrid::new(corgi_hexgrid::HexGridConfig::san_francisco())
        .expect("static grid config is valid");
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    ForestGenerator::new(
        LocationTree::new(grid),
        prior,
        ServerConfig::builder()
            .robust_iterations(2)
            .targets_per_subtree(5)
            .worker_threads(worker_threads)
            .build(),
    )
}

fn bench_forest_generation(c: &mut Criterion) {
    let pooled = generator(0);
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 1,
    };
    let subtrees = 49u64; // level 1 of the height-3 tree

    let mut group = c.benchmark_group("privacy_forest_49_subtrees");
    group.sample_size(10);
    group.throughput(Throughput::Elements(subtrees));
    group.bench_function("serial", |b| {
        b.iter(|| pooled.generate_serial(request).expect("generation"));
    });
    group.bench_function(format!("pooled_{}_threads", pooled.worker_threads()), |b| {
        b.iter(|| pooled.generate(request).expect("generation"));
    });
    group.finish();
}

fn bench_cached_request_path(c: &mut Criterion) {
    let service = CachingService::with_defaults(generator(0));
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    service.privacy_forest(request).expect("warm the cache");

    let mut group = c.benchmark_group("cached_request");
    group.sample_size(30);
    group.throughput(Throughput::Elements(1));
    group.bench_function("hit", |b| {
        b.iter(|| service.privacy_forest(request).expect("cache hit"));
    });
    group.finish();
}

/// Pure codec cost of the warm-hit payload: encode + decode of the ~70 KB
/// level-1 forest `ResponseEnvelope` (and of the tiny request envelope) in
/// each codec.  This is exactly the work PR 5 moved off the hot path, so the
/// perf gate holds the `/binary` vs `/json` ratio: losing the raw-`f64`-run
/// encoding shows up as an order-of-magnitude ratio jump on any hardware.
fn bench_wire_codec(c: &mut Criterion) {
    let service = CachingService::with_defaults(generator(0));
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    let forest = service.privacy_forest(request).expect("warm the cache");
    let response = ResponseEnvelope::forest(1, forest);
    let request_envelope = RequestEnvelope::new(1, request);

    let mut group = c.benchmark_group("wire_codec");
    group.sample_size(40);
    for codec in [WireCodec::Binary, WireCodec::Json] {
        let encoded = codec.encode_frame(&response);
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_function(format!("forest_roundtrip/{codec}"), |b| {
            b.iter(|| {
                let mut frame = codec.encode_frame(&response);
                let (_, payload) = try_decode_frame(&mut frame, usize::MAX)
                    .expect("well-formed frame")
                    .expect("complete frame");
                let decoded: ResponseEnvelope =
                    codec.decode_payload(&payload).expect("decodable payload");
                decoded
            });
        });
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("request_roundtrip/{codec}"), |b| {
            b.iter(|| {
                let mut frame = codec.encode_frame(&request_envelope);
                let (_, payload) = try_decode_frame(&mut frame, usize::MAX)
                    .expect("well-formed frame")
                    .expect("complete frame");
                let decoded: RequestEnvelope =
                    codec.decode_payload(&payload).expect("decodable payload");
                decoded
            });
        });
    }
    group.finish();
}

/// Warm-cache request/response round trips across the loopback transport:
/// requests per second through frame encode → reactor → dispatch pool → cache
/// hit → frame decode, with zero LP solves on the measured path — under the
/// negotiated binary codec (`warm_hit_roundtrip`), the forced JSON codec
/// (`warm_hit_roundtrip_json`, the perf gate's reference sibling), and with
/// the transport removed entirely (`warm_hit_inprocess`, the floor the
/// transport overhead is measured against).
fn bench_transport_roundtrip(c: &mut Criterion) {
    let service = Arc::new(CachingService::with_defaults(generator(0)));
    let config = TransportConfig {
        warm_on_start: Some(WarmRequest::level(1, 0)),
        codecs: vec![WireCodec::Binary, WireCodec::Json],
        ..TransportConfig::default()
    };
    let server = TcpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn MatrixService>,
        config,
    )
    .expect("binding the loopback bench server");
    let binary = TcpTransport::connect_with(
        server.local_addr(),
        ClientConfig {
            codecs: vec![WireCodec::Binary, WireCodec::Json],
            ..ClientConfig::default()
        },
    )
    .expect("connecting to loopback (binary)");
    assert_eq!(binary.codec(), WireCodec::Binary);
    let json = TcpTransport::connect_with(
        server.local_addr(),
        ClientConfig {
            codecs: vec![WireCodec::Json],
            ..ClientConfig::default()
        },
    )
    .expect("connecting to loopback (json)");
    assert_eq!(json.codec(), WireCodec::Json);
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    // Ensure the startup warm has landed before timing (the first request
    // coalesces onto it if it is still in flight).
    binary.privacy_forest(request).expect("warm-up request");

    let mut group = c.benchmark_group("transport_loopback");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    group.bench_function("warm_hit_roundtrip", |b| {
        b.iter(|| binary.privacy_forest(request).expect("cache hit over TCP"));
    });
    group.bench_function("warm_hit_roundtrip_json", |b| {
        b.iter(|| json.privacy_forest(request).expect("cache hit over TCP"));
    });
    group.bench_function("warm_hit_inprocess", |b| {
        b.iter(|| service.privacy_forest(request).expect("cache hit"));
    });
    group.finish();
    drop(binary);
    drop(json);
    server.shutdown();
}

/// The same warm-hit round trip under each reactor backend, measured in one
/// run: `warm_hit_roundtrip/epoll` blocks on socket readiness and answers as
/// soon as the request frame lands, while `warm_hit_roundtrip/tick` only
/// discovers it on the next 500 µs poll tick.  The perf gate holds the
/// epoll/tick ratio — losing the readiness path (a broken epoll registration
/// silently falling back to a timer somewhere) shows up as the ratio
/// collapsing toward 1.0, far past the gate on any hardware.
fn bench_reactor_backend(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_loopback");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    let request = MatrixRequest {
        privacy_level: 1,
        delta: 0,
    };
    for backend in [ReactorBackend::Epoll, ReactorBackend::Tick] {
        let service = Arc::new(CachingService::with_defaults(generator(0)));
        let config = TransportConfig {
            reactor_backend: backend,
            reactor_shards: 1,
            warm_on_start: Some(WarmRequest::level(1, 0)),
            codecs: vec![WireCodec::Binary, WireCodec::Json],
            ..TransportConfig::default()
        };
        let server = TcpServer::bind(
            "127.0.0.1:0",
            Arc::clone(&service) as Arc<dyn MatrixService>,
            config,
        )
        .expect("binding the loopback bench server");
        let transport = TcpTransport::connect(server.local_addr()).expect("connecting to loopback");
        transport.privacy_forest(request).expect("warm-up request");
        group.bench_function(format!("warm_hit_roundtrip/{}", backend.label()), |b| {
            b.iter(|| {
                transport
                    .privacy_forest(request)
                    .expect("cache hit over TCP")
            });
        });
        drop(transport);
        server.shutdown();
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forest_generation,
    bench_cached_request_path,
    bench_wire_codec,
    bench_transport_roundtrip,
    bench_reactor_backend
);
criterion_main!(benches);
