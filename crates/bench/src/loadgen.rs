//! Open-loop load harness for the serving stack.
//!
//! Drives a live [`TcpServer`] over loopback the way a population of
//! independent mobile devices would: requests are issued at *scheduled*
//! Poisson arrival times (see [`corgi_datagen::open_loop_arrivals`]) spread
//! over a fixed set of client connections, with `(privacy_level, δ)` keys
//! drawn from a Zipf-skewed [`RequestMix`].  Because the harness is
//! **open-loop**, a slow server does not slow the offered load down — late
//! completions simply accumulate queueing delay — and every latency is
//! measured from the request's scheduled arrival time, so the recorded
//! [`Histogram`] is free of coordinated omission.
//!
//! The harness understands the server's admission-control contract: a
//! structured [`ServiceErrorKind::Overloaded`] reply counts as a *shed* (the
//! connection stays healthy, the request is not retried), any other failure
//! counts as an error, and a poisoned connection is replaced.  Connection
//! churn — tearing a connection down and reconnecting every N requests — is
//! part of the profile, exercising the accept/handshake path under load.
//!
//! Two axes extend the basic single-server open-loop run:
//!
//! * **sharding** ([`run_load`] with several addresses) — each worker drives a
//!   [`ShardRouter`] over the shard set instead of a single transport, and the
//!   report carries per-shard completion counts plus router failovers;
//! * **closed loop** ([`LoadMode::Closed`]) — workers issue their next request
//!   the moment the previous response lands, measuring pure service time.
//!   Comparing the two modes on the same profile makes coordinated omission
//!   visible: under saturation the closed-loop p99 stays flat while the
//!   open-loop p99 grows with queueing delay.
//!
//! [`ServiceErrorKind::Overloaded`]: corgi_framework::messages::ServiceErrorKind::Overloaded
//! [`TcpServer`]: corgi_framework::TcpServer

use corgi_datagen::{open_loop_arrivals, RequestMix};
use corgi_framework::messages::{MatrixRequest, PrivacyForestResponse, ServiceError};
use corgi_framework::{ClientConfig, MatrixService, RouterConfig, ShardRouter, TcpTransport};
use criterion::Histogram;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shape of one open-loop load run.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Client connections (each owns a worker thread and a [`TcpTransport`]).
    pub connections: usize,
    /// Aggregate arrival rate across all connections, in requests/second.
    pub rate_hz: f64,
    /// Length of the arrival schedule.
    pub duration: Duration,
    /// Privacy levels in the request mix.
    pub levels: Vec<u8>,
    /// δ values in the mix run `0..=max_delta` (the grid a warm plan covers).
    pub max_delta: usize,
    /// Zipf exponent of the key skew (0 = uniform; ~1 = strongly skewed).
    pub zipf_exponent: f64,
    /// Tear down and reconnect a connection after this many requests on it;
    /// 0 disables churn.
    pub churn_every: usize,
    /// Seed making the schedule and key sequence reproducible.
    pub seed: u64,
    /// Per-request deadline: a response not received within it is a timeout
    /// error (and the connection is replaced).  This is what turns "the
    /// server hung" into a visible failure instead of a stuck run.
    pub request_timeout: Duration,
}

impl Default for LoadProfile {
    fn default() -> Self {
        Self {
            connections: 8,
            rate_hz: 200.0,
            duration: Duration::from_secs(2),
            levels: vec![1],
            max_delta: 1,
            zipf_exponent: 1.0,
            churn_every: 0,
            seed: 42,
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// How request issue times are paced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Requests fire at their scheduled Poisson arrival times regardless of
    /// how fast the server answers; latency is measured from the scheduled
    /// arrival, so queueing delay is part of every sample.
    Open,
    /// Each worker issues its next request as soon as the previous response
    /// lands; latency is measured from the moment the request is issued.
    Closed,
}

/// Outcome of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests in the arrival schedule.
    pub offered: usize,
    /// Requests that received *any* answer (success, shed, or error) within
    /// their deadline.  `completed == offered` means nothing hung.
    pub completed: usize,
    /// Successful privacy-forest responses.
    pub ok: usize,
    /// Requests the server shed with a retryable `Overloaded` error.
    pub shed: usize,
    /// Every other failure: timeouts, transport errors, failed reconnects.
    pub errors: usize,
    /// Connections re-established, by churn or after poisoning.
    pub reconnects: usize,
    /// Wall-clock span of the run (schedule length plus drain tail).
    pub elapsed: Duration,
    /// Latency of every successful request — from its scheduled arrival time
    /// ([`LoadMode::Open`]) or from its issue time ([`LoadMode::Closed`]).
    pub histogram: Histogram,
    /// Successful completions per shard endpoint (empty for a single-server
    /// run): which shard the router's rendezvous ranking actually answered
    /// each request on, failovers included.
    pub per_shard: Vec<(String, u64)>,
    /// Requests the routers moved past a failed or shedding shard (zero for
    /// a single-server run).
    pub failovers: u64,
}

impl LoadReport {
    /// Successful responses per second of wall-clock time.
    pub fn goodput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Offered arrival rate actually realized by the schedule.
    pub fn offered_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.offered as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// One scheduled request: its arrival offset and key.
struct Slot {
    at: Duration,
    request: MatrixRequest,
}

/// Per-worker tally folded into the [`LoadReport`].
#[derive(Default)]
struct WorkerOutcome {
    completed: usize,
    ok: usize,
    shed: usize,
    errors: usize,
    reconnects: usize,
    histogram: Histogram,
    per_shard: BTreeMap<String, u64>,
    failovers: u64,
}

/// One worker's server-side handle: a direct transport for a single address,
/// a [`ShardRouter`] over the shard set otherwise.
enum Conn {
    Direct(TcpTransport),
    // Boxed: the router (endpoints, health slots, rank memo) dwarfs the
    // direct transport, and workers move `Conn` values around on churn.
    Routed(Box<ShardRouter>),
}

impl Conn {
    fn request(&self, request: MatrixRequest) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        match self {
            Conn::Direct(transport) => transport.privacy_forest(request),
            Conn::Routed(router) => router.privacy_forest(request),
        }
    }

    /// Whether a non-shed failure left the connection unusable.  The router
    /// replaces its own per-shard connections, so only the direct transport
    /// ever asks to be rebuilt.
    fn needs_replacement(&self) -> bool {
        match self {
            Conn::Direct(transport) => transport.stats().poisoned_connections > 0,
            Conn::Routed(_) => false,
        }
    }

    /// Fold router-side shard counters into the worker tally; called before
    /// the connection is dropped (churn, replacement or end of schedule) so
    /// no completed work is lost.
    fn fold_into(&self, outcome: &mut WorkerOutcome) {
        if let Conn::Routed(router) = self {
            let stats = router.cluster_stats();
            outcome.failovers += stats.failovers;
            for peer in stats.peers {
                *outcome.per_shard.entry(peer.endpoint).or_insert(0) += peer.requests;
            }
        }
    }
}

fn connect(addrs: &[SocketAddr], timeout: Duration) -> Result<Conn, String> {
    let config = ClientConfig {
        read_timeout: Some(timeout),
        ..ClientConfig::default()
    };
    if addrs.len() == 1 {
        TcpTransport::connect_with(addrs[0], config)
            .map(Conn::Direct)
            .map_err(|e| e.to_string())
    } else {
        ShardRouter::connect(
            addrs.iter().map(ToString::to_string),
            RouterConfig {
                client: config,
                ..RouterConfig::default()
            },
        )
        .map(|router| Conn::Routed(Box::new(router)))
        .map_err(|e| e.to_string())
    }
}

/// Run one open-loop load profile against a serving address.
///
/// Blocks until every scheduled request has been resolved (answered, shed,
/// or failed against its deadline) and returns the merged [`LoadReport`].
/// The codec each connection negotiates follows `CORGI_WIRE_CODEC`, exactly
/// like any other client.
pub fn run(addr: SocketAddr, profile: &LoadProfile) -> LoadReport {
    run_load(&[addr], LoadMode::Open, profile)
}

/// Run a load profile against one server or a whole shard set.
///
/// With a single address every worker owns a direct [`TcpTransport`]; with
/// several, every worker owns a [`ShardRouter`] over the set, so requests are
/// rendezvous-routed per cache key and fail over like production clients.
pub fn run_load(addrs: &[SocketAddr], mode: LoadMode, profile: &LoadProfile) -> LoadReport {
    assert!(!addrs.is_empty(), "load needs at least one server address");
    assert!(
        profile.connections >= 1,
        "load needs at least one connection"
    );
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mix = RequestMix::new(&profile.levels, profile.max_delta, profile.zipf_exponent);
    let arrivals = open_loop_arrivals(profile.rate_hz, profile.duration, &mut rng);
    let offered = arrivals.len();

    // Round-robin the schedule over the connections; each worker replays its
    // own slice against the shared start instant, so the aggregate process
    // keeps the configured rate regardless of per-connection speed.
    let mut schedules: Vec<Vec<Slot>> = (0..profile.connections).map(|_| Vec::new()).collect();
    for (index, at) in arrivals.into_iter().enumerate() {
        let (privacy_level, delta) = mix.sample(&mut rng);
        schedules[index % profile.connections].push(Slot {
            at,
            request: MatrixRequest {
                privacy_level,
                delta,
            },
        });
    }

    let start = Instant::now();
    let timeout = profile.request_timeout;
    let churn_every = profile.churn_every;
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .map(|schedule| {
                scope.spawn(move || {
                    let mut outcome = WorkerOutcome::default();
                    let mut transport = connect(addrs, timeout).ok();
                    let mut since_connect = 0usize;
                    for slot in schedule {
                        // Open loop: wait for the scheduled time, never for
                        // the previous response (that already happened — the
                        // exchange is synchronous per connection, which is
                        // exactly the queueing delay the latency records).
                        // Closed loop: fire the moment the previous exchange
                        // finishes; the schedule only supplies the keys.
                        if mode == LoadMode::Open {
                            let now = start.elapsed();
                            if slot.at > now {
                                std::thread::sleep(slot.at - now);
                            }
                        }
                        if churn_every > 0 && since_connect >= churn_every {
                            if let Some(old) = transport.take() {
                                old.fold_into(&mut outcome);
                            }
                        }
                        let conn = match &transport {
                            Some(conn) => conn,
                            None => match connect(addrs, timeout) {
                                Ok(conn) => {
                                    outcome.reconnects += 1;
                                    since_connect = 0;
                                    transport.insert(conn)
                                }
                                Err(_) => {
                                    outcome.completed += 1;
                                    outcome.errors += 1;
                                    continue;
                                }
                            },
                        };
                        since_connect += 1;
                        let issued = start.elapsed();
                        let result = conn.request(slot.request);
                        let latency = match mode {
                            LoadMode::Open => start.elapsed().saturating_sub(slot.at),
                            LoadMode::Closed => start.elapsed().saturating_sub(issued),
                        };
                        outcome.completed += 1;
                        match result {
                            Ok(_) => {
                                outcome.ok += 1;
                                outcome.histogram.record_duration(latency);
                            }
                            Err(e) if e.is_retryable() => outcome.shed += 1,
                            Err(_) => {
                                outcome.errors += 1;
                                // A non-shed failure poisoned (or may have
                                // poisoned) the stream; replace the
                                // connection rather than failing every
                                // remaining slot.
                                if conn.needs_replacement() {
                                    if let Some(old) = transport.take() {
                                        old.fold_into(&mut outcome);
                                    }
                                }
                            }
                        }
                    }
                    if let Some(conn) = transport.take() {
                        conn.fold_into(&mut outcome);
                    }
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut report = LoadReport {
        offered,
        completed: 0,
        ok: 0,
        shed: 0,
        errors: 0,
        reconnects: 0,
        elapsed,
        histogram: Histogram::new(),
        per_shard: Vec::new(),
        failovers: 0,
    };
    let mut per_shard: BTreeMap<String, u64> = BTreeMap::new();
    for outcome in outcomes {
        report.completed += outcome.completed;
        report.ok += outcome.ok;
        report.shed += outcome.shed;
        report.errors += outcome.errors;
        report.reconnects += outcome.reconnects;
        report.histogram.merge(&outcome.histogram);
        report.failovers += outcome.failovers;
        for (endpoint, requests) in outcome.per_shard {
            *per_shard.entry(endpoint).or_insert(0) += requests;
        }
    }
    report.per_shard = per_shard.into_iter().collect();
    report
}
