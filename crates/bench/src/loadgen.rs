//! Open-loop load harness for the serving stack.
//!
//! Drives a live [`TcpServer`] over loopback the way a population of
//! independent mobile devices would: requests are issued at *scheduled*
//! Poisson arrival times (see [`corgi_datagen::open_loop_arrivals`]) spread
//! over a fixed set of client connections, with `(privacy_level, δ)` keys
//! drawn from a Zipf-skewed [`RequestMix`].  Because the harness is
//! **open-loop**, a slow server does not slow the offered load down — late
//! completions simply accumulate queueing delay — and every latency is
//! measured from the request's scheduled arrival time, so the recorded
//! [`Histogram`] is free of coordinated omission.
//!
//! The harness understands the server's admission-control contract: a
//! structured [`ServiceErrorKind::Overloaded`] reply counts as a *shed* (the
//! connection stays healthy, the request is not retried), any other failure
//! counts as an error, and a poisoned connection is replaced.  Connection
//! churn — tearing a connection down and reconnecting every N requests — is
//! part of the profile, exercising the accept/handshake path under load.
//!
//! [`ServiceErrorKind::Overloaded`]: corgi_framework::messages::ServiceErrorKind::Overloaded
//! [`TcpServer`]: corgi_framework::TcpServer

use corgi_datagen::{open_loop_arrivals, RequestMix};
use corgi_framework::messages::MatrixRequest;
use corgi_framework::{ClientConfig, MatrixService, TcpTransport};
use criterion::Histogram;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Shape of one open-loop load run.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Client connections (each owns a worker thread and a [`TcpTransport`]).
    pub connections: usize,
    /// Aggregate arrival rate across all connections, in requests/second.
    pub rate_hz: f64,
    /// Length of the arrival schedule.
    pub duration: Duration,
    /// Privacy levels in the request mix.
    pub levels: Vec<u8>,
    /// δ values in the mix run `0..=max_delta` (the grid a warm plan covers).
    pub max_delta: usize,
    /// Zipf exponent of the key skew (0 = uniform; ~1 = strongly skewed).
    pub zipf_exponent: f64,
    /// Tear down and reconnect a connection after this many requests on it;
    /// 0 disables churn.
    pub churn_every: usize,
    /// Seed making the schedule and key sequence reproducible.
    pub seed: u64,
    /// Per-request deadline: a response not received within it is a timeout
    /// error (and the connection is replaced).  This is what turns "the
    /// server hung" into a visible failure instead of a stuck run.
    pub request_timeout: Duration,
}

impl Default for LoadProfile {
    fn default() -> Self {
        Self {
            connections: 8,
            rate_hz: 200.0,
            duration: Duration::from_secs(2),
            levels: vec![1],
            max_delta: 1,
            zipf_exponent: 1.0,
            churn_every: 0,
            seed: 42,
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// Outcome of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests in the arrival schedule.
    pub offered: usize,
    /// Requests that received *any* answer (success, shed, or error) within
    /// their deadline.  `completed == offered` means nothing hung.
    pub completed: usize,
    /// Successful privacy-forest responses.
    pub ok: usize,
    /// Requests the server shed with a retryable `Overloaded` error.
    pub shed: usize,
    /// Every other failure: timeouts, transport errors, failed reconnects.
    pub errors: usize,
    /// Connections re-established, by churn or after poisoning.
    pub reconnects: usize,
    /// Wall-clock span of the run (schedule length plus drain tail).
    pub elapsed: Duration,
    /// Latency of every successful request, measured from its scheduled
    /// arrival time.
    pub histogram: Histogram,
}

impl LoadReport {
    /// Successful responses per second of wall-clock time.
    pub fn goodput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Offered arrival rate actually realized by the schedule.
    pub fn offered_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.offered as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// One scheduled request: its arrival offset and key.
struct Slot {
    at: Duration,
    request: MatrixRequest,
}

/// Per-worker tally folded into the [`LoadReport`].
#[derive(Default)]
struct WorkerOutcome {
    completed: usize,
    ok: usize,
    shed: usize,
    errors: usize,
    reconnects: usize,
    histogram: Histogram,
}

fn connect(addr: SocketAddr, timeout: Duration) -> Result<TcpTransport, String> {
    TcpTransport::connect_with(
        addr,
        ClientConfig {
            read_timeout: Some(timeout),
            ..ClientConfig::default()
        },
    )
    .map_err(|e| e.to_string())
}

/// Run one open-loop load profile against a serving address.
///
/// Blocks until every scheduled request has been resolved (answered, shed,
/// or failed against its deadline) and returns the merged [`LoadReport`].
/// The codec each connection negotiates follows `CORGI_WIRE_CODEC`, exactly
/// like any other client.
pub fn run(addr: SocketAddr, profile: &LoadProfile) -> LoadReport {
    assert!(
        profile.connections >= 1,
        "load needs at least one connection"
    );
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let mix = RequestMix::new(&profile.levels, profile.max_delta, profile.zipf_exponent);
    let arrivals = open_loop_arrivals(profile.rate_hz, profile.duration, &mut rng);
    let offered = arrivals.len();

    // Round-robin the schedule over the connections; each worker replays its
    // own slice against the shared start instant, so the aggregate process
    // keeps the configured rate regardless of per-connection speed.
    let mut schedules: Vec<Vec<Slot>> = (0..profile.connections).map(|_| Vec::new()).collect();
    for (index, at) in arrivals.into_iter().enumerate() {
        let (privacy_level, delta) = mix.sample(&mut rng);
        schedules[index % profile.connections].push(Slot {
            at,
            request: MatrixRequest {
                privacy_level,
                delta,
            },
        });
    }

    let start = Instant::now();
    let timeout = profile.request_timeout;
    let churn_every = profile.churn_every;
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .map(|schedule| {
                scope.spawn(move || {
                    let mut outcome = WorkerOutcome::default();
                    let mut transport = connect(addr, timeout).ok();
                    let mut since_connect = 0usize;
                    for slot in schedule {
                        // Open loop: wait for the scheduled time, never for
                        // the previous response (that already happened — the
                        // exchange is synchronous per connection, which is
                        // exactly the queueing delay the latency records).
                        let now = start.elapsed();
                        if slot.at > now {
                            std::thread::sleep(slot.at - now);
                        }
                        if churn_every > 0 && since_connect >= churn_every {
                            transport = None;
                        }
                        let conn = match &transport {
                            Some(conn) => conn,
                            None => match connect(addr, timeout) {
                                Ok(conn) => {
                                    outcome.reconnects += 1;
                                    since_connect = 0;
                                    transport.insert(conn)
                                }
                                Err(_) => {
                                    outcome.completed += 1;
                                    outcome.errors += 1;
                                    continue;
                                }
                            },
                        };
                        since_connect += 1;
                        let result = conn.privacy_forest(slot.request);
                        let latency = start.elapsed().saturating_sub(slot.at);
                        outcome.completed += 1;
                        match result {
                            Ok(_) => {
                                outcome.ok += 1;
                                outcome.histogram.record_duration(latency);
                            }
                            Err(e) if e.is_retryable() => outcome.shed += 1,
                            Err(_) => {
                                outcome.errors += 1;
                                // A non-shed failure poisoned (or may have
                                // poisoned) the stream; replace the
                                // connection rather than failing every
                                // remaining slot.
                                if conn.stats().poisoned_connections > 0 {
                                    transport = None;
                                }
                            }
                        }
                    }
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut report = LoadReport {
        offered,
        completed: 0,
        ok: 0,
        shed: 0,
        errors: 0,
        reconnects: 0,
        elapsed,
        histogram: Histogram::new(),
    };
    for outcome in outcomes {
        report.completed += outcome.completed;
        report.ok += outcome.ok;
        report.shed += outcome.shed;
        report.errors += outcome.errors;
        report.reconnects += outcome.reconnects;
        report.histogram.merge(&outcome.histogram);
    }
    report
}
