//! Experiment harness shared by the per-figure binaries.
//!
//! Every figure of the paper's evaluation (Section 6) has a binary in
//! `src/bin/` that prints its series as an aligned text table and writes the raw
//! numbers as JSON under `target/experiments/`.  This module provides the
//! common setup: the experiment grid, the synthetic Gowalla-like dataset, priors
//! and targets, and small table/JSON helpers.
//!
//! # Experiment grid
//!
//! The paper builds a height-3 H3 tree (343 leaves) over San Francisco and
//! sweeps ε over 15–20 /km.  With H3's own cell sizes that makes `ε·d ≈ 5–8`
//! between adjacent cells, at which the Geo-Ind constraints barely bind and the
//! optimal quality loss is ≈ 0 — while the paper reports clearly non-trivial
//! quality losses (0.5–2 km).  To run in the regime the paper's numbers exhibit
//! we set the leaf spacing so that `ε·d ≈ 1.8` for adjacent cells (0.12 km),
//! i.e. a dense downtown grid; all qualitative shapes (who wins, monotonicity,
//! crossovers) are produced in this regime.  This substitution is recorded in
//! DESIGN.md and EXPERIMENTS.md.

#![warn(missing_docs)]

use corgi_core::{LocationTree, ObfuscationProblem, Subtree};
use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator, LocationMetadata, PriorDistribution};
use corgi_geo::LatLng;
use corgi_hexgrid::{CellId, HexGrid, HexGridConfig};
use std::fs;
use std::path::PathBuf;

pub mod loadgen;

/// Privacy budget values swept by the paper (1/km).
pub const PAPER_EPSILONS: [f64; 4] = [15.0, 16.0, 17.0, 18.0];

/// Default privacy budget (1/km) used where the paper fixes ε = 15 /km.
pub const DEFAULT_EPSILON: f64 = 15.0;

/// Number of target locations (the paper's `NR_TARGET = 49`).
pub const NR_TARGET: usize = 49;

/// Everything the experiment binaries need.
pub struct ExperimentContext {
    /// The location tree over the experiment grid.
    pub tree: LocationTree,
    /// Prior distribution computed from the synthetic Gowalla-like training split.
    pub prior: PriorDistribution,
    /// Location metadata (home/office/popular/outlier labels).
    pub metadata: LocationMetadata,
}

impl ExperimentContext {
    /// Build the standard experiment context (deterministic).
    pub fn standard() -> Self {
        let grid_config = HexGridConfig {
            center: LatLng::new(37.7749, -122.4194).expect("static coordinates are valid"),
            height: 3,
            leaf_spacing_km: 0.12,
        };
        let grid = HexGrid::new(grid_config).expect("experiment grid is valid");
        let data_config = GowallaLikeConfig {
            center_decay_km: 0.6,
            ..GowallaLikeConfig::default()
        };
        let (dataset, _anchors) = GowallaLikeGenerator::new(data_config).generate(&grid);
        let metadata = LocationMetadata::from_dataset(&grid, &dataset, 0.9);
        let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
        Self {
            tree: LocationTree::new(grid),
            prior,
            metadata,
        }
    }

    /// The grid underlying the tree.
    pub fn grid(&self) -> &HexGrid {
        self.tree.grid()
    }

    /// The first privacy-level-2 subtree (49 leaves) — the paper's default
    /// obfuscation range.
    pub fn level2_subtree(&self) -> Subtree {
        self.tree
            .privacy_forest(2)
            .expect("level 2 exists")
            .into_iter()
            .next()
            .expect("forest is non-empty")
    }

    /// Build the obfuscation problem of a subtree with the standard priors and
    /// `NR_TARGET` targets.
    pub fn problem_for_subtree(
        &self,
        subtree: &Subtree,
        epsilon: f64,
        graph_approximation: bool,
    ) -> ObfuscationProblem {
        let prior = self
            .prior
            .restricted_to(self.grid(), subtree.leaves())
            .unwrap_or_else(|| vec![1.0 / subtree.leaf_count() as f64; subtree.leaf_count()]);
        let targets = spread_targets(subtree.leaf_count(), NR_TARGET);
        ObfuscationProblem::new(
            &self.tree,
            subtree,
            &prior,
            &targets,
            epsilon,
            graph_approximation,
        )
        .expect("experiment problem is well formed")
    }

    /// Build a problem over the `n` leaf cells closest to the level-2 subtree
    /// center (used by the sweeps over 28–70 locations).
    pub fn problem_for_n_locations(
        &self,
        n: usize,
        epsilon: f64,
        graph_approximation: bool,
    ) -> ObfuscationProblem {
        let cells = self.closest_leaves(n);
        let prior = self
            .prior
            .restricted_to(self.grid(), &cells)
            .unwrap_or_else(|| vec![1.0 / n as f64; n]);
        let targets = spread_targets(n, NR_TARGET);
        ObfuscationProblem::from_leaves(
            &self.tree,
            &cells,
            &prior,
            &targets,
            epsilon,
            graph_approximation,
        )
        .expect("experiment problem is well formed")
    }

    /// The `n` leaf cells closest to the region center.
    pub fn closest_leaves(&self, n: usize) -> Vec<CellId> {
        let root = self.grid().root();
        let mut leaves: Vec<CellId> = self.grid().leaves().to_vec();
        leaves.sort_by(|a, b| {
            let da = self.grid().cell_distance_km(a, &root);
            let db = self.grid().cell_distance_km(b, &root);
            da.partial_cmp(&db).expect("distances are finite")
        });
        leaves.truncate(n);
        leaves
    }
}

/// Evenly spread `count` target indices over `n` locations.
pub fn spread_targets(n: usize, count: usize) -> Vec<usize> {
    let count = count.min(n).max(1);
    (0..count).map(|i| i * n / count).collect()
}

/// Print an aligned table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Write an experiment result as JSON under `target/experiments/<name>.json`.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from("target/experiments");
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(body) = serde_json::to_string_pretty(value) {
            let _ = fs::write(path, body);
        }
    }
}

/// Whether the binary was invoked with `--full` (run the paper-scale version).
pub fn full_scale_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_context_builds() {
        let ctx = ExperimentContext::standard();
        assert_eq!(ctx.grid().leaf_count(), 343);
        assert_eq!(ctx.level2_subtree().leaf_count(), 49);
        assert_eq!(ctx.closest_leaves(70).len(), 70);
    }

    #[test]
    fn spread_targets_covers_range() {
        let t = spread_targets(49, 49);
        assert_eq!(t.len(), 49);
        assert_eq!(t[0], 0);
        let t = spread_targets(10, 49);
        assert_eq!(t.len(), 10);
        let t = spread_targets(100, 4);
        assert_eq!(t, vec![0, 25, 50, 75]);
    }

    #[test]
    fn problems_build_for_various_sizes() {
        let ctx = ExperimentContext::standard();
        for n in [7usize, 28, 49] {
            let p = ctx.problem_for_n_locations(n, DEFAULT_EPSILON, true);
            assert_eq!(p.size(), n);
        }
        let p = ctx.problem_for_subtree(&ctx.level2_subtree(), DEFAULT_EPSILON, false);
        assert_eq!(p.size(), 49);
        assert!(!p.uses_graph_approximation());
    }
}
