//! Figure 13: impact of the obfuscation range (privacy level) on quality loss,
//! as a function of ε (panel a) and of δ (panel b).
//!
//! The paper compares privacy level 2 (49 leaves) with privacy level 3
//! (343 leaves).  The default run compares levels 1 (7 leaves) and 2 (49
//! leaves), which exhibits the same monotone relationship at a fraction of the
//! cost; `--full` runs the paper-scale 2-vs-3 comparison.

use corgi_bench::{print_table, write_json, ExperimentContext, PAPER_EPSILONS};
use corgi_core::{generate_robust_matrix, RobustConfig, SolverKind};

fn main() {
    let ctx = ExperimentContext::standard();
    let full = corgi_bench::full_scale_requested();
    let levels: [u8; 2] = if full { [2, 3] } else { [1, 2] };
    let iterations = if full { 10 } else { 4 };

    let subtree_for = |level: u8| {
        ctx.tree
            .privacy_forest(level)
            .expect("level exists")
            .into_iter()
            .next()
            .expect("forest non-empty")
    };

    // ---- (a) quality loss vs epsilon (delta = 1) ----
    let mut rows_a = Vec::new();
    let mut json_a = Vec::new();
    for &eps in &PAPER_EPSILONS {
        let mut row = vec![format!("{eps}")];
        let mut entry = serde_json::json!({ "epsilon": eps });
        for &level in &levels {
            let problem = ctx.problem_for_subtree(&subtree_for(level), eps, true);
            let run = generate_robust_matrix(
                &problem,
                &RobustConfig {
                    delta: 1,
                    iterations,
                    solver: SolverKind::Auto,
                },
            )
            .expect("robust generation");
            let q = problem.quality_loss(&run.matrix);
            row.push(format!("{q:.4}"));
            entry[format!("privacy_level_{level}")] = serde_json::json!(q);
        }
        rows_a.push(row);
        json_a.push(entry);
    }
    print_table(
        &format!(
            "Fig. 13(a) — quality loss (km) vs epsilon, privacy levels {} and {}",
            levels[0], levels[1]
        ),
        &["epsilon", "lower level", "higher level"],
        &rows_a,
    );

    // ---- (b) quality loss vs delta (epsilon = 15) ----
    let deltas: Vec<usize> = if full {
        (1..=5).collect()
    } else {
        vec![1, 2, 3]
    };
    let mut rows_b = Vec::new();
    let mut json_b = Vec::new();
    for &delta in &deltas {
        let mut row = vec![format!("{delta}")];
        let mut entry = serde_json::json!({ "delta": delta });
        for &level in &levels {
            let problem =
                ctx.problem_for_subtree(&subtree_for(level), corgi_bench::DEFAULT_EPSILON, true);
            let run = generate_robust_matrix(
                &problem,
                &RobustConfig {
                    delta,
                    iterations,
                    solver: SolverKind::Auto,
                },
            )
            .expect("robust generation");
            let q = problem.quality_loss(&run.matrix);
            row.push(format!("{q:.4}"));
            entry[format!("privacy_level_{level}")] = serde_json::json!(q);
        }
        rows_b.push(row);
        json_b.push(entry);
    }
    print_table(
        &format!(
            "Fig. 13(b) — quality loss (km) vs delta, privacy levels {} and {}",
            levels[0], levels[1]
        ),
        &["delta", "lower level", "higher level"],
        &rows_b,
    );

    write_json(
        "fig13_privacy_level",
        &serde_json::json!({ "vs_epsilon": json_a, "vs_delta": json_b }),
    );
    println!("\nExpected shape (paper Fig. 13): the higher privacy level (wider obfuscation range) always has the larger quality loss; loss decreases with epsilon and increases with delta.");
}
