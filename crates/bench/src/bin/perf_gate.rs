//! CI perf gate: compare `BENCH_results.json` (JSON-lines emitted by the
//! criterion shim when `CORGI_BENCH_JSON` is set) against the checked-in
//! `BENCH_baseline.json` and fail when a named bench regresses.
//!
//! ```text
//! perf_gate [--results PATH] [--baseline PATH] [--absolute]
//! ```
//!
//! # Ratio gating (default)
//!
//! Absolute medians are machine-specific: a runner-generation change moves
//! every number at once and either trips the gate spuriously or forces a
//! tolerance so wide it misses real regressions.  The default mode therefore
//! gates on **within-run ratios**: each optimized bench is paired with the
//! reference implementation measured in the *same* run (`…/blocked/…` vs
//! `…/reference/…`, `fused_in_place` vs `per_column`), and the gate fails when
//! `optimized/reference` grows by more than the tolerance relative to the
//! baseline's ratio.  Losing an optimized kernel path is a 2–7× ratio jump
//! and is caught on any hardware; uniform machine slowdowns cancel out.
//!
//! Pairs whose two sides do *different kinds* of work (the binary wire codec
//! is memcpy-bound, its JSON reference is formatting-bound) carry a widened
//! per-pair tolerance multiplier in the pair table, since such ratios shift
//! more across CPU generations; the regressions those pairs exist to catch
//! are 50–100× ratio jumps, far beyond any multiplier.
//!
//! A few pairs additionally carry a **hard cap on the current-run ratio**
//! (see `RATIO_CAPS`): the warm-chained refinement engine must stay ≤ 0.75×
//! its cold sibling on any machine, and the parallel block factorization must
//! stay ≤ 0.85× its serial sibling wherever a second core exists (on a
//! single-core runner both sides execute the identical serial path, so that
//! cap relaxes to parity plus the tolerance).  Drift gating alone would let a
//! baseline refreshed on a machine where the optimization is inert launder
//! the loss; the caps assert the optimization itself, not just its history.
//!
//! In ratio mode, reference-side benches (the slow comparison points named as
//! some optimized bench's sibling) are presence-checked only — their siblings
//! already gate the run, and a deliberately slow reference has no optimized
//! path to lose.  Optimized benches without a reference sibling (e.g. the
//! K = 343 blocked bench, whose reference run is too slow to time every push)
//! still gate on their absolute median at 3× the tolerance — wide enough to
//! survive runner-generation drift, tight enough to catch a lost kernel path.
//! `--absolute` (or `CORGI_PERF_GATE_ABSOLUTE=1`) gates every bench on
//! absolute medians at the plain tolerance instead.
//!
//! Every bench named in the baseline must be present in the results in both
//! modes (a renamed or deleted bench would otherwise silently leave the gate
//! open).  The tolerance is a fraction, default 20%, overridable with
//! `CORGI_PERF_GATE_TOLERANCE`.
//!
//! # Gate fields
//!
//! A baseline record gates on `median_ns` unless it names another numeric
//! field in `"gate_field"` — histogram records emitted by
//! `criterion::report_histogram` set `"gate_field":"p99_ns"`, so the loadgen
//! entry gates CI on tail latency under load rather than a median.  The same
//! field is read from both baseline and results; a results record missing
//! the gated field fails the gate.
//!
//! To refresh the baseline after an intentional perf change:
//!
//! ```text
//! rm -f BENCH_results.json
//! CORGI_BENCH_JSON=$PWD/BENCH_results.json cargo bench --bench lp_benches
//! cp BENCH_results.json BENCH_baseline.json
//! ```

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Substring rewrites that turn an optimized bench name into its same-run
/// reference sibling, with a per-pair tolerance multiplier.  A baseline name
/// pairs on the first rule that matches and whose rewritten name also exists
/// in the baseline.
///
/// The kernel pairs compare same-character workloads (both floating-point
/// compute), so their ratio is machine-stable and gates at 1× the tolerance.
/// The codec pairs compare a memcpy-bound path against a formatting-bound
/// one — those scale differently across CPU generations — so they gate at 3×
/// the tolerance, which still catches the failure mode they exist for
/// (losing the raw-f64-run encoding is a ~50-100× ratio jump).
const RATIO_PAIRS: &[(&str, &str, f64)] = &[
    ("/blocked", "/reference", 1.0),
    ("fused_in_place", "per_column", 1.0),
    ("pooled", "serial", 1.0),
    ("/binary", "/json", 3.0),
    ("warm_hit_roundtrip", "warm_hit_roundtrip_json", 3.0),
    // The readiness backend vs the 500 µs poll tick it replaced, measured on
    // the same warm-hit round trip in the same run.  Losing the epoll path
    // (a silently broken registration degrading to timers) collapses this
    // ratio toward 1.0 — a ~10× jump, caught at any tolerance.  One side
    // blocks in epoll_pwait and the other in a timed condvar wait, so the
    // ratio shifts more across schedulers than the kernel pairs: 3× tolerance.
    ("/epoll", "/tick", 3.0),
    // The incremental refinement engine (warm-chained, tolerance ladder) vs
    // eleven independent full-tolerance cold solves of the same chain, same
    // run, same thread count: losing warm capture or application collapses
    // the ratio toward 1.0.
    ("k49/warm", "k49/cold", 1.0),
    // Parallel block factorization vs the serial path in the same run.  On a
    // single-core runner both sides execute the identical serial code, so the
    // drift gate still holds at 1× tolerance; the multicore-only cap below is
    // what catches a lost parallel path.
    ("/n_threads", "/1_thread", 1.0),
];

/// Hard caps on the *current-run* ratio of a gated pair, independent of the
/// baseline.  Drift gating catches regressions relative to history; these
/// caps encode the stronger invariant that the optimized side must actually
/// beat its reference — a baseline accidentally refreshed on a machine where
/// the optimization is inert would otherwise launder the loss.
struct RatioCap {
    /// Substring naming the optimized side (same matching as [`RATIO_PAIRS`]).
    optimized: &'static str,
    /// Maximum allowed `optimized/reference` ratio in the current run.
    max_ratio: f64,
    /// Whether the cap only binds on a multi-core machine.  On a single core
    /// the parallel kernels run the identical serial path, so the cap relaxes
    /// to parity plus the tolerance.
    multicore_only: bool,
}

const RATIO_CAPS: &[RatioCap] = &[
    // Grid warming must be decisively cheaper than cold re-solves on any
    // machine: warm restarts converge in a fraction of the cold iteration
    // count, independent of core count.
    RatioCap {
        optimized: "k49/warm",
        max_ratio: 0.75,
        multicore_only: false,
    },
    // Parallel factorization must beat serial wherever a second core exists.
    RatioCap {
        optimized: "/n_threads",
        max_ratio: 0.85,
        multicore_only: true,
    },
];

/// The ratio cap binding `name`, if any.
fn ratio_cap(name: &str) -> Option<&'static RatioCap> {
    RATIO_CAPS.iter().find(|cap| name.contains(cap.optimized))
}

/// The cap actually enforced for a run: the configured cap, or parity plus
/// tolerance when the cap is multicore-only and the machine is not.
fn enforced_cap(cap: &RatioCap, multicore: bool, tol: f64) -> f64 {
    if cap.multicore_only && !multicore {
        1.0 + tol
    } else {
        cap.max_ratio
    }
}

fn is_multicore() -> bool {
    std::thread::available_parallelism()
        .map(|n| n.get() >= 2)
        .unwrap_or(false)
}

/// Whole records per bench name; later lines win, so re-running a bench
/// binary into the same results file updates its entries.  Each record must
/// carry `name` and a numeric value under its gate field (`median_ns` unless
/// the record names another field in `gate_field`, e.g. the loadgen entry
/// gating on `p99_ns`).
fn parse_jsonl(path: &str) -> Result<BTreeMap<String, Value>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records = BTreeMap::new();
    for (lineno, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e:?}", lineno + 1))?;
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}:{}: missing \"name\"", lineno + 1))?
            .to_string();
        let field = gate_field(&value);
        if metric(&value, field).is_none() {
            return Err(format!(
                "{path}:{}: missing numeric \"{field}\"",
                lineno + 1
            ));
        }
        records.insert(name, value);
    }
    Ok(records)
}

/// The field this record gates on: `median_ns` unless the record says
/// otherwise (histogram entries gate on a percentile, e.g. `p99_ns`).
fn gate_field(record: &Value) -> &str {
    record
        .get("gate_field")
        .and_then(Value::as_str)
        .unwrap_or("median_ns")
}

/// The numeric value of `field` in a record.
fn metric(record: &Value, field: &str) -> Option<f64> {
    record.get(field).and_then(Value::as_f64)
}

/// The reference sibling a bench's ratio is computed against (and the pair's
/// tolerance multiplier), if the pair table names one that exists in `names`.
fn reference_pair(name: &str, names: &BTreeMap<String, Value>) -> Option<(String, f64)> {
    for (optimized, reference, tol_multiplier) in RATIO_PAIRS {
        if name.contains(optimized) {
            let sibling = name.replace(optimized, reference);
            if sibling != name && names.contains_key(&sibling) {
                return Some((sibling, *tol_multiplier));
            }
        }
    }
    None
}

/// The reference sibling alone (see [`reference_pair`]).
fn reference_sibling(name: &str, names: &BTreeMap<String, Value>) -> Option<String> {
    reference_pair(name, names).map(|(sibling, _)| sibling)
}

/// Shared verdict ladder: classify a drift factor against a failure
/// tolerance, recording a failure line when it regresses.
fn judge(
    drift: f64,
    fail_tol: f64,
    improve_tol: f64,
    failures: &mut Vec<String>,
    failure_line: impl FnOnce() -> String,
) -> &'static str {
    if drift > 1.0 + fail_tol {
        failures.push(failure_line());
        "REGRESSED"
    } else if drift < 1.0 - improve_tol {
        "improved"
    } else {
        "ok"
    }
}

fn tolerance() -> f64 {
    std::env::var("CORGI_PERF_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.20)
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn main() -> ExitCode {
    let mut results_path = "BENCH_results.json".to_string();
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut absolute = std::env::var("CORGI_PERF_GATE_ABSOLUTE")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--results" => {
                results_path = args.next().unwrap_or_else(|| {
                    eprintln!("--results needs a path");
                    std::process::exit(2);
                })
            }
            "--baseline" => {
                baseline_path = args.next().unwrap_or_else(|| {
                    eprintln!("--baseline needs a path");
                    std::process::exit(2);
                })
            }
            "--absolute" => absolute = true,
            other => {
                eprintln!(
                    "unknown argument {other}; usage: perf_gate [--results PATH] [--baseline PATH] [--absolute]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let (results, baseline) = match (parse_jsonl(&results_path), parse_jsonl(&baseline_path)) {
        (Ok(r), Ok(b)) => (r, b),
        (r, b) => {
            for err in [r.err(), b.err()].into_iter().flatten() {
                eprintln!("perf_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let tol = tolerance();
    println!(
        "perf gate ({} mode): {} baseline benches, {} result benches, tolerance +{:.0}%",
        if absolute { "absolute" } else { "ratio" },
        baseline.len(),
        results.len(),
        tol * 100.0
    );
    // Names that serve as the reference side of some gated ratio: they are
    // deliberately slow comparison points with no optimized path to lose, so
    // in ratio mode they are presence-checked but not gated (their optimized
    // siblings already gate the same run).
    let reference_names: std::collections::BTreeSet<String> = baseline
        .keys()
        .filter_map(|name| reference_sibling(name, &baseline))
        .collect();
    let mut failures = Vec::new();
    for (name, base_record) in &baseline {
        // The baseline entry decides which field gates this bench: medians
        // for classic benches, a tail percentile (e.g. `p99_ns`) for
        // histogram entries like the loadgen run.
        let field = gate_field(base_record);
        let base_ns = metric(base_record, field).expect("validated by parse_jsonl");
        let Some(now_record) = results.get(name) else {
            failures.push(format!(
                "{name}: missing from results (renamed or deleted?)"
            ));
            continue;
        };
        let Some(now_ns) = metric(now_record, field) else {
            failures.push(format!(
                "{name}: results record lacks the gated field \"{field}\""
            ));
            continue;
        };
        let shown = if field == "median_ns" {
            name.clone()
        } else {
            format!("{name} [{field}]")
        };
        if absolute {
            let ratio = now_ns / base_ns.max(1.0);
            let verdict = judge(ratio, tol, tol, &mut failures, || {
                format!(
                    "{shown}: {} → {} ({:+.1}%)",
                    format_ns(base_ns),
                    format_ns(now_ns),
                    (ratio - 1.0) * 100.0
                )
            });
            println!(
                "  {shown:<50} baseline {:>10}  now {:>10}  {:+7.1}%  {verdict}",
                format_ns(base_ns),
                format_ns(now_ns),
                (ratio - 1.0) * 100.0
            );
            continue;
        }
        // Ratio mode: gate optimized/reference drift measured within one run.
        if reference_names.contains(name) {
            println!(
                "  {shown:<50} baseline {:>10}  now {:>10}  (reference side of a gated ratio; presence-checked only)",
                format_ns(base_ns),
                format_ns(now_ns),
            );
            continue;
        }
        let Some((sibling, pair_tol_multiplier)) = reference_pair(name, &baseline) else {
            // No reference sibling to ratio against (e.g. the K = 343 blocked
            // bench, whose reference is too slow to gate on): fall back to
            // absolute gating at a widened tolerance — loose enough to
            // survive runner-generation drift (~25-30%), tight enough to
            // catch the step-function regressions the gate exists for
            // (losing an optimized kernel path is a 2-7x hit).
            let unpaired_tol = 3.0 * tol;
            let ratio = now_ns / base_ns.max(1.0);
            let verdict = judge(ratio, unpaired_tol, tol, &mut failures, || {
                format!(
                    "{shown}: {} → {} ({:+.1}%, unpaired absolute gate at +{:.0}%)",
                    format_ns(base_ns),
                    format_ns(now_ns),
                    (ratio - 1.0) * 100.0,
                    unpaired_tol * 100.0
                )
            });
            println!(
                "  {shown:<50} baseline {:>10}  now {:>10}  {:+7.1}%  {verdict} (unpaired; absolute at +{:.0}%)",
                format_ns(base_ns),
                format_ns(now_ns),
                (ratio - 1.0) * 100.0,
                unpaired_tol * 100.0
            );
            continue;
        };
        let (Some(base_sib), Some(now_sib)) = (baseline.get(&sibling), results.get(&sibling))
        else {
            // Presence of the sibling in the results is checked by its own
            // baseline iteration; skip the ratio rather than divide by air.
            continue;
        };
        let sib_field = gate_field(base_sib);
        let (Some(base_ref), Some(now_ref)) =
            (metric(base_sib, sib_field), metric(now_sib, sib_field))
        else {
            continue;
        };
        let base_ratio = base_ns / base_ref.max(1.0);
        let now_ratio = now_ns / now_ref.max(1.0);
        let drift = now_ratio / base_ratio.max(1e-12);
        let pair_tol = tol * pair_tol_multiplier;
        if let Some(cap) = ratio_cap(name) {
            let limit = enforced_cap(cap, is_multicore(), tol);
            if now_ratio > limit {
                failures.push(format!(
                    "{shown}: current-run ratio vs {sibling} is {now_ratio:.3}, above the {limit:.2} cap (the optimized path must beat its reference outright)"
                ));
            }
        }
        let verdict = judge(drift, pair_tol, tol, &mut failures, || {
            format!(
                "{shown}: ratio vs {sibling} {base_ratio:.3} → {now_ratio:.3} ({:+.1}%, gated at +{:.0}%)",
                (drift - 1.0) * 100.0,
                pair_tol * 100.0
            )
        });
        println!(
            "  {shown:<50} ratio {base_ratio:>6.3} → {now_ratio:>6.3}  {:+7.1}%  {verdict} (gate +{:.0}%)",
            (drift - 1.0) * 100.0,
            pair_tol * 100.0
        );
    }
    for name in results.keys() {
        if !baseline.contains_key(name) {
            println!("  {name:<50} (not in baseline; not gated)");
        }
    }

    if failures.is_empty() {
        println!("perf gate: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate: FAIL");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "If the regression is intentional, refresh BENCH_baseline.json (see README § Performance)."
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_jsonl_reads_records_and_later_lines_win() {
        let path =
            std::env::temp_dir().join(format!("perf_gate_test_{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            concat!(
                "{\"name\":\"a/b\",\"median_ns\":100,\"samples\":5}\n",
                "\n",
                "{\"name\":\"c/d\",\"median_ns\":2.5e3,\"samples\":5}\n",
                "{\"name\":\"a/b\",\"median_ns\":120,\"samples\":5}\n",
            ),
        )
        .unwrap();
        let records = parse_jsonl(path.to_str().unwrap()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(metric(&records["a/b"], "median_ns"), Some(120.0));
        assert_eq!(metric(&records["c/d"], "median_ns"), Some(2500.0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parse_jsonl_reports_malformed_lines() {
        let path = std::env::temp_dir().join(format!("perf_gate_bad_{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"median_ns\":100}\n").unwrap();
        let err = parse_jsonl(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("missing \"name\""), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parse_jsonl_validates_the_declared_gate_field() {
        let path =
            std::env::temp_dir().join(format!("perf_gate_field_{}.jsonl", std::process::id()));
        // A histogram record gating on p99_ns parses even though readers of
        // median_ns alone would also find one; a record declaring a gate
        // field it does not carry is rejected.
        std::fs::write(
            &path,
            "{\"name\":\"loadgen/calibrated\",\"median_ns\":1e6,\"p99_ns\":9e6,\"gate_field\":\"p99_ns\"}\n",
        )
        .unwrap();
        let records = parse_jsonl(path.to_str().unwrap()).unwrap();
        let record = &records["loadgen/calibrated"];
        assert_eq!(gate_field(record), "p99_ns");
        assert_eq!(metric(record, gate_field(record)), Some(9e6));

        std::fs::write(
            &path,
            "{\"name\":\"loadgen/calibrated\",\"median_ns\":1e6,\"gate_field\":\"p99_ns\"}\n",
        )
        .unwrap();
        let err = parse_jsonl(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("missing numeric \"p99_ns\""), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn gate_field_defaults_to_median() {
        let record: Value = serde_json::json!({"name": "a", "median_ns": 5.0});
        assert_eq!(gate_field(&record), "median_ns");
        assert_eq!(metric(&record, gate_field(&record)), Some(5.0));
        assert_eq!(metric(&record, "p99_ns"), None);
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(850.0), "850ns");
        assert_eq!(format_ns(1_500.0), "1.50µs");
        assert_eq!(format_ns(2_500_000.0), "2.50ms");
        assert_eq!(format_ns(7.8e9), "7.80s");
    }

    #[test]
    fn ratio_pairs_resolve_reference_siblings() {
        let mut names = BTreeMap::new();
        for name in [
            "cholesky_factorize/blocked/49",
            "cholesky_factorize/reference/49",
            "cholesky_multi_rhs/fused_in_place",
            "cholesky_multi_rhs/per_column",
            "forest_generation_k343_2iters/blocked",
        ] {
            names.insert(name.to_string(), serde_json::json!({"median_ns": 1.0}));
        }
        assert_eq!(
            reference_sibling("cholesky_factorize/blocked/49", &names).as_deref(),
            Some("cholesky_factorize/reference/49")
        );
        assert_eq!(
            reference_sibling("cholesky_multi_rhs/fused_in_place", &names).as_deref(),
            Some("cholesky_multi_rhs/per_column")
        );
        // Optimized bench without a measured reference: unpaired, not gated.
        assert_eq!(
            reference_sibling("forest_generation_k343_2iters/blocked", &names),
            None
        );
        // Reference benches never pair onto themselves.
        assert_eq!(
            reference_sibling("cholesky_factorize/reference/49", &names),
            None
        );
    }

    #[test]
    fn warm_and_parallel_benches_pair_and_carry_caps() {
        let mut names = BTreeMap::new();
        for name in [
            "warm_vs_cold_ipm/k49/warm",
            "warm_vs_cold_ipm/k49/cold",
            "block_factorize_parallel/n_threads",
            "block_factorize_parallel/1_thread",
        ] {
            names.insert(name.to_string(), serde_json::json!({"median_ns": 1.0}));
        }
        assert_eq!(
            reference_pair("warm_vs_cold_ipm/k49/warm", &names),
            Some(("warm_vs_cold_ipm/k49/cold".to_string(), 1.0))
        );
        assert_eq!(
            reference_pair("block_factorize_parallel/n_threads", &names),
            Some(("block_factorize_parallel/1_thread".to_string(), 1.0))
        );
        // The cold and serial sides are reference points, never paired.
        assert_eq!(reference_sibling("warm_vs_cold_ipm/k49/cold", &names), None);
        assert_eq!(
            reference_sibling("block_factorize_parallel/1_thread", &names),
            None
        );

        // Caps: warm binds everywhere; parallel binds only with ≥ 2 cores.
        let warm = ratio_cap("warm_vs_cold_ipm/k49/warm").expect("warm cap");
        assert!(!warm.multicore_only);
        assert_eq!(enforced_cap(warm, false, 0.2), 0.75);
        assert_eq!(enforced_cap(warm, true, 0.2), 0.75);
        let par = ratio_cap("block_factorize_parallel/n_threads").expect("parallel cap");
        assert!(par.multicore_only);
        assert_eq!(enforced_cap(par, true, 0.2), 0.85);
        assert!((enforced_cap(par, false, 0.2) - 1.2).abs() < 1e-12);
        // Uncapped benches stay uncapped.
        assert!(ratio_cap("cholesky_factorize/blocked/49").is_none());
    }

    #[test]
    fn codec_benches_pair_binary_against_json() {
        let mut names = BTreeMap::new();
        for name in [
            "wire_codec/forest_roundtrip/binary",
            "wire_codec/forest_roundtrip/json",
            "transport_loopback/warm_hit_roundtrip",
            "transport_loopback/warm_hit_roundtrip_json",
            "transport_loopback/warm_hit_roundtrip/epoll",
            "transport_loopback/warm_hit_roundtrip/tick",
        ] {
            names.insert(name.to_string(), serde_json::json!({"median_ns": 1.0}));
        }
        // Codec pairs carry the widened (3×) tolerance multiplier: binary-vs-
        // JSON ratios compare memcpy-bound against formatting-bound work and
        // are less machine-stable than the same-character kernel pairs.
        assert_eq!(
            reference_pair("wire_codec/forest_roundtrip/binary", &names),
            Some(("wire_codec/forest_roundtrip/json".to_string(), 3.0))
        );
        assert_eq!(
            reference_pair("transport_loopback/warm_hit_roundtrip", &names),
            Some((
                "transport_loopback/warm_hit_roundtrip_json".to_string(),
                3.0
            ))
        );
        // The backend pair: the epoll round trip gates against the tick
        // round trip from the same run.  The "warm_hit_roundtrip" rule
        // matches the name first, but its rewritten sibling
        // (`…/warm_hit_roundtrip_json/epoll`) does not exist, so pairing
        // falls through to the `/epoll` → `/tick` rule.
        assert_eq!(
            reference_pair("transport_loopback/warm_hit_roundtrip/epoll", &names),
            Some((
                "transport_loopback/warm_hit_roundtrip/tick".to_string(),
                3.0
            ))
        );
        // The JSON and tick sides are reference points, never paired onto
        // themselves.
        assert_eq!(
            reference_sibling("wire_codec/forest_roundtrip/json", &names),
            None
        );
        assert_eq!(
            reference_sibling("transport_loopback/warm_hit_roundtrip_json", &names),
            None
        );
        assert_eq!(
            reference_sibling("transport_loopback/warm_hit_roundtrip/tick", &names),
            None
        );
    }
}
