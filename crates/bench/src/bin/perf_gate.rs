//! CI perf gate: compare `BENCH_results.json` (JSON-lines emitted by the
//! criterion shim when `CORGI_BENCH_JSON` is set) against the checked-in
//! `BENCH_baseline.json` and fail when a named bench regresses.
//!
//! ```text
//! perf_gate [--results PATH] [--baseline PATH]
//! ```
//!
//! Every bench named in the baseline must be present in the results (a renamed
//! or deleted bench would otherwise silently leave the gate open) and its
//! median must not exceed the baseline median by more than the tolerance
//! (default 20%, override with `CORGI_PERF_GATE_TOLERANCE`, a fraction).
//! Benches present in the results but not in the baseline are reported
//! informationally and do not gate — add them to the baseline to lock them in.
//!
//! To refresh the baseline after an intentional perf change:
//!
//! ```text
//! rm -f BENCH_results.json
//! CORGI_BENCH_JSON=$PWD/BENCH_results.json cargo bench --bench lp_benches
//! cp BENCH_results.json BENCH_baseline.json
//! ```

use serde_json::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Median nanoseconds per bench name; later lines win, so re-running a bench
/// binary into the same results file updates its entries.
fn parse_jsonl(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut medians = BTreeMap::new();
    for (lineno, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e:?}", lineno + 1))?;
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}:{}: missing \"name\"", lineno + 1))?;
        let median = value
            .get("median_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}:{}: missing \"median_ns\"", lineno + 1))?;
        medians.insert(name.to_string(), median);
    }
    Ok(medians)
}

fn tolerance() -> f64 {
    std::env::var("CORGI_PERF_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.20)
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn main() -> ExitCode {
    let mut results_path = "BENCH_results.json".to_string();
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--results" => {
                results_path = args.next().unwrap_or_else(|| {
                    eprintln!("--results needs a path");
                    std::process::exit(2);
                })
            }
            "--baseline" => {
                baseline_path = args.next().unwrap_or_else(|| {
                    eprintln!("--baseline needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown argument {other}; usage: perf_gate [--results PATH] [--baseline PATH]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let (results, baseline) = match (parse_jsonl(&results_path), parse_jsonl(&baseline_path)) {
        (Ok(r), Ok(b)) => (r, b),
        (r, b) => {
            for err in [r.err(), b.err()].into_iter().flatten() {
                eprintln!("perf_gate: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let tol = tolerance();
    println!(
        "perf gate: {} baseline benches, {} result benches, tolerance +{:.0}%",
        baseline.len(),
        results.len(),
        tol * 100.0
    );
    let mut failures = Vec::new();
    for (name, &base_ns) in &baseline {
        match results.get(name) {
            None => {
                failures.push(format!(
                    "{name}: missing from results (renamed or deleted?)"
                ));
            }
            Some(&now_ns) => {
                let ratio = now_ns / base_ns.max(1.0);
                let verdict = if ratio > 1.0 + tol {
                    failures.push(format!(
                        "{name}: {} → {} ({:+.1}%)",
                        format_ns(base_ns),
                        format_ns(now_ns),
                        (ratio - 1.0) * 100.0
                    ));
                    "REGRESSED"
                } else if ratio < 1.0 - tol {
                    "improved"
                } else {
                    "ok"
                };
                println!(
                    "  {name:<50} baseline {:>10}  now {:>10}  {:+7.1}%  {verdict}",
                    format_ns(base_ns),
                    format_ns(now_ns),
                    (ratio - 1.0) * 100.0
                );
            }
        }
    }
    for name in results.keys() {
        if !baseline.contains_key(name) {
            println!("  {name:<50} (not in baseline; not gated)");
        }
    }

    if failures.is_empty() {
        println!("perf gate: PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate: FAIL");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "If the regression is intentional, refresh BENCH_baseline.json (see README § Performance)."
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_jsonl_reads_medians_and_later_lines_win() {
        let path =
            std::env::temp_dir().join(format!("perf_gate_test_{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            concat!(
                "{\"name\":\"a/b\",\"median_ns\":100,\"samples\":5}\n",
                "\n",
                "{\"name\":\"c/d\",\"median_ns\":2.5e3,\"samples\":5}\n",
                "{\"name\":\"a/b\",\"median_ns\":120,\"samples\":5}\n",
            ),
        )
        .unwrap();
        let medians = parse_jsonl(path.to_str().unwrap()).unwrap();
        assert_eq!(medians.len(), 2);
        assert_eq!(medians["a/b"], 120.0);
        assert_eq!(medians["c/d"], 2500.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parse_jsonl_reports_malformed_lines() {
        let path = std::env::temp_dir().join(format!("perf_gate_bad_{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"median_ns\":100}\n").unwrap();
        let err = parse_jsonl(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("missing \"name\""), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(850.0), "850ns");
        assert_eq!(format_ns(1_500.0), "1.50µs");
        assert_eq!(format_ns(2_500_000.0), "2.50ms");
        assert_eq!(format_ns(7.8e9), "7.80s");
    }
}
