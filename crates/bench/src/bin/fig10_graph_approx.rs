//! Figure 10: efficacy of the graph approximation (Section 4.2).
//!
//! * (a) running time of robust matrix generation with and without the graph
//!   approximation, for δ = 1..7;
//! * (b) number of Geo-Ind constraints with and without the graph approximation,
//!   for 7..49 locations.

use corgi_bench::{print_table, write_json, ExperimentContext, DEFAULT_EPSILON};
use corgi_core::{generate_robust_matrix, RobustConfig, SolverKind};
use std::time::Instant;

fn main() {
    let ctx = ExperimentContext::standard();
    let full = corgi_bench::full_scale_requested();
    let subtree = ctx.level2_subtree();
    let iterations = if full { 10 } else { 3 };
    let deltas: Vec<usize> = if full {
        (1..=7).collect()
    } else {
        vec![1, 3, 5, 7]
    };

    // ---- (a) running time with vs without graph approximation ----
    let mut rows_a = Vec::new();
    let mut json_a = Vec::new();
    for &delta in &deltas {
        let mut times = Vec::new();
        for &graph_approx in &[false, true] {
            let problem = ctx.problem_for_subtree(&subtree, DEFAULT_EPSILON, graph_approx);
            let start = Instant::now();
            let _ = generate_robust_matrix(
                &problem,
                &RobustConfig {
                    delta,
                    iterations,
                    solver: SolverKind::Auto,
                },
            )
            .expect("robust generation");
            times.push(start.elapsed().as_secs_f64());
        }
        json_a.push(serde_json::json!({
            "delta": delta, "without_s": times[0], "with_s": times[1]
        }));
        rows_a.push(vec![
            format!("{delta}"),
            format!("{:.2}", times[0]),
            format!("{:.2}", times[1]),
            format!("{:.1}%", 100.0 * (1.0 - times[1] / times[0])),
        ]);
    }
    print_table(
        "Fig. 10(a) — robust generation time (s), 49 locations",
        &["delta", "without approx", "with approx", "reduction"],
        &rows_a,
    );

    // ---- (b) number of Geo-Ind constraints ----
    let mut rows_b = Vec::new();
    let mut json_b = Vec::new();
    for &n in &[7usize, 14, 21, 28, 35, 42, 49] {
        let without = ctx.problem_for_n_locations(n, DEFAULT_EPSILON, false);
        let with = ctx.problem_for_n_locations(n, DEFAULT_EPSILON, true);
        json_b.push(serde_json::json!({
            "locations": n,
            "without": without.num_geo_ind_constraints(),
            "with": with.num_geo_ind_constraints(),
        }));
        rows_b.push(vec![
            format!("{n}"),
            format!("{}", without.num_geo_ind_constraints()),
            format!("{}", with.num_geo_ind_constraints()),
            format!(
                "{:.1}%",
                100.0
                    * (1.0
                        - with.num_geo_ind_constraints() as f64
                            / without.num_geo_ind_constraints() as f64)
            ),
        ]);
    }
    print_table(
        "Fig. 10(b) — number of Geo-Ind constraints",
        &["locations", "without approx", "with approx", "reduction"],
        &rows_b,
    );
    write_json(
        "fig10_graph_approx",
        &serde_json::json!({ "running_time": json_a, "constraints": json_b }),
    );
    println!("\nExpected shape (paper Fig. 10): the graph approximation cuts the constraint count by >50% on average and reduces generation time at every delta.");
}
