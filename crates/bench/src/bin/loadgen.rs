//! Open-loop load generator against a self-hosted loopback server.
//!
//! Boots the full serving stack (caching service → forest generator → LP
//! solver pool behind a `TcpServer`), warms the request mix, replays an
//! open-loop Poisson arrival schedule against it, and reports the latency
//! histogram — on stdout and, when `CORGI_BENCH_JSON` names a file, as a
//! JSONL record gated by `perf_gate` on `p99_ns`.
//!
//! ```text
//! loadgen [--rate HZ] [--duration-secs S] [--connections N] [--zipf S]
//!         [--levels L1,L2,..] [--max-delta D] [--churn N] [--seed N]
//!         [--timeout-secs S] [--label NAME] [--profile calibrated]
//!         [--shards N] [--mode open|closed] [--reactor-shards N]
//!         [--chaos SEED]
//! ```
//!
//! `--profile calibrated` selects the fixed heavy-lane shape (the one the
//! `BENCH_baseline.json` entry was recorded with); explicit flags override
//! its fields.  `--shards N` boots N servers wired into a replicating
//! cluster and drives them through a [`ShardRouter`] per worker, reporting
//! per-shard completions.  `--mode closed` runs a closed-loop pass *after*
//! the open-loop one and prints the p99 delta — the size of the queueing
//! delay that closed-loop (coordinated-omission-prone) measurement hides.
//! `--chaos SEED` (requires `--shards` ≥ 2) enables liveness probing on the
//! shards, then kills the `SEED % shards`-th one ~40 % into the run, holds it
//! down for a beat, and restarts it at the same address with a cold cache
//! that is re-warmed from the surviving peers (`Digest`/`DigestReply`, zero
//! LP solves).  The run still fails on any hung request or hard error, and
//! the bench artifact gains `peers_down` / `rewarm_keys_pulled` fields.
//! The wire codec follows `CORGI_WIRE_CODEC` like every other client, and
//! the reactor backend follows `CORGI_REACTOR_BACKEND` like every server
//! (`--reactor-shards N` pins the per-server reactor thread count; 0 = one
//! per core).  Exits nonzero if any request failed with a non-shed error or
//! hung past its deadline.
//!
//! # Client-side connection cap
//!
//! Every `--connections` unit is a client-side OS thread holding one open
//! TCP connection, so the generator itself tops out around **~2000
//! connections** under default thread-stack and file-descriptor limits —
//! well before the server does.  That ceiling is a property of the *client*:
//! to push the server harder, raise `--reactor-shards` (server reactor
//! threads; 0 = one per core) and fan the offered load out over several
//! loadgen processes rather than one giant one.
//!
//! [`ShardRouter`]: corgi_framework::ShardRouter

use corgi_bench::loadgen::{run_load, LoadMode, LoadProfile};
use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi_framework::{
    CachingService, ClientConfig, ForestGenerator, HealthConfig, MatrixService, ReplicatingService,
    ReplicationConfig, Replicator, ServerConfig, TcpServer, TransportConfig, WarmRequest,
};
use corgi_hexgrid::{HexGrid, HexGridConfig};
use criterion::report_histogram;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    match flag_value(name) {
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("invalid value {raw:?} for {name}")),
        None => default,
    }
}

const USAGE: &str = "\
Open-loop load generator against a self-hosted loopback server.

Usage:
  loadgen [--rate HZ] [--duration-secs S] [--connections N] [--zipf S]
          [--levels L1,L2,..] [--max-delta D] [--churn N] [--seed N]
          [--timeout-secs S] [--label NAME] [--profile calibrated]
          [--shards N] [--mode open|closed] [--reactor-shards N]
          [--chaos SEED]

--chaos SEED (with --shards >= 2) turns the run into a resilience soak: the
SEED % shards-th server is killed ~40% into the schedule, held down briefly,
and restarted at the same address, re-warming its cold cache from the peers
over Digest frames with zero LP solves.  Probing is enabled on every shard so
the kill shows up in peers_down; the run still fails on any hung request or
hard error.

Each of the N --connections is a client-side OS thread holding one open TCP
connection, so the generator itself tops out around ~2000 connections under
default thread-stack and file-descriptor limits.  That cap is about the
client, not the server: to push the server harder, raise --reactor-shards
(server reactor threads; 0 = one per core) and spread the offered load over
several loadgen processes instead of one giant one.
";

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    // The calibrated profile is the heavy-lane CI shape: enough load to be a
    // meaningful p99 sample on a warm cache, short enough for CI.
    let calibrated = flag_value("--profile").as_deref() == Some("calibrated");
    let base = if calibrated {
        LoadProfile {
            connections: 8,
            rate_hz: 400.0,
            duration: Duration::from_secs(5),
            levels: vec![1],
            max_delta: 1,
            zipf_exponent: 1.0,
            churn_every: 200,
            seed: 42,
            request_timeout: Duration::from_secs(10),
        }
    } else {
        LoadProfile::default()
    };

    let levels: Vec<u8> = match flag_value("--levels") {
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("invalid privacy level {s:?}"))
            })
            .collect(),
        None => base.levels.clone(),
    };
    let profile = LoadProfile {
        connections: parse_flag("--connections", base.connections),
        rate_hz: parse_flag("--rate", base.rate_hz),
        duration: Duration::from_secs_f64(parse_flag(
            "--duration-secs",
            base.duration.as_secs_f64(),
        )),
        levels,
        max_delta: parse_flag("--max-delta", base.max_delta),
        zipf_exponent: parse_flag("--zipf", base.zipf_exponent),
        churn_every: parse_flag("--churn", base.churn_every),
        seed: parse_flag("--seed", base.seed),
        request_timeout: Duration::from_secs_f64(parse_flag(
            "--timeout-secs",
            base.request_timeout.as_secs_f64(),
        )),
    };
    let shards = parse_flag("--shards", 1usize).max(1);
    let reactor_shards = parse_flag("--reactor-shards", 0usize);
    let chaos: Option<u64> = flag_value("--chaos").map(|raw| {
        raw.parse()
            .unwrap_or_else(|_| panic!("invalid value {raw:?} for --chaos"))
    });
    if chaos.is_some() {
        assert!(
            shards >= 2,
            "--chaos needs --shards >= 2 (a peer must survive the kill)"
        );
    }
    // Aggressive probing so a mid-run kill is detected well inside the
    // schedule (threshold 2 at this cadence condemns a dead peer in ~400 ms).
    let chaos_health = HealthConfig {
        probe_interval: Duration::from_millis(200),
        failure_threshold: 2,
        ..HealthConfig::default()
    };
    let closed_pass = match flag_value("--mode").as_deref() {
        None | Some("open") => false,
        Some("closed") => true,
        Some(other) => panic!("invalid value {other:?} for --mode (open|closed)"),
    };
    let label = flag_value("--label").unwrap_or_else(|| {
        let base = if calibrated { "calibrated" } else { "smoke" };
        let mut label = if shards > 1 {
            format!("{base}-{shards}shard")
        } else {
            base.to_string()
        };
        if chaos.is_some() {
            label.push_str("-chaos");
        }
        label
    });

    // The serving stack of the loopback benches: SF grid, synthetic check-ins,
    // fast solver settings — the measured path is frames → reactor → dispatch
    // → cache, with every mix key warmed before load starts.  With --shards N
    // the same stack is booted N times and the shards are wired into a full
    // replication mesh, exactly like examples/cluster.rs.
    let grid = HexGrid::new(HexGridConfig::san_francisco()).expect("static grid config is valid");
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let server_config = ServerConfig::builder()
        .robust_iterations(1)
        .targets_per_subtree(3)
        .worker_threads(2)
        .build();
    let warm_plan = WarmRequest {
        privacy_levels: profile.levels.clone(),
        deltas: (0..=profile.max_delta).collect(),
    };

    let mut servers: Vec<Option<TcpServer>> = Vec::with_capacity(shards);
    let mut services: Vec<Arc<dyn MatrixService>> = Vec::with_capacity(shards);
    let mut replicators: Vec<Arc<Replicator>> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let generator = ForestGenerator::new(
            corgi_core::LocationTree::new(grid.clone()),
            prior.clone(),
            server_config,
        );
        let (service, transport_config): (Arc<dyn MatrixService>, TransportConfig) = if shards > 1 {
            let replicator = Replicator::new(ReplicationConfig {
                health: chaos.map(|_| chaos_health.clone()),
                ..ReplicationConfig::default()
            });
            replicators.push(Arc::clone(&replicator));
            (
                Arc::new(CachingService::with_defaults(ReplicatingService::new(
                    generator,
                    Arc::clone(&replicator),
                ))),
                TransportConfig {
                    replication: Some(replicator),
                    reactor_shards,
                    ..TransportConfig::default()
                },
            )
        } else {
            (
                Arc::new(CachingService::with_defaults(generator)),
                TransportConfig {
                    reactor_shards,
                    ..TransportConfig::default()
                },
            )
        };
        let server = TcpServer::bind("127.0.0.1:0", Arc::clone(&service), transport_config)
            .expect("binding a loopback load server");
        services.push(service);
        servers.push(Some(server));
    }
    let addrs: Vec<SocketAddr> = servers
        .iter()
        .map(|s| s.as_ref().expect("just booted").local_addr())
        .collect();
    // Full mesh: every shard pushes its cold-miss solves to every other.
    for (index, replicator) in replicators.iter().enumerate() {
        for (peer, addr) in addrs.iter().enumerate() {
            if peer != index {
                replicator.add_peer(addr.to_string());
            }
        }
    }
    // Warm in-process (not via warm_on_start) so load never races the warming.
    for service in &services {
        let report = corgi_framework::warm(service.as_ref(), &warm_plan);
        assert!(
            report.failures.is_empty(),
            "warming the request mix failed: {:?}",
            report.failures
        );
    }

    println!(
        "loadgen/{label}: {} conns, {:.0} req/s offered for {:?}, Zipf s={} over {} keys, churn every {}, {} shard(s), {} backend x{} reactor(s)",
        profile.connections,
        profile.rate_hz,
        profile.duration,
        profile.zipf_exponent,
        profile.levels.len() * (profile.max_delta + 1),
        if profile.churn_every == 0 {
            "∞".to_string()
        } else {
            profile.churn_every.to_string()
        },
        shards,
        servers[0].as_ref().expect("just booted").backend().label(),
        servers[0].as_ref().expect("just booted").shard_count(),
    );

    // The chaos thread kills one shard mid-schedule, holds it down long
    // enough for the survivors' probes to condemn it, then restarts it at the
    // same address with a cold cache and re-warms it from the peers — the
    // load keeps flowing through router failover the whole time.
    let chaos_handle = chaos.map(|seed| {
        let victim = (seed as usize) % shards;
        let victim_server = servers[victim].take().expect("victim booted");
        let victim_addr = addrs[victim];
        let peer_endpoints: Vec<String> = addrs
            .iter()
            .enumerate()
            .filter(|(index, _)| *index != victim)
            .map(|(_, addr)| addr.to_string())
            .collect();
        let grid = grid.clone();
        let prior = prior.clone();
        let health = chaos_health.clone();
        let kill_after = profile.duration.mul_f64(0.4);
        let hold_down = profile.duration.mul_f64(0.2).min(Duration::from_secs(1));
        let handle = std::thread::spawn(move || {
            std::thread::sleep(kill_after);
            victim_server.shutdown();
            std::thread::sleep(hold_down);
            let replicator = Replicator::new(ReplicationConfig {
                health: Some(health),
                ..ReplicationConfig::default()
            });
            for endpoint in &peer_endpoints {
                replicator.add_peer(endpoint.clone());
            }
            let service: Arc<dyn MatrixService> =
                Arc::new(CachingService::with_defaults(ReplicatingService::new(
                    ForestGenerator::new(corgi_core::LocationTree::new(grid), prior, server_config),
                    Arc::clone(&replicator),
                )));
            // The old listener's port lingers briefly after shutdown; retry
            // the same-address rebind until it sticks.
            let deadline = Instant::now() + Duration::from_secs(10);
            let server = loop {
                match TcpServer::bind(
                    victim_addr,
                    Arc::clone(&service),
                    TransportConfig {
                        replication: Some(Arc::clone(&replicator)),
                        reactor_shards,
                        ..TransportConfig::default()
                    },
                ) {
                    Ok(server) => break server,
                    Err(error) => {
                        assert!(
                            Instant::now() < deadline,
                            "rebinding the killed shard at {victim_addr}: {error}"
                        );
                        std::thread::sleep(Duration::from_millis(25));
                    }
                }
            };
            let rewarm = server.rewarm_from_peers(&peer_endpoints, ClientConfig::default());
            (server, rewarm)
        });
        (victim, handle)
    });

    let report = run_load(&addrs, LoadMode::Open, &profile);
    println!(
        "loadgen/{label}: offered {}, ok {}, shed {}, errors {}, reconnects {}, goodput {:.1} req/s",
        report.offered,
        report.ok,
        report.shed,
        report.errors,
        report.reconnects,
        report.goodput_rps(),
    );

    // Join the chaos thread (it finished its re-warm well inside the
    // schedule) and put the revived shard back so the summary below covers it.
    let chaos_rewarm = chaos_handle.map(|(victim, handle)| {
        let (server, rewarm) = handle.join().expect("chaos thread panicked");
        println!(
            "loadgen/{label}: chaos killed shard {} mid-run; re-warm pulled {} key(s) from {} peer(s) in {} ms, complete: {}",
            addrs[victim],
            rewarm.pulled,
            rewarm.peers_reached,
            rewarm.elapsed_ms,
            rewarm.is_complete(),
        );
        assert!(
            rewarm.is_complete(),
            "the revived shard must re-warm fully from its peers: {rewarm:?}"
        );
        servers[victim] = Some(server);
        rewarm
    });
    let peers_down: u64 = servers
        .iter()
        .flatten()
        .map(|server| server.cluster_stats().peers_down)
        .sum();
    if chaos.is_some() {
        assert!(
            peers_down >= 1,
            "the survivors' probes must have condemned the killed shard"
        );
    }

    for server in servers.iter().flatten() {
        let stats = server.stats();
        println!(
            "loadgen/{label}: server {} admitted {}, shed {}, read-buffer high water {} B",
            server.local_addr(),
            stats.requests_admitted,
            stats.requests_shed,
            stats.read_buffer_high_water,
        );
    }
    if shards > 1 {
        for (endpoint, completed) in &report.per_shard {
            println!("loadgen/{label}: shard {endpoint} completed {completed}");
        }
        println!("loadgen/{label}: router failovers {}", report.failovers);
    }
    let mut extras = vec![
        ("goodput_rps", report.goodput_rps()),
        ("offered_rps", report.offered_rps()),
        ("shed", report.shed as f64),
        ("errors", report.errors as f64),
    ];
    if let Some(rewarm) = &chaos_rewarm {
        extras.push(("peers_down", peers_down as f64));
        extras.push(("rewarm_keys_pulled", rewarm.pulled as f64));
    }
    report_histogram(
        &format!("loadgen/{label}"),
        &report.histogram,
        &extras,
        Some("p99_ns"),
    );

    // The closed-loop pass reuses the warmed cluster: each worker fires its
    // next request the moment the previous answer lands, so its histogram is
    // pure service time.  The delta against the open-loop p99 is exactly the
    // queueing delay a closed-loop harness would have silently omitted.
    let mut closed_errors = 0usize;
    if closed_pass {
        let closed = run_load(&addrs, LoadMode::Closed, &profile);
        closed_errors = closed.errors;
        let open_p99 = report.histogram.percentile(99.0);
        let closed_p99 = closed.histogram.percentile(99.0);
        println!(
            "loadgen/{label}: closed-loop ok {}, shed {}, errors {}, goodput {:.1} req/s",
            closed.ok,
            closed.shed,
            closed.errors,
            closed.goodput_rps(),
        );
        println!(
            "loadgen/{label}: p99 open {:.3} ms vs closed {:.3} ms — open-loop queueing delay {:+.3} ms",
            open_p99 as f64 / 1e6,
            closed_p99 as f64 / 1e6,
            (open_p99 as f64 - closed_p99 as f64) / 1e6,
        );
        report_histogram(
            &format!("loadgen/{label}-closed"),
            &closed.histogram,
            &[
                ("goodput_rps", closed.goodput_rps()),
                ("open_p99_ns", open_p99 as f64),
            ],
            None,
        );
    }
    for server in servers.into_iter().flatten() {
        server.shutdown();
    }

    if report.errors > 0 || report.completed != report.offered || closed_errors > 0 {
        eprintln!(
            "loadgen/{label}: FAILED — {} open-loop errors, {} closed-loop errors, {}/{} completed",
            report.errors, closed_errors, report.completed, report.offered
        );
        std::process::exit(1);
    }
}
