//! Open-loop load generator against a self-hosted loopback server.
//!
//! Boots the full serving stack (caching service → forest generator → LP
//! solver pool behind a `TcpServer`), warms the request mix, replays an
//! open-loop Poisson arrival schedule against it, and reports the latency
//! histogram — on stdout and, when `CORGI_BENCH_JSON` names a file, as a
//! JSONL record gated by `perf_gate` on `p99_ns`.
//!
//! ```text
//! loadgen [--rate HZ] [--duration-secs S] [--connections N] [--zipf S]
//!         [--levels L1,L2,..] [--max-delta D] [--churn N] [--seed N]
//!         [--timeout-secs S] [--label NAME] [--profile calibrated]
//! ```
//!
//! `--profile calibrated` selects the fixed heavy-lane shape (the one the
//! `BENCH_baseline.json` entry was recorded with); explicit flags override
//! its fields.  The wire codec follows `CORGI_WIRE_CODEC` like every other
//! client.  Exits nonzero if any request failed with a non-shed error or
//! hung past its deadline.

use corgi_bench::loadgen::{run, LoadProfile};
use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
use corgi_framework::{
    CachingService, ForestGenerator, MatrixService, ServerConfig, TcpServer, TransportConfig,
    WarmRequest,
};
use corgi_hexgrid::{HexGrid, HexGridConfig};
use criterion::report_histogram;
use std::sync::Arc;
use std::time::Duration;

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(name: &str, default: T) -> T {
    match flag_value(name) {
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| panic!("invalid value {raw:?} for {name}")),
        None => default,
    }
}

fn main() {
    // The calibrated profile is the heavy-lane CI shape: enough load to be a
    // meaningful p99 sample on a warm cache, short enough for CI.
    let calibrated = flag_value("--profile").as_deref() == Some("calibrated");
    let base = if calibrated {
        LoadProfile {
            connections: 8,
            rate_hz: 400.0,
            duration: Duration::from_secs(5),
            levels: vec![1],
            max_delta: 1,
            zipf_exponent: 1.0,
            churn_every: 200,
            seed: 42,
            request_timeout: Duration::from_secs(10),
        }
    } else {
        LoadProfile::default()
    };

    let levels: Vec<u8> = match flag_value("--levels") {
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("invalid privacy level {s:?}"))
            })
            .collect(),
        None => base.levels.clone(),
    };
    let profile = LoadProfile {
        connections: parse_flag("--connections", base.connections),
        rate_hz: parse_flag("--rate", base.rate_hz),
        duration: Duration::from_secs_f64(parse_flag(
            "--duration-secs",
            base.duration.as_secs_f64(),
        )),
        levels,
        max_delta: parse_flag("--max-delta", base.max_delta),
        zipf_exponent: parse_flag("--zipf", base.zipf_exponent),
        churn_every: parse_flag("--churn", base.churn_every),
        seed: parse_flag("--seed", base.seed),
        request_timeout: Duration::from_secs_f64(parse_flag(
            "--timeout-secs",
            base.request_timeout.as_secs_f64(),
        )),
    };
    let label = flag_value("--label")
        .unwrap_or_else(|| if calibrated { "calibrated" } else { "smoke" }.to_string());

    // The serving stack of the loopback benches: SF grid, synthetic check-ins,
    // fast solver settings — the measured path is frames → reactor → dispatch
    // → cache, with every mix key warmed before load starts.
    let grid = HexGrid::new(HexGridConfig::san_francisco()).expect("static grid config is valid");
    let (dataset, _) = GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
    let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
    let service = Arc::new(CachingService::with_defaults(ForestGenerator::new(
        corgi_core::LocationTree::new(grid),
        prior,
        ServerConfig::builder()
            .robust_iterations(1)
            .targets_per_subtree(3)
            .worker_threads(2)
            .build(),
    )));
    let warm_plan = WarmRequest {
        privacy_levels: profile.levels.clone(),
        deltas: (0..=profile.max_delta).collect(),
    };
    let server = TcpServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn MatrixService>,
        TransportConfig::default(),
    )
    .expect("binding the loopback load server");
    // Warm in-process (not via warm_on_start) so load never races the warming.
    let report = corgi_framework::warm(service.as_ref(), &warm_plan);
    assert!(
        report.failures.is_empty(),
        "warming the request mix failed: {:?}",
        report.failures
    );

    println!(
        "loadgen/{label}: {} conns, {:.0} req/s offered for {:?}, Zipf s={} over {} keys, churn every {}",
        profile.connections,
        profile.rate_hz,
        profile.duration,
        profile.zipf_exponent,
        profile.levels.len() * (profile.max_delta + 1),
        if profile.churn_every == 0 {
            "∞".to_string()
        } else {
            profile.churn_every.to_string()
        },
    );
    let report = run(server.local_addr(), &profile);
    let stats = server.stats();
    println!(
        "loadgen/{label}: offered {}, ok {}, shed {}, errors {}, reconnects {}, goodput {:.1} req/s",
        report.offered,
        report.ok,
        report.shed,
        report.errors,
        report.reconnects,
        report.goodput_rps(),
    );
    println!(
        "loadgen/{label}: server admitted {}, shed {}, read-buffer high water {} B",
        stats.requests_admitted, stats.requests_shed, stats.read_buffer_high_water,
    );
    report_histogram(
        &format!("loadgen/{label}"),
        &report.histogram,
        &[
            ("goodput_rps", report.goodput_rps()),
            ("offered_rps", report.offered_rps()),
            ("shed", report.shed as f64),
            ("errors", report.errors as f64),
        ],
        Some("p99_ns"),
    );
    server.shutdown();

    if report.errors > 0 || report.completed != report.offered {
        eprintln!(
            "loadgen/{label}: FAILED — {} errors, {}/{} completed",
            report.errors, report.completed, report.offered
        );
        std::process::exit(1);
    }
}
