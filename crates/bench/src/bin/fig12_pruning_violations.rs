//! Figure 12 + the paper's headline numbers: percentage of violated Geo-Ind
//! constraints after pruning 1..10 random locations, for CORGI (δ-prunable) and
//! the non-robust baseline.
//!
//! * (a) δ = 3 over 49 locations;
//! * (b) δ = 5 over 70 locations (run with `--full`; the default uses 49
//!   locations for (b) as well to keep the quick run short).
//!
//! Headline (abstract): pruning 7 of 49 locations (14.28 %) causes ~3 % Geo-Ind
//! violations for CORGI vs ~18 % for the non-robust matrix.

use corgi_bench::{print_table, write_json, ExperimentContext, DEFAULT_EPSILON};
use corgi_core::{
    generate_nonrobust_matrix, generate_robust_matrix, geoind, prune_matrix, ObfuscationMatrix,
    ObfuscationProblem, RobustConfig, SolverKind,
};
use rand::prelude::*;

fn violation_percentage(
    problem: &ObfuscationProblem,
    matrix: &ObfuscationMatrix,
    prune_count: usize,
    trials: usize,
    rng: &mut StdRng,
) -> f64 {
    let mut total_pct = 0.0;
    let mut counted = 0usize;
    for _ in 0..trials {
        let mut cells = problem.cells().to_vec();
        cells.shuffle(rng);
        let prune: Vec<_> = cells[..prune_count].to_vec();
        let Ok(pruned) = prune_matrix(matrix, &prune) else {
            continue; // over-pruned a row; skip this draw as the paper's users would
        };
        let survivors: Vec<usize> = problem
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| !prune.contains(c))
            .map(|(i, _)| i)
            .collect();
        let distances: Vec<Vec<f64>> = survivors
            .iter()
            .map(|&i| {
                survivors
                    .iter()
                    .map(|&j| problem.distances()[i][j])
                    .collect()
            })
            .collect();
        let report = geoind::check_all_pairs(&pruned, &distances, problem.epsilon(), 1e-7);
        total_pct += report.violation_percentage();
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total_pct / counted as f64
    }
}

fn run_panel(
    ctx: &ExperimentContext,
    name: &str,
    locations: usize,
    delta: usize,
    iterations: usize,
    trials: usize,
    json: &mut Vec<serde_json::Value>,
) {
    let problem = ctx.problem_for_n_locations(locations, DEFAULT_EPSILON, true);
    let nonrobust = generate_nonrobust_matrix(&problem, SolverKind::Auto).expect("baseline");
    let robust = generate_robust_matrix(
        &problem,
        &RobustConfig {
            delta,
            iterations,
            solver: SolverKind::Auto,
        },
    )
    .expect("robust generation")
    .matrix;

    let mut rng = StdRng::seed_from_u64(42);
    let mut rows = Vec::new();
    for pruned in 1..=10usize {
        let pct_nonrobust = violation_percentage(&problem, &nonrobust, pruned, trials, &mut rng);
        let pct_robust = violation_percentage(&problem, &robust, pruned, trials, &mut rng);
        json.push(serde_json::json!({
            "panel": name, "locations": locations, "delta": delta, "pruned": pruned,
            "non_robust_pct": pct_nonrobust, "corgi_pct": pct_robust,
        }));
        rows.push(vec![
            format!("{pruned}"),
            format!("{pct_nonrobust:.2}"),
            format!("{pct_robust:.2}"),
        ]);
    }
    print_table(
        &format!("Fig. 12{name} — % violated Geo-Ind constraints ({locations} locations, delta = {delta}, {trials} trials/point)"),
        &["pruned", "non-robust (%)", "CORGI (%)"],
        &rows,
    );

    // Headline: prune 14.28% of the locations (7 of 49).
    if locations == 49 {
        let headline_prune = 7;
        let pct_nonrobust =
            violation_percentage(&problem, &nonrobust, headline_prune, trials, &mut rng);
        let pct_robust = violation_percentage(&problem, &robust, headline_prune, trials, &mut rng);
        println!(
            "\nHeadline: pruning {headline_prune}/49 locations (14.28%) -> CORGI {pct_robust:.2}% vs non-robust {pct_nonrobust:.2}% violated Geo-Ind constraints (paper: 3.07% vs 18.58%)."
        );
        json.push(serde_json::json!({
            "panel": "headline", "pruned": headline_prune,
            "non_robust_pct": pct_nonrobust, "corgi_pct": pct_robust,
        }));
    }
}

fn main() {
    let ctx = ExperimentContext::standard();
    let full = corgi_bench::full_scale_requested();
    let trials = if full { 500 } else { 60 };
    let iterations = if full { 10 } else { 4 };
    let mut json = Vec::new();

    run_panel(&ctx, "(a)", 49, 3, iterations, trials, &mut json);
    let panel_b_locations = if full { 70 } else { 49 };
    run_panel(
        &ctx,
        "(b)",
        panel_b_locations,
        5,
        iterations,
        trials,
        &mut json,
    );

    write_json("fig12_pruning_violations", &serde_json::json!(json));
    println!("\nExpected shape (paper Fig. 12): CORGI's violation percentage stays near zero up to delta pruned locations and far below the non-robust baseline throughout; a larger delta gives more robustness.");
}
