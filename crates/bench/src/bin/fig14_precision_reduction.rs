//! Figure 14: running time of matrix precision reduction vs recalculating the
//! matrix at the coarser level, as a function of the number of locations (a)
//! and of δ (b).

use corgi_bench::{print_table, write_json, ExperimentContext, DEFAULT_EPSILON};
use corgi_core::{generate_robust_matrix, precision_reduction, RobustConfig, SolverKind};
use std::time::Instant;

fn main() {
    let ctx = ExperimentContext::standard();
    let full = corgi_bench::full_scale_requested();
    let iterations = if full { 10 } else { 3 };

    // ---- (a) vs number of locations (delta = 1) ----
    let sizes: Vec<usize> = if full {
        vec![28, 35, 42, 49, 56, 63, 70]
    } else {
        vec![28, 42, 49, 70]
    };
    let mut rows_a = Vec::new();
    let mut json_a = Vec::new();
    for &n in &sizes {
        let (recalc, reduce) = measure(&ctx, n, 1, iterations);
        json_a.push(
            serde_json::json!({ "locations": n, "recalculation_s": recalc, "reduction_s": reduce }),
        );
        rows_a.push(vec![
            format!("{n}"),
            format!("{recalc:.3}"),
            format!("{:.6}", reduce),
            format!("{:.0}x", recalc / reduce.max(1e-9)),
        ]);
    }
    print_table(
        "Fig. 14(a) — matrix recalculation vs precision reduction (s), by locations",
        &[
            "locations",
            "recalculation",
            "precision reduction",
            "speed-up",
        ],
        &rows_a,
    );

    // ---- (b) vs delta (49 locations) ----
    let deltas: Vec<usize> = if full {
        (1..=7).collect()
    } else {
        vec![1, 3, 5, 7]
    };
    let mut rows_b = Vec::new();
    let mut json_b = Vec::new();
    for &delta in &deltas {
        let (recalc, reduce) = measure(&ctx, 49, delta, iterations);
        json_b.push(
            serde_json::json!({ "delta": delta, "recalculation_s": recalc, "reduction_s": reduce }),
        );
        rows_b.push(vec![
            format!("{delta}"),
            format!("{recalc:.3}"),
            format!("{:.6}", reduce),
            format!("{:.0}x", recalc / reduce.max(1e-9)),
        ]);
    }
    print_table(
        "Fig. 14(b) — matrix recalculation vs precision reduction (s), by delta",
        &["delta", "recalculation", "precision reduction", "speed-up"],
        &rows_b,
    );

    write_json(
        "fig14_precision_reduction",
        &serde_json::json!({ "by_locations": json_a, "by_delta": json_b }),
    );
    println!("\nExpected shape (paper Fig. 14): precision reduction is orders of magnitude faster than recalculating the matrix, at every size and every delta.");
}

/// Returns (recalculation seconds, precision-reduction seconds) for a robust
/// matrix over the `n` closest leaves with the given δ.
fn measure(ctx: &ExperimentContext, n: usize, delta: usize, iterations: usize) -> (f64, f64) {
    // The leaf-level matrix the user received.
    let problem = ctx.problem_for_n_locations(n, DEFAULT_EPSILON, true);
    let leaf_matrix = generate_robust_matrix(
        &problem,
        &RobustConfig {
            delta,
            iterations,
            solver: SolverKind::Auto,
        },
    )
    .expect("robust generation")
    .matrix;

    // Recalculation: generate a fresh robust matrix (what the server would have
    // to do if the user changed the precision level and no reduction existed).
    let start = Instant::now();
    let _ = generate_robust_matrix(
        &problem,
        &RobustConfig {
            delta,
            iterations,
            solver: SolverKind::Auto,
        },
    )
    .expect("recalculation");
    let recalc = start.elapsed().as_secs_f64();

    // Precision reduction of the already-delivered leaf matrix to level 1.
    let priors: Vec<f64> = leaf_matrix
        .cells()
        .iter()
        .map(|c| ctx.prior.prob_of_cell(ctx.grid(), c).max(1e-12))
        .collect();
    let start = Instant::now();
    let reduced =
        precision_reduction(&leaf_matrix, &ctx.tree, 1, &priors).expect("precision reduction");
    let reduce = start.elapsed().as_secs_f64();
    assert!(reduced.size() <= leaf_matrix.size());
    (recalc, reduce)
}
