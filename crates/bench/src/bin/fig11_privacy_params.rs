//! Figure 11: impact of the privacy parameter ε and the customization parameter
//! δ on quality loss, CORGI vs the non-robust baseline.

use corgi_bench::{print_table, write_json, ExperimentContext, PAPER_EPSILONS};
use corgi_core::{generate_nonrobust_matrix, generate_robust_matrix, RobustConfig, SolverKind};

fn main() {
    let ctx = ExperimentContext::standard();
    let full = corgi_bench::full_scale_requested();
    let iterations = if full { 10 } else { 4 };
    let deltas = [1usize, 2, 3];
    let subtree = ctx.level2_subtree();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &eps in &PAPER_EPSILONS {
        let problem = ctx.problem_for_subtree(&subtree, eps, true);
        let nonrobust = generate_nonrobust_matrix(&problem, SolverKind::Auto).expect("baseline");
        let q_nonrobust = problem.quality_loss(&nonrobust);
        let mut row = vec![format!("{eps}"), format!("{q_nonrobust:.4}")];
        let mut entry = serde_json::json!({ "epsilon": eps, "non_robust": q_nonrobust });
        for &delta in &deltas {
            let run = generate_robust_matrix(
                &problem,
                &RobustConfig {
                    delta,
                    iterations,
                    solver: SolverKind::Auto,
                },
            )
            .expect("robust generation");
            let q = problem.quality_loss(&run.matrix);
            row.push(format!("{q:.4}"));
            entry[format!("corgi_delta_{delta}")] = serde_json::json!(q);
        }
        rows.push(row);
        json.push(entry);
    }
    print_table(
        "Fig. 11 — quality loss (km) vs epsilon (1/km), 49 locations",
        &[
            "epsilon",
            "non-robust",
            "CORGI d=1",
            "CORGI d=2",
            "CORGI d=3",
        ],
        &rows,
    );
    write_json("fig11_privacy_params", &serde_json::json!(json));
    println!("\nExpected shape (paper Fig. 11): quality loss decreases as epsilon grows, increases with delta, and the non-robust baseline always has the lowest loss (it reserves no budget).");
}
