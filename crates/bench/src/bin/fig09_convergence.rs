//! Figure 9: convergence of the quality loss (estimation error of travelling
//! cost) over the iterations of Algorithm 1, for δ = 2 and δ = 4.
//!
//! Prints, per δ, the objective value after every iteration and the difference
//! between consecutive iterations, averaged over several repetitions with
//! different target draws (the paper runs 10 repetitions; the default here is 3,
//! `--full` uses 10).

use corgi_bench::{print_table, spread_targets, write_json, ExperimentContext, DEFAULT_EPSILON};
use corgi_core::{generate_robust_matrix, ObfuscationProblem, RobustConfig, SolverKind};

fn main() {
    let ctx = ExperimentContext::standard();
    let repetitions = if corgi_bench::full_scale_requested() {
        10
    } else {
        3
    };
    let iterations = 10usize;
    let subtree = ctx.level2_subtree();
    let mut json = serde_json::Map::new();

    for &delta in &[2usize, 4] {
        let mut sums = vec![0.0f64; iterations + 1];
        for rep in 0..repetitions {
            // Vary the target set across repetitions (the paper randomly samples
            // NR_TARGET leaf nodes per run).
            let prior = ctx
                .prior
                .restricted_to(ctx.grid(), subtree.leaves())
                .expect("subtree prior");
            let mut targets = spread_targets(subtree.leaf_count(), corgi_bench::NR_TARGET);
            let shift = rep % targets.len().max(1);
            targets.rotate_left(shift);
            let problem = ObfuscationProblem::new(
                &ctx.tree,
                &subtree,
                &prior,
                &targets,
                DEFAULT_EPSILON,
                true,
            )
            .expect("problem");
            let run = generate_robust_matrix(
                &problem,
                &RobustConfig {
                    delta,
                    iterations,
                    solver: SolverKind::Auto,
                },
            )
            .expect("robust generation");
            for (i, v) in run.objective_per_iteration.iter().enumerate() {
                sums[i] += v;
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / repetitions as f64).collect();
        let rows: Vec<Vec<String>> = means
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let diff = if i == 0 { 0.0 } else { v - means[i - 1] };
                vec![format!("{i}"), format!("{v:.4}"), format!("{diff:+.4}")]
            })
            .collect();
        print_table(
            &format!("Fig. 9 — convergence of quality loss (delta = {delta}, eps = {DEFAULT_EPSILON}/km, {repetitions} repetitions)"),
            &["iteration", "est. error (km)", "difference (km)"],
            &rows,
        );
        json.insert(
            format!("delta_{delta}"),
            serde_json::json!({ "objective_per_iteration": means }),
        );
    }
    write_json("fig09_convergence", &serde_json::Value::Object(json));
    println!("\nExpected shape (paper Fig. 9): the difference between consecutive iterations shrinks sharply after ~4 iterations for both delta values.");
}
