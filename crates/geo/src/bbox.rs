//! Axis-aligned latitude/longitude bounding boxes.

use crate::{GeoError, LatLng};
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box in geographic coordinates.
///
/// Used to select an "area of interest" (paper Fig. 1 step 1) such as the San
/// Francisco sample region of the Gowalla dataset. Boxes never cross the
/// antimeridian; the regions used by CORGI are city-scale so this is not a
/// practical restriction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min_lat: f64,
    max_lat: f64,
    min_lng: f64,
    max_lng: f64,
}

impl BoundingBox {
    /// Create a bounding box from its southwest and northeast corners.
    pub fn new(southwest: LatLng, northeast: LatLng) -> Result<Self, GeoError> {
        if southwest.lat() > northeast.lat() || southwest.lng() > northeast.lng() {
            return Err(GeoError::InvertedBounds);
        }
        Ok(Self {
            min_lat: southwest.lat(),
            max_lat: northeast.lat(),
            min_lng: southwest.lng(),
            max_lng: northeast.lng(),
        })
    }

    /// Build the bounding box of a non-empty set of points.
    ///
    /// Returns `None` for an empty iterator.
    pub fn of_points<'a, I: IntoIterator<Item = &'a LatLng>>(points: I) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut bbox = Self {
            min_lat: first.lat(),
            max_lat: first.lat(),
            min_lng: first.lng(),
            max_lng: first.lng(),
        };
        for p in iter {
            bbox.min_lat = bbox.min_lat.min(p.lat());
            bbox.max_lat = bbox.max_lat.max(p.lat());
            bbox.min_lng = bbox.min_lng.min(p.lng());
            bbox.max_lng = bbox.max_lng.max(p.lng());
        }
        Some(bbox)
    }

    /// Southwest corner.
    pub fn southwest(&self) -> LatLng {
        LatLng::new(self.min_lat, self.min_lng).expect("corners are validated on construction")
    }

    /// Northeast corner.
    pub fn northeast(&self) -> LatLng {
        LatLng::new(self.max_lat, self.max_lng).expect("corners are validated on construction")
    }

    /// Geometric center of the box.
    pub fn center(&self) -> LatLng {
        LatLng::new(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lng + self.max_lng) / 2.0,
        )
        .expect("center of a valid box is valid")
    }

    /// Whether the point lies inside the box (inclusive of the boundary).
    pub fn contains(&self, p: &LatLng) -> bool {
        p.lat() >= self.min_lat
            && p.lat() <= self.max_lat
            && p.lng() >= self.min_lng
            && p.lng() <= self.max_lng
    }

    /// North-south extent of the box in kilometres (measured through the center).
    pub fn height_km(&self) -> f64 {
        let w = LatLng::new(self.min_lat, (self.min_lng + self.max_lng) / 2.0).unwrap();
        let e = LatLng::new(self.max_lat, (self.min_lng + self.max_lng) / 2.0).unwrap();
        crate::haversine_km(&w, &e)
    }

    /// East-west extent of the box in kilometres (measured through the center).
    pub fn width_km(&self) -> f64 {
        let s = LatLng::new((self.min_lat + self.max_lat) / 2.0, self.min_lng).unwrap();
        let n = LatLng::new((self.min_lat + self.max_lat) / 2.0, self.max_lng).unwrap();
        crate::haversine_km(&s, &n)
    }

    /// Grow the box by `margin_deg` degrees in every direction, clamping to valid ranges.
    pub fn expanded(&self, margin_deg: f64) -> Self {
        Self {
            min_lat: (self.min_lat - margin_deg).max(-90.0),
            max_lat: (self.max_lat + margin_deg).min(90.0),
            min_lng: (self.min_lng - margin_deg).max(-180.0),
            max_lng: (self.max_lng + margin_deg).min(180.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf_box() -> BoundingBox {
        BoundingBox::new(
            LatLng::new(37.70, -122.52).unwrap(),
            LatLng::new(37.83, -122.35).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn inverted_bounds_rejected() {
        let sw = LatLng::new(38.0, -122.0).unwrap();
        let ne = LatLng::new(37.0, -121.0).unwrap();
        assert_eq!(BoundingBox::new(sw, ne), Err(GeoError::InvertedBounds));
    }

    #[test]
    fn contains_center_and_corners() {
        let b = sf_box();
        assert!(b.contains(&b.center()));
        assert!(b.contains(&b.southwest()));
        assert!(b.contains(&b.northeast()));
    }

    #[test]
    fn excludes_outside_points() {
        let b = sf_box();
        assert!(!b.contains(&LatLng::new(40.0, -122.4).unwrap()));
        assert!(!b.contains(&LatLng::new(37.75, -120.0).unwrap()));
    }

    #[test]
    fn of_points_builds_tight_box() {
        let pts = vec![
            LatLng::new(1.0, 2.0).unwrap(),
            LatLng::new(-1.0, 5.0).unwrap(),
            LatLng::new(0.5, 3.0).unwrap(),
        ];
        let b = BoundingBox::of_points(&pts).unwrap();
        assert_eq!(b.southwest(), LatLng::new(-1.0, 2.0).unwrap());
        assert_eq!(b.northeast(), LatLng::new(1.0, 5.0).unwrap());
    }

    #[test]
    fn of_points_empty_is_none() {
        assert!(BoundingBox::of_points(&[]).is_none());
    }

    #[test]
    fn sf_box_dimensions_are_city_scale() {
        let b = sf_box();
        assert!(b.height_km() > 10.0 && b.height_km() < 20.0);
        assert!(b.width_km() > 10.0 && b.width_km() < 20.0);
    }

    #[test]
    fn expansion_grows_and_clamps() {
        let b = sf_box().expanded(0.1);
        assert!(b.contains(&LatLng::new(37.65, -122.45).unwrap()));
        let near_pole = BoundingBox::new(
            LatLng::new(89.5, 0.0).unwrap(),
            LatLng::new(89.9, 1.0).unwrap(),
        )
        .unwrap()
        .expanded(1.0);
        assert!(near_pole.northeast().lat() <= 90.0);
    }
}
