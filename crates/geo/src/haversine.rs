//! Great-circle geometry on the mean Earth sphere.
//!
//! The paper's utility metric (Eq. 3) is the absolute difference between haversine
//! distances to a target location, so an accurate and cheap haversine implementation
//! is the workhorse of every experiment.

use crate::LatLng;

/// Mean Earth radius in kilometres (IUGG mean radius R1).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Haversine (great-circle) distance between two points, in kilometres.
///
/// Numerically stable for both antipodal and very close points: the implementation
/// clamps the haversine argument into `[0, 1]` before taking the arcsine.
pub fn haversine_km(a: &LatLng, b: &LatLng) -> f64 {
    let (lat1, lng1) = (a.lat_rad(), a.lng_rad());
    let (lat2, lng2) = (b.lat_rad(), b.lng_rad());
    let dlat = lat2 - lat1;
    let dlng = lng2 - lng1;
    let sin_dlat = (dlat / 2.0).sin();
    let sin_dlng = (dlng / 2.0).sin();
    let h = sin_dlat * sin_dlat + lat1.cos() * lat2.cos() * sin_dlng * sin_dlng;
    let h = h.clamp(0.0, 1.0);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// Initial bearing (forward azimuth) from `a` to `b`, in degrees in `[0, 360)`.
pub fn initial_bearing_deg(a: &LatLng, b: &LatLng) -> f64 {
    let (lat1, lng1) = (a.lat_rad(), a.lng_rad());
    let (lat2, lng2) = (b.lat_rad(), b.lng_rad());
    let dlng = lng2 - lng1;
    let y = dlng.sin() * lat2.cos();
    let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlng.cos();
    let deg = y.atan2(x).to_degrees();
    (deg + 360.0) % 360.0
}

/// Destination point reached by travelling `distance_km` from `start` along the
/// great circle with the given initial `bearing_deg`.
pub fn destination_point(start: &LatLng, bearing_deg: f64, distance_km: f64) -> LatLng {
    let angular = distance_km / EARTH_RADIUS_KM;
    let bearing = bearing_deg.to_radians();
    let lat1 = start.lat_rad();
    let lng1 = start.lng_rad();

    let lat2 = (lat1.sin() * angular.cos() + lat1.cos() * angular.sin() * bearing.cos()).asin();
    let lng2 = lng1
        + (bearing.sin() * angular.sin() * lat1.cos())
            .atan2(angular.cos() - lat1.sin() * lat2.sin());

    // Normalize longitude to [-180, 180].
    let mut lng_deg = lng2.to_degrees();
    while lng_deg > 180.0 {
        lng_deg -= 360.0;
    }
    while lng_deg < -180.0 {
        lng_deg += 360.0;
    }
    let lat_deg = lat2.to_degrees().clamp(-90.0, 90.0);
    LatLng::new(lat_deg, lng_deg).expect("destination point is always within valid ranges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sf() -> LatLng {
        LatLng::new(37.7749, -122.4194).unwrap()
    }

    fn la() -> LatLng {
        LatLng::new(34.0522, -118.2437).unwrap()
    }

    #[test]
    fn distance_to_self_is_zero() {
        assert!(haversine_km(&sf(), &sf()) < 1e-9);
    }

    #[test]
    fn sf_to_la_roughly_559_km() {
        let d = haversine_km(&sf(), &la());
        assert!((d - 559.0).abs() < 5.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let d1 = haversine_km(&sf(), &la());
        let d2 = haversine_km(&la(), &sf());
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = LatLng::new(0.0, 0.0).unwrap();
        let b = LatLng::new(0.0, 180.0).unwrap();
        let d = haversine_km(&a, &b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "got {d}, expected {half}");
    }

    #[test]
    fn one_degree_longitude_at_equator_is_about_111_km() {
        let a = LatLng::new(0.0, 0.0).unwrap();
        let b = LatLng::new(0.0, 1.0).unwrap();
        let d = haversine_km(&a, &b);
        assert!((d - 111.195).abs() < 0.1, "got {d}");
    }

    #[test]
    fn bearing_due_east_at_equator() {
        let a = LatLng::new(0.0, 0.0).unwrap();
        let b = LatLng::new(0.0, 1.0).unwrap();
        let brg = initial_bearing_deg(&a, &b);
        assert!((brg - 90.0).abs() < 1e-6, "got {brg}");
    }

    #[test]
    fn bearing_due_north() {
        let a = LatLng::new(0.0, 10.0).unwrap();
        let b = LatLng::new(1.0, 10.0).unwrap();
        let brg = initial_bearing_deg(&a, &b);
        assert!(brg < 1e-6 || (brg - 360.0).abs() < 1e-6, "got {brg}");
    }

    #[test]
    fn destination_roundtrip_distance() {
        let start = sf();
        let dest = destination_point(&start, 45.0, 10.0);
        let d = haversine_km(&start, &dest);
        assert!((d - 10.0).abs() < 1e-3, "got {d}");
    }

    #[test]
    fn destination_zero_distance_is_start() {
        let start = sf();
        let dest = destination_point(&start, 123.0, 0.0);
        assert!(haversine_km(&start, &dest) < 1e-9);
    }

    proptest! {
        /// Distance is non-negative and symmetric for arbitrary valid coordinates.
        #[test]
        fn prop_symmetry_and_nonnegativity(
            lat1 in -89.0f64..89.0, lng1 in -179.0f64..179.0,
            lat2 in -89.0f64..89.0, lng2 in -179.0f64..179.0,
        ) {
            let a = LatLng::new(lat1, lng1).unwrap();
            let b = LatLng::new(lat2, lng2).unwrap();
            let d_ab = haversine_km(&a, &b);
            let d_ba = haversine_km(&b, &a);
            prop_assert!(d_ab >= 0.0);
            prop_assert!((d_ab - d_ba).abs() < 1e-9);
        }

        /// Triangle inequality holds (within floating-point slack).
        #[test]
        fn prop_triangle_inequality(
            lat1 in -80.0f64..80.0, lng1 in -170.0f64..170.0,
            lat2 in -80.0f64..80.0, lng2 in -170.0f64..170.0,
            lat3 in -80.0f64..80.0, lng3 in -170.0f64..170.0,
        ) {
            let a = LatLng::new(lat1, lng1).unwrap();
            let b = LatLng::new(lat2, lng2).unwrap();
            let c = LatLng::new(lat3, lng3).unwrap();
            let ab = haversine_km(&a, &b);
            let bc = haversine_km(&b, &c);
            let ac = haversine_km(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-6);
        }

        /// Travelling d km and measuring the distance back gives d.
        #[test]
        fn prop_destination_distance_consistency(
            lat in -60.0f64..60.0, lng in -170.0f64..170.0,
            bearing in 0.0f64..360.0, dist in 0.0f64..100.0,
        ) {
            let start = LatLng::new(lat, lng).unwrap();
            let dest = destination_point(&start, bearing, dist);
            let measured = haversine_km(&start, &dest);
            prop_assert!((measured - dist).abs() < 1e-2);
        }
    }
}
