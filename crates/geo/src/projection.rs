//! Local equirectangular projection.
//!
//! The hexagonal index lays a planar hex lattice over a city-scale area of
//! interest.  For regions up to a few tens of kilometres the equirectangular
//! projection around a reference point introduces sub-metre distortion, far
//! below the hex cell sizes used by the paper (hundreds of metres to
//! kilometres), so planar Euclidean distances between projected points agree
//! with haversine distances to within a fraction of a percent.

use crate::{haversine::EARTH_RADIUS_KM, LatLng, Vec2};
use serde::{Deserialize, Serialize};

/// A local equirectangular (plate carrée) projection centred at `origin`.
///
/// `project` maps geographic coordinates to kilometres east/north of the
/// origin; `unproject` is its inverse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: LatLng,
    cos_lat0: f64,
}

impl LocalProjection {
    /// Create a projection centred at `origin`.
    pub fn new(origin: LatLng) -> Self {
        Self {
            origin,
            cos_lat0: origin.lat_rad().cos(),
        }
    }

    /// The projection origin (maps to `(0, 0)`).
    pub fn origin(&self) -> LatLng {
        self.origin
    }

    /// Project a geographic point to planar kilometres relative to the origin.
    pub fn project(&self, p: &LatLng) -> Vec2 {
        let dlat = p.lat_rad() - self.origin.lat_rad();
        let dlng = p.lng_rad() - self.origin.lng_rad();
        Vec2::new(
            EARTH_RADIUS_KM * dlng * self.cos_lat0,
            EARTH_RADIUS_KM * dlat,
        )
    }

    /// Inverse projection from planar kilometres back to geographic coordinates.
    pub fn unproject(&self, v: &Vec2) -> LatLng {
        let lat = self.origin.lat_rad() + v.y / EARTH_RADIUS_KM;
        let lng = self.origin.lng_rad() + v.x / (EARTH_RADIUS_KM * self.cos_lat0);
        LatLng::new(
            lat.to_degrees().clamp(-90.0, 90.0),
            normalize_lng(lng.to_degrees()),
        )
        .expect("unprojected point is clamped into valid ranges")
    }

    /// Planar Euclidean distance between two geographic points under this projection (km).
    pub fn planar_distance_km(&self, a: &LatLng, b: &LatLng) -> f64 {
        self.project(a).distance(&self.project(b))
    }
}

fn normalize_lng(mut lng: f64) -> f64 {
    while lng > 180.0 {
        lng -= 360.0;
    }
    while lng < -180.0 {
        lng += 360.0;
    }
    lng
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::haversine_km;
    use proptest::prelude::*;

    fn sf_origin() -> LatLng {
        LatLng::new(37.7749, -122.4194).unwrap()
    }

    #[test]
    fn origin_projects_to_zero() {
        let proj = LocalProjection::new(sf_origin());
        let v = proj.project(&sf_origin());
        assert!(v.norm() < 1e-12);
    }

    #[test]
    fn roundtrip_near_origin() {
        let proj = LocalProjection::new(sf_origin());
        let p = LatLng::new(37.80, -122.40).unwrap();
        let back = proj.unproject(&proj.project(&p));
        assert!(haversine_km(&p, &back) < 1e-6);
    }

    #[test]
    fn planar_distance_matches_haversine_at_city_scale() {
        let proj = LocalProjection::new(sf_origin());
        let a = LatLng::new(37.76, -122.45).unwrap();
        let b = LatLng::new(37.80, -122.39).unwrap();
        let planar = proj.planar_distance_km(&a, &b);
        let sphere = haversine_km(&a, &b);
        let rel_err = (planar - sphere).abs() / sphere;
        assert!(rel_err < 1e-3, "relative error {rel_err}");
    }

    #[test]
    fn east_displacement_maps_to_positive_x() {
        let proj = LocalProjection::new(sf_origin());
        let east = LatLng::new(37.7749, -122.40).unwrap();
        let v = proj.project(&east);
        assert!(v.x > 0.0);
        assert!(v.y.abs() < 1e-9);
    }

    #[test]
    fn north_displacement_maps_to_positive_y() {
        let proj = LocalProjection::new(sf_origin());
        let north = LatLng::new(37.80, -122.4194).unwrap();
        let v = proj.project(&north);
        assert!(v.y > 0.0);
        assert!(v.x.abs() < 1e-9);
    }

    proptest! {
        /// Projection/unprojection round-trips within the city-scale box.
        #[test]
        fn prop_roundtrip_city_scale(dlat in -0.2f64..0.2, dlng in -0.2f64..0.2) {
            let origin = sf_origin();
            let proj = LocalProjection::new(origin);
            let p = LatLng::new(origin.lat() + dlat, origin.lng() + dlng).unwrap();
            let back = proj.unproject(&proj.project(&p));
            prop_assert!(haversine_km(&p, &back) < 1e-6);
        }

        /// Planar distances track haversine distances within 0.5% at city scale.
        #[test]
        fn prop_planar_vs_haversine(
            dlat1 in -0.15f64..0.15, dlng1 in -0.15f64..0.15,
            dlat2 in -0.15f64..0.15, dlng2 in -0.15f64..0.15,
        ) {
            let origin = sf_origin();
            let proj = LocalProjection::new(origin);
            let a = LatLng::new(origin.lat() + dlat1, origin.lng() + dlng1).unwrap();
            let b = LatLng::new(origin.lat() + dlat2, origin.lng() + dlng2).unwrap();
            let sphere = haversine_km(&a, &b);
            if sphere > 0.5 {
                let planar = proj.planar_distance_km(&a, &b);
                prop_assert!(((planar - sphere).abs() / sphere) < 5e-3);
            }
        }
    }
}
