//! Validated latitude/longitude pairs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by geographic primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// Latitude outside `[-90, 90]` degrees.
    InvalidLatitude(f64),
    /// Longitude outside `[-180, 180]` degrees.
    InvalidLongitude(f64),
    /// A coordinate was NaN or infinite.
    NotFinite,
    /// A bounding box was constructed with min > max.
    InvertedBounds,
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidLatitude(v) => write!(f, "latitude {v} out of range [-90, 90]"),
            GeoError::InvalidLongitude(v) => write!(f, "longitude {v} out of range [-180, 180]"),
            GeoError::NotFinite => write!(f, "coordinate is NaN or infinite"),
            GeoError::InvertedBounds => write!(f, "bounding box has min > max"),
        }
    }
}

impl std::error::Error for GeoError {}

/// A point on the Earth's surface, in degrees.
///
/// Construction through [`LatLng::new`] validates ranges; the `Deserialize`
/// implementation goes through the same validation so untrusted input (e.g. a
/// check-in file) cannot produce out-of-range coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatLng {
    lat: f64,
    lng: f64,
}

impl LatLng {
    /// Create a new coordinate, validating ranges.
    pub fn new(lat: f64, lng: f64) -> Result<Self, GeoError> {
        if !lat.is_finite() || !lng.is_finite() {
            return Err(GeoError::NotFinite);
        }
        if !(-90.0..=90.0).contains(&lat) {
            return Err(GeoError::InvalidLatitude(lat));
        }
        if !(-180.0..=180.0).contains(&lng) {
            return Err(GeoError::InvalidLongitude(lng));
        }
        Ok(Self { lat, lng })
    }

    /// Latitude in degrees.
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in degrees.
    pub fn lng(&self) -> f64 {
        self.lng
    }

    /// Latitude in radians.
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    pub fn lng_rad(&self) -> f64 {
        self.lng.to_radians()
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: &LatLng) -> f64 {
        crate::haversine_km(self, other)
    }
}

impl<'de> Deserialize<'de> for LatLng {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: serde::Deserializer<'de>,
    {
        #[derive(Deserialize)]
        struct Raw {
            lat: f64,
            lng: f64,
        }
        let raw = Raw::deserialize(deserializer)?;
        LatLng::new(raw.lat, raw.lng).map_err(serde::de::Error::custom)
    }
}

impl fmt::Display for LatLng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat, self.lng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_coordinates_accepted() {
        let p = LatLng::new(37.7749, -122.4194).unwrap();
        assert!((p.lat() - 37.7749).abs() < 1e-12);
        assert!((p.lng() + 122.4194).abs() < 1e-12);
    }

    #[test]
    fn poles_and_antimeridian_are_valid() {
        assert!(LatLng::new(90.0, 180.0).is_ok());
        assert!(LatLng::new(-90.0, -180.0).is_ok());
        assert!(LatLng::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn out_of_range_latitude_rejected() {
        assert_eq!(LatLng::new(91.0, 0.0), Err(GeoError::InvalidLatitude(91.0)));
        assert_eq!(
            LatLng::new(-90.5, 0.0),
            Err(GeoError::InvalidLatitude(-90.5))
        );
    }

    #[test]
    fn out_of_range_longitude_rejected() {
        assert_eq!(
            LatLng::new(0.0, 180.5),
            Err(GeoError::InvalidLongitude(180.5))
        );
        assert_eq!(
            LatLng::new(0.0, -181.0),
            Err(GeoError::InvalidLongitude(-181.0))
        );
    }

    #[test]
    fn non_finite_rejected() {
        assert_eq!(LatLng::new(f64::NAN, 0.0), Err(GeoError::NotFinite));
        assert_eq!(LatLng::new(0.0, f64::INFINITY), Err(GeoError::NotFinite));
    }

    #[test]
    fn radian_conversion() {
        let p = LatLng::new(45.0, 90.0).unwrap();
        assert!((p.lng_rad() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((p.lat_rad() - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn deserialization_validates() {
        let ok: Result<LatLng, _> = serde_json::from_str(r#"{"lat": 10.0, "lng": 20.0}"#);
        assert!(ok.is_ok());
        let bad: Result<LatLng, _> = serde_json::from_str(r#"{"lat": 100.0, "lng": 20.0}"#);
        assert!(bad.is_err());
    }

    #[test]
    fn display_formats_six_decimals() {
        let p = LatLng::new(1.5, -2.25).unwrap();
        assert_eq!(format!("{p}"), "(1.500000, -2.250000)");
    }
}
