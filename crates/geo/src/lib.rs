//! Geographic primitives used throughout the CORGI location-privacy framework.
//!
//! The paper measures every distance (Geo-Ind constraints, Eq. 2/4, and the utility
//! metric, Eq. 3) with the haversine formula between cell centers.  This crate provides:
//!
//! * [`LatLng`] — a validated latitude/longitude pair in degrees,
//! * [`haversine_km`] and friends — great-circle distance, initial bearing and
//!   destination-point computation on the WGS-84 mean sphere,
//! * [`BoundingBox`] — axis-aligned lat/lng boxes for region selection,
//! * [`LocalProjection`] — a local equirectangular projection used by the hexagonal
//!   index to lay a planar hex lattice over a city-scale area of interest,
//! * [`Vec2`] — small planar vector helper used by the hex layout math.
//!
//! All distances are expressed in kilometres unless stated otherwise, matching the
//! paper's use of ε in units of 1/km.

#![warn(missing_docs)]

mod bbox;
mod haversine;
mod latlng;
mod projection;
mod vec2;

pub use bbox::BoundingBox;
pub use haversine::{destination_point, haversine_km, initial_bearing_deg, EARTH_RADIUS_KM};
pub use latlng::{GeoError, LatLng};
pub use projection::LocalProjection;
pub use vec2::Vec2;

/// Convenience result alias for fallible geographic operations.
pub type Result<T> = std::result::Result<T, GeoError>;
