//! Small planar vector type used by the hexagonal layout math.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Neg, Sub};

/// A 2-D vector / point in the locally projected plane (kilometres).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East-west component (km, positive east).
    pub x: f64,
    /// North-south component (km, positive north).
    pub y: f64,
}

impl Vec2 {
    /// Create a vector from components.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Vec2) -> f64 {
        (*self - *other).norm()
    }

    /// Dot product.
    pub fn dot(&self, other: &Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Rotate counter-clockwise by `angle_rad` radians.
    pub fn rotate(&self, angle_rad: f64) -> Vec2 {
        let (s, c) = angle_rad.sin_cos();
        Vec2 {
            x: c * self.x - s * self.y,
            y: s * self.x + c * self.y,
        }
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn norm_and_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.distance(&Vec2::zero()) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dot_product() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, 4.0);
        assert!((a.dot(&b) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_quarter_turn() {
        let a = Vec2::new(1.0, 0.0);
        let r = a.rotate(FRAC_PI_2);
        assert!((r.x - 0.0).abs() < 1e-12);
        assert!((r.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm() {
        let a = Vec2::new(2.5, -1.25);
        let r = a.rotate(0.7123);
        assert!((a.norm() - r.norm()).abs() < 1e-12);
    }
}
