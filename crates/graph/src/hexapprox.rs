//! The paper's 12-neighbor hexagonal mobility graph (Section 4.2, Fig. 4).

use crate::WeightedGraph;
use corgi_hexgrid::{CellId, HexGrid};
use std::collections::HashMap;

/// The graph approximation of users' mobility over a set of leaf cells.
///
/// Nodes are the given leaf cells (indexed in the order supplied); every cell is
/// connected to its 6 immediate and 6 diagonal neighbors *that are also in the
/// set*, with edge weight `a` — the spacing between immediate neighbors — exactly
/// as in Fig. 4 of the paper.  Enforcing ε-Geo-Ind on the edges of this graph is
/// sufficient for all pairs (Theorem 4.1) because the shortest-path distance never
/// exceeds the Euclidean distance (Lemma 4.1).
#[derive(Debug, Clone)]
pub struct HexMobilityGraph {
    cells: Vec<CellId>,
    index: HashMap<CellId, usize>,
    graph: WeightedGraph,
    spacing_km: f64,
}

impl HexMobilityGraph {
    /// Build the mobility graph for the given leaf cells of a grid.
    ///
    /// # Panics
    /// Panics if any cell is not a leaf cell.
    pub fn new(grid: &HexGrid, cells: &[CellId]) -> Self {
        assert!(
            cells.iter().all(|c| c.is_leaf()),
            "the mobility graph is defined over leaf cells"
        );
        let index: HashMap<CellId, usize> =
            cells.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        let spacing = grid.leaf_spacing_km();
        let mut graph = WeightedGraph::new(cells.len());
        for (i, cell) in cells.iter().enumerate() {
            let immediate = cell.center().neighbors();
            let diagonal = cell.center().diagonal_neighbors();
            for n in immediate.iter().chain(diagonal.iter()) {
                let neighbor = CellId::new(0, *n);
                if let Some(&j) = index.get(&neighbor) {
                    if i < j {
                        // The paper assigns weight `a` to every edge, including the
                        // diagonal ones (Fig. 4), which is what makes the graph
                        // distance a lower bound of the Euclidean distance.
                        graph.add_edge(i, j, spacing);
                    }
                }
            }
        }
        Self {
            cells: cells.to_vec(),
            index,
            graph,
            spacing_km: spacing,
        }
    }

    /// The cells in node order.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.cells.len()
    }

    /// Number of undirected edges (neighboring peers).
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Node index of a cell, if present.
    pub fn node_of(&self, cell: &CellId) -> Option<usize> {
        self.index.get(cell).copied()
    }

    /// The underlying weighted graph.
    pub fn graph(&self) -> &WeightedGraph {
        &self.graph
    }

    /// Edge weight of the graph (the paper's `a`), km.
    pub fn spacing_km(&self) -> f64 {
        self.spacing_km
    }

    /// All neighboring peers as `(i, j)` node pairs with `i < j`.
    ///
    /// These are exactly the pairs for which Geo-Ind constraints are generated when
    /// the graph approximation is enabled.
    pub fn neighbor_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs = Vec::with_capacity(self.num_edges());
        for i in 0..self.num_nodes() {
            for &(j, _) in self.graph.neighbors(i) {
                if i < j {
                    pairs.push((i, j));
                }
            }
        }
        pairs
    }

    /// Shortest-path distance matrix `d_G` (km) between all node pairs.
    pub fn shortest_path_matrix(&self) -> Vec<Vec<f64>> {
        self.graph.all_pairs_shortest_paths()
    }

    /// Whether the graph is connected.
    pub fn is_connected(&self) -> bool {
        self.graph.is_connected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_hexgrid::HexGridConfig;

    fn grid() -> HexGrid {
        HexGrid::new(HexGridConfig::san_francisco()).unwrap()
    }

    /// Leaf cells of one privacy-level-2 subtree (49 cells), as used throughout
    /// the paper's experiments.
    fn subtree_cells(grid: &HexGrid) -> Vec<CellId> {
        grid.cells_at_level(2)[0].descendant_leaves()
    }

    #[test]
    fn graph_is_connected_and_has_12ish_degree() {
        let grid = grid();
        let cells = subtree_cells(&grid);
        let g = HexMobilityGraph::new(&grid, &cells);
        assert_eq!(g.num_nodes(), 49);
        assert!(g.is_connected());
        // Interior nodes have 12 neighbors; boundary nodes fewer. Average degree
        // should be well above 6 and at most 12.
        let avg_degree = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            avg_degree > 6.0 && avg_degree <= 12.0,
            "avg degree {avg_degree}"
        );
    }

    #[test]
    fn edge_count_is_far_below_all_pairs() {
        let grid = grid();
        let cells = subtree_cells(&grid);
        let g = HexMobilityGraph::new(&grid, &cells);
        let all_pairs = g.num_nodes() * (g.num_nodes() - 1) / 2;
        assert!(
            g.num_edges() * 3 < all_pairs,
            "{} vs {}",
            g.num_edges(),
            all_pairs
        );
    }

    #[test]
    fn lemma_4_1_graph_distance_bounded_by_euclidean() {
        // d_G(v_j, v_k) ≤ d_{j,k} for every pair (Lemma 4.1).
        let grid = grid();
        let cells = subtree_cells(&grid);
        let g = HexMobilityGraph::new(&grid, &cells);
        let dg = g.shortest_path_matrix();
        for (i, a) in cells.iter().enumerate() {
            for (j, b) in cells.iter().enumerate() {
                if i == j {
                    continue;
                }
                let euclid = grid.cell_planar_distance_km(a, b);
                assert!(
                    dg[i][j] <= euclid + 1e-9,
                    "graph distance {} exceeds Euclidean {} for pair ({i},{j})",
                    dg[i][j],
                    euclid
                );
            }
        }
    }

    #[test]
    fn neighbor_pairs_have_weight_a() {
        let grid = grid();
        let cells = subtree_cells(&grid);
        let g = HexMobilityGraph::new(&grid, &cells);
        for (i, j) in g.neighbor_pairs() {
            let w = g
                .graph()
                .neighbors(i)
                .iter()
                .find(|&&(n, _)| n == j)
                .map(|&(_, w)| w)
                .unwrap();
            assert!((w - g.spacing_km()).abs() < 1e-12);
        }
    }

    #[test]
    fn node_lookup_roundtrip() {
        let grid = grid();
        let cells = subtree_cells(&grid);
        let g = HexMobilityGraph::new(&grid, &cells);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(g.node_of(c), Some(i));
        }
        assert_eq!(g.node_of(&grid.leaves()[342]), None);
    }

    #[test]
    fn whole_grid_graph_scales() {
        let grid = grid();
        let g = HexMobilityGraph::new(&grid, grid.leaves());
        assert_eq!(g.num_nodes(), 343);
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "leaf cells")]
    fn non_leaf_cells_rejected() {
        let grid = grid();
        let cells = grid.cells_at_level(1);
        let _ = HexMobilityGraph::new(&grid, &cells);
    }
}
