//! Generic undirected weighted graph with shortest-path queries.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An undirected weighted graph over nodes `0..n`.
#[derive(Debug, Clone, Default)]
pub struct WeightedGraph {
    adjacency: Vec<Vec<(usize, f64)>>,
}

impl WeightedGraph {
    /// Create a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Add an undirected edge with the given non-negative weight.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range, the weight is negative or
    /// non-finite, or the edge is a self-loop.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert!(
            u < self.num_nodes() && v < self.num_nodes(),
            "node out of range"
        );
        assert!(u != v, "self-loops are not allowed");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "invalid edge weight {weight}"
        );
        self.adjacency[u].push((v, weight));
        self.adjacency[v].push((u, weight));
    }

    /// Neighbors of a node with edge weights.
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adjacency[u]
    }

    /// Whether an edge `u–v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency[u].iter().any(|&(w, _)| w == v)
    }

    /// Single-source shortest-path distances (Dijkstra).  Unreachable nodes get
    /// `f64::INFINITY`.
    pub fn dijkstra(&self, source: usize) -> Vec<f64> {
        #[derive(PartialEq)]
        struct Entry {
            dist: f64,
            node: usize,
        }
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse ordering: the binary heap is a max-heap.
                other
                    .dist
                    .partial_cmp(&self.dist)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| other.node.cmp(&self.node))
            }
        }

        let n = self.num_nodes();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0.0;
        heap.push(Entry {
            dist: 0.0,
            node: source,
        });
        while let Some(Entry { dist: d, node: u }) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, w) in &self.adjacency[u] {
                let candidate = d + w;
                if candidate < dist[v] {
                    dist[v] = candidate;
                    heap.push(Entry {
                        dist: candidate,
                        node: v,
                    });
                }
            }
        }
        dist
    }

    /// All-pairs shortest-path distances (repeated Dijkstra).
    pub fn all_pairs_shortest_paths(&self) -> Vec<Vec<f64>> {
        (0..self.num_nodes()).map(|s| self.dijkstra(s)).collect()
    }

    /// Whether the graph is connected (empty graphs count as connected).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        let dist = self.dijkstra(0);
        dist.iter().all(|d| d.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path_graph(n: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1, 1.0);
        }
        g
    }

    #[test]
    fn path_graph_distances() {
        let g = path_graph(5);
        let d = g.dijkstra(0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(g.num_edges(), 4);
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_nodes_are_infinite() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 2.0);
        let d = g.dijkstra(0);
        assert_eq!(d[1], 2.0);
        assert!(d[2].is_infinite());
        assert!(!g.is_connected());
    }

    #[test]
    fn shortest_path_prefers_cheaper_route() {
        // 0 -1- 1 -1- 2, plus a direct expensive edge 0-2.
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(0, 2, 5.0);
        let d = g.dijkstra(0);
        assert_eq!(d[2], 2.0);
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 0.5);
        g.add_edge(0, 3, 4.0);
        let d = g.all_pairs_shortest_paths();
        for i in 0..4 {
            for j in 0..4 {
                assert!((d[i][j] - d[j][i]).abs() < 1e-12);
            }
            assert_eq!(d[i][i], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid edge weight")]
    fn negative_weight_rejected() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, -1.0);
    }

    proptest! {
        /// Dijkstra distances satisfy the triangle inequality on random connected graphs.
        #[test]
        fn prop_triangle_inequality(
            weights in proptest::collection::vec(0.1f64..10.0, 12),
            extra_edges in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..10.0), 0..6),
        ) {
            // A ring of 8 nodes guarantees connectivity, plus random chords.
            let n = 8;
            let mut g = WeightedGraph::new(n);
            for i in 0..n {
                g.add_edge(i, (i + 1) % n, weights[i]);
            }
            for (u, v, w) in extra_edges {
                if u != v && !g.has_edge(u, v) {
                    g.add_edge(u, v, w);
                }
            }
            let d = g.all_pairs_shortest_paths();
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        prop_assert!(d[i][j] <= d[i][k] + d[k][j] + 1e-9);
                    }
                }
            }
        }
    }
}
