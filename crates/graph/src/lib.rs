//! Mobility-graph approximation for Geo-Ind constraint reduction.
//!
//! Section 4.2 of the CORGI paper replaces the `O(K³)` pairwise ε-Geo-Ind
//! constraints by constraints on *neighboring peers* of a graph `G` built over the
//! hexagonal grid: every cell is connected to its 6 immediate neighbors and its 6
//! diagonal neighbors, all with edge weight `a` (the spacing between immediate
//! neighbors).  Lemma 4.1 shows the shortest-path distance on `G` never exceeds
//! the Euclidean distance, and Theorem 4.1 shows that enforcing Geo-Ind on graph
//! neighbors is then sufficient for all pairs.
//!
//! This crate provides:
//!
//! * [`WeightedGraph`] — an undirected weighted graph with Dijkstra shortest
//!   paths and all-pairs distances,
//! * [`HexMobilityGraph`] — the paper's 12-neighbor graph over a set of leaf
//!   cells, exposing both the neighbor-pair list (the reduced constraint set) and
//!   the shortest-path distance matrix used in the transitivity proof.

#![warn(missing_docs)]

mod hexapprox;
mod weighted;

pub use hexapprox::HexMobilityGraph;
pub use weighted::WeightedGraph;
