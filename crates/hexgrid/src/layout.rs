//! Axial ↔ planar conversion and hexagon boundaries.

use crate::Axial;
use corgi_geo::Vec2;
use serde::{Deserialize, Serialize};

/// A pointy-top hexagonal layout with a given center-to-center spacing.
///
/// The paper denotes the distance between the centers of two immediate neighbors
/// by `a` (Section 4.2); [`Layout::spacing_km`] is exactly that quantity.  Diagonal
/// neighbors are at distance `√3·a`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    spacing_km: f64,
}

impl Layout {
    /// Create a layout with the given center spacing in kilometres.
    ///
    /// # Panics
    /// Panics if the spacing is not strictly positive and finite.
    pub fn new(spacing_km: f64) -> Self {
        assert!(
            spacing_km.is_finite() && spacing_km > 0.0,
            "hex spacing must be positive and finite, got {spacing_km}"
        );
        Self { spacing_km }
    }

    /// Center-to-center spacing between immediate neighbors (the paper's `a`), km.
    pub fn spacing_km(&self) -> f64 {
        self.spacing_km
    }

    /// Circumradius of a single hexagon (center to corner), km.
    pub fn circumradius_km(&self) -> f64 {
        self.spacing_km / 3f64.sqrt()
    }

    /// Area of a single hexagon, km².
    pub fn cell_area_km2(&self) -> f64 {
        // A regular hexagon with circumradius R has area (3√3/2)·R²; with
        // R = a/√3 this is (√3/2)·a².
        (3f64.sqrt() / 2.0) * self.spacing_km * self.spacing_km
    }

    /// Planar position (km) of a cell center.
    pub fn to_planar(&self, cell: Axial) -> Vec2 {
        let q = cell.q as f64;
        let r = cell.r as f64;
        Vec2::new(
            self.spacing_km * (q + r / 2.0),
            self.spacing_km * (3f64.sqrt() / 2.0) * r,
        )
    }

    /// The cell containing a planar point (km).
    pub fn from_planar(&self, p: Vec2) -> Axial {
        let rf = p.y / (self.spacing_km * 3f64.sqrt() / 2.0);
        let qf = p.x / self.spacing_km - rf / 2.0;
        Axial::round(qf, rf)
    }

    /// Euclidean distance between two cell centers, km.
    pub fn center_distance_km(&self, a: Axial, b: Axial) -> f64 {
        self.to_planar(a).distance(&self.to_planar(b))
    }

    /// The six corners of the hexagon of a cell, counter-clockwise starting from
    /// the corner at angle 30°.
    pub fn cell_corners(&self, cell: Axial) -> [Vec2; 6] {
        let center = self.to_planar(cell);
        let radius = self.circumradius_km();
        let mut corners = [Vec2::zero(); 6];
        for (i, corner) in corners.iter_mut().enumerate() {
            let angle = std::f64::consts::PI / 6.0 + std::f64::consts::FRAC_PI_3 * i as f64;
            *corner = center + Vec2::new(radius * angle.cos(), radius * angle.sin());
        }
        corners
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn immediate_neighbor_centers_at_spacing() {
        let layout = Layout::new(0.5);
        for n in Axial::origin().neighbors() {
            let d = layout.center_distance_km(Axial::origin(), n);
            assert!((d - 0.5).abs() < 1e-12, "got {d}");
        }
    }

    #[test]
    fn diagonal_neighbor_centers_at_sqrt3_spacing() {
        let layout = Layout::new(0.5);
        let expected = 0.5 * 3f64.sqrt();
        for n in Axial::origin().diagonal_neighbors() {
            let d = layout.center_distance_km(Axial::origin(), n);
            assert!((d - expected).abs() < 1e-12, "got {d}");
        }
    }

    #[test]
    fn planar_roundtrip() {
        let layout = Layout::new(1.25);
        for q in -5..5 {
            for r in -5..5 {
                let cell = Axial::new(q, r);
                assert_eq!(layout.from_planar(layout.to_planar(cell)), cell);
            }
        }
    }

    #[test]
    fn corners_at_circumradius_from_center() {
        let layout = Layout::new(2.0);
        let cell = Axial::new(1, -2);
        let center = layout.to_planar(cell);
        for corner in layout.cell_corners(cell) {
            let d = corner.distance(&center);
            assert!((d - layout.circumradius_km()).abs() < 1e-12);
        }
    }

    #[test]
    fn cell_area_matches_hexagon_formula() {
        let layout = Layout::new(1.0);
        assert!((layout.cell_area_km2() - 0.866_025_403_784).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_spacing_rejected() {
        let _ = Layout::new(0.0);
    }

    proptest! {
        /// from_planar inverts to_planar even for perturbed points well inside a cell.
        #[test]
        fn prop_point_in_cell_maps_back(
            q in -30i64..30, r in -30i64..30,
            dx in -0.3f64..0.3, dy in -0.3f64..0.3,
        ) {
            let layout = Layout::new(1.0);
            let cell = Axial::new(q, r);
            // Perturbations below the inradius (a/2 = 0.5) stay inside the hexagon;
            // we use 0.3·a to stay clear of the boundary and rounding ties.
            let p = layout.to_planar(cell) + corgi_geo::Vec2::new(dx, dy);
            prop_assert_eq!(layout.from_planar(p), cell);
        }

        /// Euclidean center distance is bounded by spacing × hex distance
        /// (each hop moves the center by exactly one spacing).
        #[test]
        fn prop_euclidean_at_most_hops_times_spacing(
            q1 in -20i64..20, r1 in -20i64..20,
            q2 in -20i64..20, r2 in -20i64..20,
        ) {
            let layout = Layout::new(0.75);
            let a = Axial::new(q1, r1);
            let b = Axial::new(q2, r2);
            let euclid = layout.center_distance_km(a, b);
            let hops = a.hex_distance(&b) as f64;
            prop_assert!(euclid <= hops * 0.75 + 1e-9);
        }
    }
}
