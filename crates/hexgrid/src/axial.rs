//! Axial (cube) coordinates on the hexagonal lattice.
//!
//! We use the standard axial coordinate system for pointy-top hexagons: a cell is
//! addressed by `(q, r)` and the implicit third cube coordinate is `s = -q - r`.
//! Immediate neighbors are at hex distance 1 (Euclidean distance `a`, the lattice
//! spacing); the six *diagonal* neighbors used by the paper's graph approximation
//! (Fig. 4) are at hex distance 2 (Euclidean distance `√3·a`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// The six immediate neighbor directions in axial coordinates.
pub const DIRECTIONS: [Axial; 6] = [
    Axial { q: 1, r: 0 },
    Axial { q: 0, r: 1 },
    Axial { q: -1, r: 1 },
    Axial { q: -1, r: 0 },
    Axial { q: 0, r: -1 },
    Axial { q: 1, r: -1 },
];

/// The six diagonal neighbor directions (centers at Euclidean distance `√3·a`).
pub const DIAGONAL_DIRECTIONS: [Axial; 6] = [
    Axial { q: 2, r: -1 },
    Axial { q: 1, r: 1 },
    Axial { q: -1, r: 2 },
    Axial { q: -2, r: 1 },
    Axial { q: -1, r: -1 },
    Axial { q: 1, r: -2 },
];

/// Axial coordinates of a hexagonal cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Axial {
    /// Column coordinate.
    pub q: i64,
    /// Row coordinate.
    pub r: i64,
}

impl Axial {
    /// Create an axial coordinate.
    pub const fn new(q: i64, r: i64) -> Self {
        Self { q, r }
    }

    /// The origin cell `(0, 0)`.
    pub const fn origin() -> Self {
        Self { q: 0, r: 0 }
    }

    /// The implicit third cube coordinate `s = -q - r`.
    pub fn s(&self) -> i64 {
        -self.q - self.r
    }

    /// Hexagonal (grid) distance to another cell: the minimum number of
    /// immediate-neighbor steps between them.
    pub fn hex_distance(&self, other: &Axial) -> i64 {
        let dq = self.q - other.q;
        let dr = self.r - other.r;
        let ds = self.s() - other.s();
        (dq.abs() + dr.abs() + ds.abs()) / 2
    }

    /// The six immediate neighbors.
    pub fn neighbors(&self) -> [Axial; 6] {
        let mut out = [*self; 6];
        for (slot, dir) in out.iter_mut().zip(DIRECTIONS.iter()) {
            *slot = *slot + *dir;
        }
        out
    }

    /// The six diagonal neighbors (Euclidean distance `√3·a`).
    pub fn diagonal_neighbors(&self) -> [Axial; 6] {
        let mut out = [*self; 6];
        for (slot, dir) in out.iter_mut().zip(DIAGONAL_DIRECTIONS.iter()) {
            *slot = *slot + *dir;
        }
        out
    }

    /// All twelve cells used as graph-approximation peers in the paper's Fig. 4:
    /// the 6 immediate plus the 6 diagonal neighbors.
    pub fn graph_peers(&self) -> Vec<Axial> {
        let mut v = Vec::with_capacity(12);
        v.extend_from_slice(&self.neighbors());
        v.extend_from_slice(&self.diagonal_neighbors());
        v
    }

    /// Whether `other` is an immediate neighbor.
    pub fn is_neighbor(&self, other: &Axial) -> bool {
        self.hex_distance(other) == 1
    }

    /// The ring of cells at exactly `radius` hex-distance from `self`.
    ///
    /// `radius == 0` returns just `self`.
    pub fn ring(&self, radius: u32) -> Vec<Axial> {
        if radius == 0 {
            return vec![*self];
        }
        let radius = i64::from(radius);
        let mut results = Vec::with_capacity((6 * radius) as usize);
        // Start at the cell `radius` steps in direction 4 (the canonical ring walk).
        let mut cur = *self + DIRECTIONS[4] * radius;
        for dir in DIRECTIONS.iter() {
            for _ in 0..radius {
                results.push(cur);
                cur = cur + *dir;
            }
        }
        results
    }

    /// All cells within `radius` hex-distance of `self` (a filled disk),
    /// including `self`.
    pub fn disk(&self, radius: u32) -> Vec<Axial> {
        let r = i64::from(radius);
        let mut out = Vec::with_capacity((3 * r * (r + 1) + 1) as usize);
        for dq in -r..=r {
            let lo = (-r).max(-dq - r);
            let hi = r.min(-dq + r);
            for dr in lo..=hi {
                out.push(Axial::new(self.q + dq, self.r + dr));
            }
        }
        out
    }

    /// Round fractional axial coordinates to the containing cell (cube rounding).
    pub fn round(qf: f64, rf: f64) -> Axial {
        let sf = -qf - rf;
        let mut q = qf.round();
        let mut r = rf.round();
        let s = sf.round();
        let dq = (q - qf).abs();
        let dr = (r - rf).abs();
        let ds = (s - sf).abs();
        if dq > dr && dq > ds {
            q = -r - s;
        } else if dr > ds {
            r = -q - s;
        }
        Axial::new(q as i64, r as i64)
    }
}

impl Add for Axial {
    type Output = Axial;
    fn add(self, rhs: Axial) -> Axial {
        Axial::new(self.q + rhs.q, self.r + rhs.r)
    }
}

impl Sub for Axial {
    type Output = Axial;
    fn sub(self, rhs: Axial) -> Axial {
        Axial::new(self.q - rhs.q, self.r - rhs.r)
    }
}

impl Mul<i64> for Axial {
    type Output = Axial;
    fn mul(self, rhs: i64) -> Axial {
        Axial::new(self.q * rhs, self.r * rhs)
    }
}

impl Neg for Axial {
    type Output = Axial;
    fn neg(self) -> Axial {
        Axial::new(-self.q, -self.r)
    }
}

impl fmt::Display for Axial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.q, self.r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn cube_coordinates_sum_to_zero() {
        let c = Axial::new(3, -5);
        assert_eq!(c.q + c.r + c.s(), 0);
    }

    #[test]
    fn immediate_neighbors_at_distance_one() {
        let c = Axial::new(2, -1);
        for n in c.neighbors() {
            assert_eq!(c.hex_distance(&n), 1);
            assert!(c.is_neighbor(&n));
        }
    }

    #[test]
    fn diagonal_neighbors_at_distance_two() {
        let c = Axial::origin();
        for n in c.diagonal_neighbors() {
            assert_eq!(c.hex_distance(&n), 2);
        }
    }

    #[test]
    fn twelve_distinct_graph_peers() {
        let peers: HashSet<_> = Axial::origin().graph_peers().into_iter().collect();
        assert_eq!(peers.len(), 12);
        assert!(!peers.contains(&Axial::origin()));
    }

    #[test]
    fn distance_examples() {
        assert_eq!(Axial::origin().hex_distance(&Axial::new(3, 0)), 3);
        assert_eq!(Axial::origin().hex_distance(&Axial::new(2, -1)), 2);
        assert_eq!(Axial::origin().hex_distance(&Axial::new(-2, -2)), 4);
    }

    #[test]
    fn ring_sizes() {
        assert_eq!(Axial::origin().ring(0).len(), 1);
        assert_eq!(Axial::origin().ring(1).len(), 6);
        assert_eq!(Axial::origin().ring(2).len(), 12);
        assert_eq!(Axial::origin().ring(5).len(), 30);
    }

    #[test]
    fn ring_cells_at_exact_distance() {
        let center = Axial::new(4, -2);
        for radius in 1..5u32 {
            for cell in center.ring(radius) {
                assert_eq!(center.hex_distance(&cell), i64::from(radius));
            }
        }
    }

    #[test]
    fn disk_sizes_follow_centered_hexagonal_numbers() {
        // |disk(r)| = 3r(r+1) + 1
        for r in 0..6u32 {
            let expected = 3 * i64::from(r) * (i64::from(r) + 1) + 1;
            assert_eq!(Axial::origin().disk(r).len() as i64, expected);
        }
    }

    #[test]
    fn disk_contains_all_cells_within_radius() {
        let center = Axial::new(-1, 3);
        let disk: HashSet<_> = center.disk(3).into_iter().collect();
        for cell in &disk {
            assert!(center.hex_distance(cell) <= 3);
        }
        // Every ring cell up to the radius is present.
        for r in 0..=3u32 {
            for cell in center.ring(r) {
                assert!(disk.contains(&cell));
            }
        }
    }

    #[test]
    fn rounding_integer_coordinates_is_identity() {
        let c = Axial::new(5, -3);
        assert_eq!(Axial::round(5.0, -3.0), c);
    }

    #[test]
    fn rounding_small_perturbations_returns_same_cell() {
        let c = Axial::new(2, 1);
        assert_eq!(Axial::round(2.05, 0.97), c);
        assert_eq!(Axial::round(1.96, 1.02), c);
    }

    proptest! {
        /// Hex distance is a metric: symmetric, zero iff equal, triangle inequality.
        #[test]
        fn prop_hex_distance_metric(
            q1 in -50i64..50, r1 in -50i64..50,
            q2 in -50i64..50, r2 in -50i64..50,
            q3 in -50i64..50, r3 in -50i64..50,
        ) {
            let a = Axial::new(q1, r1);
            let b = Axial::new(q2, r2);
            let c = Axial::new(q3, r3);
            prop_assert_eq!(a.hex_distance(&b), b.hex_distance(&a));
            prop_assert_eq!(a.hex_distance(&a), 0);
            if a != b {
                prop_assert!(a.hex_distance(&b) > 0);
            }
            prop_assert!(a.hex_distance(&c) <= a.hex_distance(&b) + b.hex_distance(&c));
        }

        /// Translation invariance of the hex distance.
        #[test]
        fn prop_translation_invariance(
            q1 in -30i64..30, r1 in -30i64..30,
            q2 in -30i64..30, r2 in -30i64..30,
            tq in -30i64..30, tr in -30i64..30,
        ) {
            let a = Axial::new(q1, r1);
            let b = Axial::new(q2, r2);
            let t = Axial::new(tq, tr);
            prop_assert_eq!(a.hex_distance(&b), (a + t).hex_distance(&(b + t)));
        }

        /// Every disk cell is within the radius and every ring is on the boundary.
        #[test]
        fn prop_disk_and_ring_consistency(q in -20i64..20, r in -20i64..20, radius in 0u32..6) {
            let c = Axial::new(q, r);
            let disk: HashSet<_> = c.disk(radius).into_iter().collect();
            let ring: HashSet<_> = c.ring(radius).into_iter().collect();
            for cell in &ring {
                prop_assert_eq!(c.hex_distance(cell), i64::from(radius));
                prop_assert!(disk.contains(cell));
            }
        }
    }
}
