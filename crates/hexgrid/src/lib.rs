//! A hexagonal hierarchical spatial index built from scratch.
//!
//! The CORGI paper (Section 3.1) builds its *location tree* on Uber's H3 index:
//! an aperture-7 hierarchy of hexagonal cells where every parent cell has exactly
//! seven children, siblings are disjoint, cells at the same level have the same
//! size, and the distance between adjacent cell centers is constant.  This crate
//! reimplements those properties on a locally-projected plane:
//!
//! * [`Axial`] — axial/cube coordinates on the hexagonal lattice with neighbor,
//!   diagonal-neighbor, ring/disk, and hex-distance operations (Section 4.2's
//!   graph approximation needs both the 6 immediate and the 6 diagonal neighbors).
//! * [`CellId`] — a compact identifier of a cell: its level in the hierarchy plus
//!   the axial coordinates of its center expressed on the leaf lattice.
//! * [`hierarchy`] — the aperture-7 parent/child combinatorics (a Gosper-flake
//!   construction): every level-λ cell has exactly 7 level-(λ−1) children whose
//!   centers form a complete residue system of the index-7 sublattice.
//! * [`Layout`] — axial ↔ planar conversion with a configurable center spacing,
//!   plus hexagon boundaries.
//! * [`HexGrid`] — a concrete grid over a geographic area of interest: binds a
//!   hierarchy of a chosen height to a [`corgi_geo::LocalProjection`], exposes
//!   cell centers as [`corgi_geo::LatLng`] and maps arbitrary points to leaf cells.
//!
//! # Relation to H3
//!
//! True H3 projects the icosahedron onto the sphere; for the city-scale regions
//! CORGI targets (the paper's San-Francisco sample is ~15 km across) a local
//! equirectangular projection gives the same structure with negligible metric
//! distortion.  Every property the paper relies on — balanced 7-ary tree, equal
//! sibling cells, constant neighbor spacing `a` — holds exactly here.

#![warn(missing_docs)]

mod axial;
mod cellid;
pub mod hierarchy;
mod layout;
mod region;

pub use axial::{Axial, DIAGONAL_DIRECTIONS, DIRECTIONS};
pub use cellid::CellId;
pub use hierarchy::{children_of, digit_path, parent_of, APERTURE};
pub use layout::Layout;
pub use region::{HexGrid, HexGridConfig, HexGridError};
