//! A concrete hexagonal grid over a geographic area of interest.

use crate::{Axial, CellId, Layout};
use corgi_geo::{haversine_km, LatLng, LocalProjection};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors produced when building or querying a [`HexGrid`].
#[derive(Debug, Clone, PartialEq)]
pub enum HexGridError {
    /// The requested tree height is not supported (0 ≤ height ≤ 7 keeps the grid
    /// below 7⁷ ≈ 800 k leaves, far beyond anything the paper evaluates).
    UnsupportedHeight(u8),
    /// The leaf spacing was not strictly positive and finite.
    InvalidSpacing(f64),
    /// A queried point falls outside the grid's leaves.
    PointOutsideGrid(LatLng),
    /// A cell id does not belong to this grid.
    UnknownCell(CellId),
}

impl fmt::Display for HexGridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HexGridError::UnsupportedHeight(h) => {
                write!(f, "unsupported hierarchy height {h} (must be 1..=7)")
            }
            HexGridError::InvalidSpacing(s) => write!(f, "invalid leaf spacing {s} km"),
            HexGridError::PointOutsideGrid(p) => write!(f, "point {p} is outside the grid"),
            HexGridError::UnknownCell(c) => write!(f, "cell {c} does not belong to this grid"),
        }
    }
}

impl std::error::Error for HexGridError {}

/// Configuration of a [`HexGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HexGridConfig {
    /// Geographic center of the area of interest (becomes the root cell center).
    pub center: LatLng,
    /// Height of the aperture-7 hierarchy (number of levels above the leaves).
    /// The paper's San-Francisco grid uses height 3 → 343 leaf cells.
    pub height: u8,
    /// Distance between the centers of two adjacent leaf cells, in kilometres
    /// (the paper's `a`).
    pub leaf_spacing_km: f64,
}

impl HexGridConfig {
    /// Configuration matching the paper's experimental setup: a height-3 grid
    /// (343 leaves) over San Francisco with ~0.55 km leaf spacing, which covers
    /// roughly the city extent used in the Gowalla sample.
    pub fn san_francisco() -> Self {
        Self {
            center: LatLng::new(37.7749, -122.4194).expect("static coordinates are valid"),
            height: 3,
            leaf_spacing_km: 0.55,
        }
    }
}

/// A hexagonal hierarchical grid bound to a geographic area of interest.
///
/// This is the object the CORGI *server* builds in step ① of the framework
/// (Fig. 1): a spatial index over the area of interest which is then shared with
/// users so both sides agree on cell identities.
#[derive(Debug, Clone)]
pub struct HexGrid {
    config: HexGridConfig,
    projection: LocalProjection,
    layout: Layout,
    /// Leaves in digit order; index = stable leaf index used by obfuscation matrices.
    leaves: Vec<CellId>,
    leaf_index: HashMap<CellId, usize>,
}

impl HexGrid {
    /// Build the grid for the given configuration.
    pub fn new(config: HexGridConfig) -> Result<Self, HexGridError> {
        if config.height == 0 || config.height > 7 {
            return Err(HexGridError::UnsupportedHeight(config.height));
        }
        if !config.leaf_spacing_km.is_finite() || config.leaf_spacing_km <= 0.0 {
            return Err(HexGridError::InvalidSpacing(config.leaf_spacing_km));
        }
        let projection = LocalProjection::new(config.center);
        let layout = Layout::new(config.leaf_spacing_km);
        let leaves = CellId::root(config.height).descendant_leaves();
        let leaf_index = leaves
            .iter()
            .enumerate()
            .map(|(i, c)| (*c, i))
            .collect::<HashMap<_, _>>();
        Ok(Self {
            config,
            projection,
            layout,
            leaves,
            leaf_index,
        })
    }

    /// The grid configuration.
    pub fn config(&self) -> &HexGridConfig {
        &self.config
    }

    /// Height of the hierarchy (root level).
    pub fn height(&self) -> u8 {
        self.config.height
    }

    /// The root cell covering the whole area of interest.
    pub fn root(&self) -> CellId {
        CellId::root(self.config.height)
    }

    /// The leaf cells in stable (digit) order.
    pub fn leaves(&self) -> &[CellId] {
        &self.leaves
    }

    /// Number of leaf cells (`7^height`).
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// All cells at a given level, in digit order.
    pub fn cells_at_level(&self, level: u8) -> Vec<CellId> {
        assert!(level <= self.config.height, "level exceeds grid height");
        let mut out = Vec::new();
        collect_at_level(self.root(), level, &mut out);
        out
    }

    /// The stable index of a leaf cell within [`HexGrid::leaves`].
    pub fn leaf_index(&self, cell: &CellId) -> Result<usize, HexGridError> {
        self.leaf_index
            .get(cell)
            .copied()
            .ok_or(HexGridError::UnknownCell(*cell))
    }

    /// Whether a cell (at any level) belongs to this grid.
    pub fn contains_cell(&self, cell: &CellId) -> bool {
        if cell.level() > self.config.height {
            return false;
        }
        if cell.level() == 0 {
            return self.leaf_index.contains_key(cell);
        }
        // A non-leaf cell belongs to the grid iff its digit-0 (center) leaf does.
        let mut probe = *cell;
        while !probe.is_leaf() {
            probe = probe.children()[0];
        }
        self.leaf_index.contains_key(&probe)
    }

    /// Geographic center of a cell.
    pub fn cell_center(&self, cell: &CellId) -> LatLng {
        self.projection
            .unproject(&self.layout.to_planar(cell.center()))
    }

    /// Great-circle distance between two cell centers, in kilometres.
    pub fn cell_distance_km(&self, a: &CellId, b: &CellId) -> f64 {
        haversine_km(&self.cell_center(a), &self.cell_center(b))
    }

    /// Planar Euclidean distance between two cell centers, in kilometres.
    ///
    /// At city scale this agrees with [`HexGrid::cell_distance_km`] to a fraction
    /// of a percent; the planar form is exact for graph-approximation proofs.
    pub fn cell_planar_distance_km(&self, a: &CellId, b: &CellId) -> f64 {
        self.layout.center_distance_km(a.center(), b.center())
    }

    /// Spacing between adjacent leaf centers (the paper's `a`), km.
    pub fn leaf_spacing_km(&self) -> f64 {
        self.config.leaf_spacing_km
    }

    /// Spacing between adjacent cell centers at the given level, km (grows by √7
    /// per level).
    pub fn level_spacing_km(&self, level: u8) -> f64 {
        self.config.leaf_spacing_km * 7f64.sqrt().powi(i32::from(level))
    }

    /// The leaf cell containing a geographic point.
    pub fn leaf_containing(&self, point: &LatLng) -> Result<CellId, HexGridError> {
        let planar = self.projection.project(point);
        let axial = self.layout.from_planar(planar);
        let cell = CellId::new(0, axial);
        if self.leaf_index.contains_key(&cell) {
            Ok(cell)
        } else {
            Err(HexGridError::PointOutsideGrid(*point))
        }
    }

    /// The cell at `level` containing a geographic point.
    pub fn cell_containing(&self, point: &LatLng, level: u8) -> Result<CellId, HexGridError> {
        Ok(self.leaf_containing(point)?.ancestor_at(level))
    }

    /// Leaf cells that are immediate (distance `a`) neighbors of `cell` *within* the grid.
    pub fn leaf_neighbors(&self, cell: &CellId) -> Vec<CellId> {
        cell.center()
            .neighbors()
            .iter()
            .map(|c| CellId::new(0, *c))
            .filter(|c| self.leaf_index.contains_key(c))
            .collect()
    }

    /// Leaf cells that are diagonal (distance `√3·a`) neighbors of `cell` within the grid.
    pub fn leaf_diagonal_neighbors(&self, cell: &CellId) -> Vec<CellId> {
        cell.center()
            .diagonal_neighbors()
            .iter()
            .map(|c| CellId::new(0, *c))
            .filter(|c| self.leaf_index.contains_key(c))
            .collect()
    }

    /// The underlying leaf-lattice layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The local projection binding the planar lattice to geographic coordinates.
    pub fn projection(&self) -> &LocalProjection {
        &self.projection
    }

    /// Approximate radius (km) of the area covered by the whole grid: the maximum
    /// distance from the root center to a leaf center plus one circumradius.
    pub fn coverage_radius_km(&self) -> f64 {
        let root_axial = Axial::origin();
        let max_center = self
            .leaves
            .iter()
            .map(|l| self.layout.center_distance_km(root_axial, l.center()))
            .fold(0.0f64, f64::max);
        max_center + self.layout.circumradius_km()
    }
}

fn collect_at_level(cell: CellId, level: u8, out: &mut Vec<CellId>) {
    if cell.level() == level {
        out.push(cell);
        return;
    }
    for child in cell.children() {
        collect_at_level(child, level, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sf_grid() -> HexGrid {
        HexGrid::new(HexGridConfig::san_francisco()).unwrap()
    }

    #[test]
    fn san_francisco_grid_has_343_leaves() {
        let grid = sf_grid();
        assert_eq!(grid.leaf_count(), 343);
        assert_eq!(grid.cells_at_level(2).len(), 7);
        assert_eq!(grid.cells_at_level(1).len(), 49);
        assert_eq!(grid.cells_at_level(3).len(), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = HexGridConfig::san_francisco();
        cfg.height = 0;
        assert!(matches!(
            HexGrid::new(cfg),
            Err(HexGridError::UnsupportedHeight(0))
        ));
        let mut cfg = HexGridConfig::san_francisco();
        cfg.leaf_spacing_km = -1.0;
        assert!(matches!(
            HexGrid::new(cfg),
            Err(HexGridError::InvalidSpacing(_))
        ));
    }

    #[test]
    fn root_center_is_region_center() {
        let grid = sf_grid();
        let root_center = grid.cell_center(&grid.root());
        let d = haversine_km(&root_center, &grid.config().center);
        assert!(d < 1e-9);
    }

    #[test]
    fn leaf_lookup_roundtrip() {
        let grid = sf_grid();
        for leaf in grid.leaves().iter().step_by(13) {
            let center = grid.cell_center(leaf);
            let found = grid.leaf_containing(&center).unwrap();
            assert_eq!(found, *leaf);
        }
    }

    #[test]
    fn leaf_index_is_stable_and_complete() {
        let grid = sf_grid();
        for (i, leaf) in grid.leaves().iter().enumerate() {
            assert_eq!(grid.leaf_index(leaf).unwrap(), i);
        }
    }

    #[test]
    fn point_far_outside_rejected() {
        let grid = sf_grid();
        let tokyo = LatLng::new(35.6762, 139.6503).unwrap();
        assert!(matches!(
            grid.leaf_containing(&tokyo),
            Err(HexGridError::PointOutsideGrid(_))
        ));
    }

    #[test]
    fn adjacent_leaf_centers_at_leaf_spacing() {
        let grid = sf_grid();
        let leaf = grid.leaves()[100];
        for n in grid.leaf_neighbors(&leaf) {
            let d = grid.cell_distance_km(&leaf, &n);
            let rel = (d - grid.leaf_spacing_km()).abs() / grid.leaf_spacing_km();
            assert!(rel < 1e-2, "neighbor distance {d} vs spacing");
        }
    }

    #[test]
    fn diagonal_leaf_centers_at_sqrt3_spacing() {
        let grid = sf_grid();
        let leaf = grid.leaves()[171];
        let expected = grid.leaf_spacing_km() * 3f64.sqrt();
        for n in grid.leaf_diagonal_neighbors(&leaf) {
            let d = grid.cell_distance_km(&leaf, &n);
            assert!((d - expected).abs() / expected < 1e-2);
        }
    }

    #[test]
    fn level_spacing_grows_by_sqrt7() {
        let grid = sf_grid();
        let ratio = grid.level_spacing_km(1) / grid.level_spacing_km(0);
        assert!((ratio - 7f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn contains_cell_for_all_levels() {
        let grid = sf_grid();
        assert!(grid.contains_cell(&grid.root()));
        for cell in grid.cells_at_level(2) {
            assert!(grid.contains_cell(&cell));
        }
        // A cell from a taller hierarchy is rejected.
        assert!(!grid.contains_cell(&CellId::root(5)));
        // A leaf far away from the flake is rejected.
        assert!(!grid.contains_cell(&CellId::new(0, Axial::new(1000, 1000))));
    }

    #[test]
    fn coverage_radius_is_city_scale() {
        let grid = sf_grid();
        let r = grid.coverage_radius_km();
        // 343 cells of ~0.55 km spacing cover roughly a 6–12 km radius flake.
        assert!(r > 4.0 && r < 20.0, "coverage radius {r}");
    }

    #[test]
    fn subtree_leaves_are_grid_leaves() {
        let grid = sf_grid();
        for subtree_root in grid.cells_at_level(2) {
            for leaf in subtree_root.descendant_leaves() {
                assert!(grid.leaf_index(&leaf).is_ok());
                assert!(subtree_root.is_ancestor_of(&leaf));
            }
        }
    }

    proptest! {
        /// Any point sampled inside a leaf hexagon maps back to that leaf (sampled
        /// well inside the inradius to avoid boundary ties).
        #[test]
        fn prop_point_in_leaf_maps_back(leaf_idx in 0usize..343, dx in -0.2f64..0.2, dy in -0.2f64..0.2) {
            let grid = sf_grid();
            let leaf = grid.leaves()[leaf_idx];
            let planar = grid.layout().to_planar(leaf.center())
                + corgi_geo::Vec2::new(dx * grid.leaf_spacing_km(), dy * grid.leaf_spacing_km());
            let point = grid.projection().unproject(&planar);
            prop_assert_eq!(grid.leaf_containing(&point).unwrap(), leaf);
        }
    }
}
