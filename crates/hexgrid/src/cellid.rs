//! Compact cell identifiers.

use crate::{hierarchy, Axial};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cell in an aperture-7 hierarchy.
///
/// A cell is fully determined by its `level` (0 = leaf, increasing towards the
/// root) and the axial coordinates of its center expressed on the *leaf* lattice.
/// The identifier is independent of the geographic placement of the grid, so the
/// same `CellId` values can be exchanged between the CORGI server and clients
/// (Section 5 of the paper) without revealing coordinates beyond the shared grid
/// definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId {
    level: u8,
    center: Axial,
}

impl CellId {
    /// Create a cell id from a level and a leaf-lattice center.
    ///
    /// The caller is responsible for the center actually lying on the level-`level`
    /// sublattice; [`CellId::parent`] will panic otherwise.  Cells obtained from a
    /// [`crate::HexGrid`] are always valid.
    pub fn new(level: u8, center: Axial) -> Self {
        Self { level, center }
    }

    /// The root cell of a hierarchy (any height) centred at the origin.
    pub fn root(height: u8) -> Self {
        Self {
            level: height,
            center: Axial::origin(),
        }
    }

    /// Level of the cell: 0 for leaves, growing towards the root.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Center of the cell in leaf-lattice axial coordinates.
    pub fn center(&self) -> Axial {
        self.center
    }

    /// Whether this is a leaf cell.
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// The seven children of this cell (panics for leaves).
    pub fn children(&self) -> [CellId; hierarchy::APERTURE] {
        let centers = hierarchy::children_of(self.center, self.level);
        let mut out = [CellId::new(self.level - 1, Axial::origin()); hierarchy::APERTURE];
        for (slot, c) in out.iter_mut().zip(centers.iter()) {
            *slot = CellId::new(self.level - 1, *c);
        }
        out
    }

    /// The parent of this cell together with this cell's digit under that parent.
    pub fn parent(&self) -> (CellId, u8) {
        let (center, digit) = hierarchy::parent_of(self.center, self.level);
        (CellId::new(self.level + 1, center), digit)
    }

    /// The ancestor of this cell at the given (higher or equal) level.
    pub fn ancestor_at(&self, level: u8) -> CellId {
        assert!(
            level >= self.level,
            "ancestor level {level} is below the cell level {}",
            self.level
        );
        let mut cur = *self;
        while cur.level < level {
            cur = cur.parent().0;
        }
        cur
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    pub fn is_ancestor_of(&self, other: &CellId) -> bool {
        if other.level > self.level {
            return false;
        }
        other.ancestor_at(self.level) == *self
    }

    /// All descendant leaf cells of this cell, in digit order.
    pub fn descendant_leaves(&self) -> Vec<CellId> {
        let mut out = Vec::with_capacity(hierarchy::APERTURE.pow(u32::from(self.level)));
        collect_leaves(*self, &mut out);
        out
    }

    /// Pack the cell id into a single `u64` (level in the top byte, `q` and `r`
    /// as 28-bit signed offsets).  Panics if coordinates exceed ±2²⁷.
    pub fn pack(&self) -> u64 {
        const LIMIT: i64 = 1 << 27;
        assert!(
            self.center.q.abs() < LIMIT && self.center.r.abs() < LIMIT,
            "cell coordinates exceed the packable range"
        );
        let q = (self.center.q + LIMIT) as u64;
        let r = (self.center.r + LIMIT) as u64;
        (u64::from(self.level) << 56) | (q << 28) | r
    }

    /// Inverse of [`CellId::pack`].
    pub fn unpack(packed: u64) -> Self {
        const LIMIT: i64 = 1 << 27;
        let level = (packed >> 56) as u8;
        let q = ((packed >> 28) & 0x0FFF_FFFF) as i64 - LIMIT;
        let r = (packed & 0x0FFF_FFFF) as i64 - LIMIT;
        CellId::new(level, Axial::new(q, r))
    }
}

fn collect_leaves(cell: CellId, out: &mut Vec<CellId>) {
    if cell.is_leaf() {
        out.push(cell);
        return;
    }
    for child in cell.children() {
        collect_leaves(child, out);
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}@{}", self.level, self.center)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn root_children_count() {
        let root = CellId::root(3);
        assert_eq!(root.children().len(), 7);
        assert_eq!(root.level(), 3);
        assert!(!root.is_leaf());
    }

    #[test]
    fn descendant_leaves_counts() {
        assert_eq!(CellId::root(0).descendant_leaves().len(), 1);
        assert_eq!(CellId::root(1).descendant_leaves().len(), 7);
        assert_eq!(CellId::root(2).descendant_leaves().len(), 49);
        assert_eq!(CellId::root(3).descendant_leaves().len(), 343);
    }

    #[test]
    fn descendant_leaves_are_distinct() {
        let leaves = CellId::root(3).descendant_leaves();
        let set: HashSet<_> = leaves.iter().copied().collect();
        assert_eq!(set.len(), leaves.len());
        assert!(leaves.iter().all(|l| l.is_leaf()));
    }

    #[test]
    fn parent_child_roundtrip() {
        let root = CellId::root(2);
        for child in root.children() {
            let (p, _) = child.parent();
            assert_eq!(p, root);
            for grandchild in child.children() {
                assert_eq!(grandchild.parent().0, child);
                assert_eq!(grandchild.ancestor_at(2), root);
            }
        }
    }

    #[test]
    fn ancestor_of_relationship() {
        let root = CellId::root(3);
        let leaf = root.descendant_leaves()[42];
        assert!(root.is_ancestor_of(&leaf));
        assert!(leaf.ancestor_at(3) == root);
        assert!(!leaf.is_ancestor_of(&root));
        assert!(leaf.is_ancestor_of(&leaf));
    }

    #[test]
    fn ancestors_partition_leaves() {
        // Every leaf of the height-3 tree has exactly one level-2 ancestor among
        // the root's children, and each such ancestor owns exactly 49 leaves.
        let root = CellId::root(3);
        let mut counts = std::collections::HashMap::new();
        for leaf in root.descendant_leaves() {
            *counts.entry(leaf.ancestor_at(2)).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 7);
        assert!(counts.values().all(|&c| c == 49));
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let root = CellId::root(3);
        for leaf in root.descendant_leaves() {
            assert_eq!(CellId::unpack(leaf.pack()), leaf);
        }
        assert_eq!(CellId::unpack(root.pack()), root);
    }

    #[test]
    #[should_panic(expected = "ancestor level")]
    fn ancestor_below_level_panics() {
        let root = CellId::root(2);
        let _ = root.ancestor_at(0);
    }

    proptest! {
        /// Packing is injective over a height-3 tree and round-trips.
        #[test]
        fn prop_pack_roundtrip(q in -1000i64..1000, r in -1000i64..1000, level in 0u8..5) {
            let cell = CellId::new(level, Axial::new(q, r));
            prop_assert_eq!(CellId::unpack(cell.pack()), cell);
        }
    }
}
