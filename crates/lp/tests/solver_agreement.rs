//! Cross-solver agreement tests: the simplex method is the exact reference; the
//! interior-point solvers must reproduce its optimal objective on random
//! feasible, bounded problems.

use corgi_lp::{
    BlockAngularSolver, ConstraintSense, InteriorPointOptions, InteriorPointSolver, KernelStrategy,
    LpProblem, LpSolver, SimplexSolver, SolveStatus,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Build a random LP that is guaranteed feasible (the origin plus slack is
/// feasible because every RHS is ≥ 0 for ≤ rows) and bounded (all objective
/// coefficients are ≥ 0.1 and variables are non-negative).
fn random_bounded_problem(seed: u64, n: usize, m: usize) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = LpProblem::new(n);
    let c: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..2.0)).collect();
    p.set_objective_vector(c).unwrap();
    for _ in 0..m {
        let k = rng.gen_range(1..=3.min(n));
        let mut coeffs = Vec::new();
        let mut used = std::collections::HashSet::new();
        while coeffs.len() < k {
            let j = rng.gen_range(0..n);
            if used.insert(j) {
                coeffs.push((j, rng.gen_range(-1.0..2.0)));
            }
        }
        // Mix of ≥ constraints (forces some mass away from zero) and ≤ caps.
        if rng.gen_bool(0.5) {
            // a·x ≥ b with small positive b and at least one positive coefficient
            // keeps the problem feasible.
            if coeffs.iter().any(|(_, a)| *a > 0.0) {
                p.add_constraint(coeffs, ConstraintSense::Ge, rng.gen_range(0.0..1.0))
                    .unwrap();
            }
        } else {
            let coeffs: Vec<(usize, f64)> = coeffs.into_iter().map(|(j, a)| (j, a.abs())).collect();
            p.add_constraint(coeffs, ConstraintSense::Le, rng.gen_range(1.0..5.0))
                .unwrap();
        }
    }
    p
}

#[test]
fn ipm_matches_simplex_on_many_random_problems() {
    let mut compared = 0;
    let mut skipped_non_optimal = 0;
    for seed in 0..60u64 {
        let p = random_bounded_problem(seed, 4 + (seed % 4) as usize, 5 + (seed % 6) as usize);
        let spx = SimplexSolver::new().solve(&p).unwrap();
        if spx.status != SolveStatus::Optimal {
            continue; // randomly generated ≥ rows can make a problem infeasible
        }
        let ipm = InteriorPointSolver::default().solve(&p).unwrap();
        if ipm.status != SolveStatus::Optimal {
            // Path-following without a homogeneous embedding is not guaranteed on
            // problems lacking a strictly feasible interior; it must report the
            // failure honestly rather than return a wrong answer.
            skipped_non_optimal += 1;
            continue;
        }
        let scale = 1.0 + spx.objective.abs();
        assert!(
            (ipm.objective - spx.objective).abs() / scale < 1e-4,
            "seed {seed}: ipm {} vs simplex {}",
            ipm.objective,
            spx.objective
        );
        assert!(
            p.is_feasible(&ipm.x, 1e-4),
            "seed {seed} produced infeasible x"
        );
        compared += 1;
    }
    assert!(
        compared > 20,
        "too few feasible random instances ({compared})"
    );
    assert!(
        skipped_non_optimal <= 3,
        "IPM gave up on too many instances ({skipped_non_optimal})"
    );
}

/// Row-stochastic "obfuscation-like" problems of varying size: block solver,
/// general IPM and simplex all agree.
#[test]
fn block_solver_matches_simplex_on_stochastic_matrices() {
    for &k in &[2usize, 3, 4, 5] {
        let var = |i: usize, j: usize| i * k + j;
        let mut p = LpProblem::new(k * k);
        let mut rng = StdRng::seed_from_u64(k as u64);
        for i in 0..k {
            for j in 0..k {
                let cost: f64 = (i as f64 - j as f64).abs() + rng.gen_range(0.0..0.2);
                p.set_objective(var(i, j), cost).unwrap();
            }
        }
        for i in 0..k {
            let coeffs = (0..k).map(|j| (var(i, j), 1.0)).collect();
            p.add_constraint(coeffs, ConstraintSense::Eq, 1.0).unwrap();
        }
        let factor = 0.8f64.exp();
        for j in 0..k {
            for i in 0..k {
                for l in 0..k {
                    if i != l {
                        p.add_constraint(
                            vec![(var(i, j), 1.0), (var(l, j), -factor)],
                            ConstraintSense::Le,
                            0.0,
                        )
                        .unwrap();
                    }
                }
            }
        }
        let spx = SimplexSolver::new().solve(&p).unwrap();
        let blocks: Vec<Vec<usize>> = (0..k)
            .map(|j| (0..k).map(|i| var(i, j)).collect())
            .collect();
        let block = BlockAngularSolver::new(blocks, InteriorPointOptions::default())
            .solve(&p)
            .unwrap();
        assert_eq!(spx.status, SolveStatus::Optimal);
        assert_eq!(block.status, SolveStatus::Optimal);
        assert!(
            (spx.objective - block.objective).abs() < 1e-4,
            "k={k}: simplex {} vs block {}",
            spx.objective,
            block.objective
        );
        assert!(p.is_feasible(&block.x, 1e-5));
    }
}

/// Build a full-tree-shaped block-angular LP over `k` locations: a `k × k`
/// row-stochastic matrix, ring-neighbor ratio constraints per column (the
/// graph-approximated Geo-Ind pattern), row sums = 1 — the same structure as
/// the paper's obfuscation LP at K locations, sized synthetically so the
/// `corgi-lp` crate can exercise the K = 343 regime without depending on the
/// geo stack.
fn full_tree_shaped_problem(k: usize) -> (LpProblem, Vec<Vec<usize>>) {
    let var = |i: usize, j: usize| i * k + j;
    let mut p = LpProblem::new(k * k);
    let mut rng = StdRng::seed_from_u64(k as u64);
    for i in 0..k {
        for j in 0..k {
            let cost: f64 = (i as f64 - j as f64).abs() / k as f64 + rng.gen_range(0.0..0.2);
            p.set_objective(var(i, j), cost).unwrap();
        }
    }
    for i in 0..k {
        let coeffs = (0..k).map(|j| (var(i, j), 1.0)).collect();
        p.add_constraint(coeffs, ConstraintSense::Eq, 1.0).unwrap();
    }
    // Ring-neighbor constrained pairs: (i, i+1) and (i+1, i), both directions,
    // one constraint per reported column — the sparse analogue of the
    // 12-neighbor mobility graph.
    let factor = 1.8f64.exp();
    for j in 0..k {
        for i in 0..k {
            let nb = (i + 1) % k;
            p.add_constraint(
                vec![(var(i, j), 1.0), (var(nb, j), -factor)],
                ConstraintSense::Le,
                0.0,
            )
            .unwrap();
            p.add_constraint(
                vec![(var(nb, j), 1.0), (var(i, j), -factor)],
                ConstraintSense::Le,
                0.0,
            )
            .unwrap();
        }
    }
    let blocks: Vec<Vec<usize>> = (0..k)
        .map(|j| (0..k).map(|i| var(i, j)).collect())
        .collect();
    (p, blocks)
}

/// Blocked and reference kernel strategies agree end to end on a moderately
/// sized full-tree-shaped instance (full convergence, default tolerances).
#[test]
fn kernel_strategies_agree_on_full_tree_shape() {
    let (p, blocks) = full_tree_shaped_problem(12);
    let blocked = BlockAngularSolver::new(blocks.clone(), InteriorPointOptions::default())
        .solve(&p)
        .unwrap();
    let reference = BlockAngularSolver::new(blocks, InteriorPointOptions::reference_kernels())
        .solve(&p)
        .unwrap();
    assert_eq!(blocked.status, SolveStatus::Optimal);
    assert_eq!(reference.status, SolveStatus::Optimal);
    let scale = 1.0 + reference.objective.abs();
    assert!(
        (blocked.objective - reference.objective).abs() / scale < 1e-6,
        "blocked {} vs reference {}",
        blocked.objective,
        reference.objective
    );
    for (a, b) in blocked.x.iter().zip(reference.x.iter()) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
    assert!(p.is_feasible(&blocked.x, 1e-6));
}

/// The paper's full-tree regime: K = 343 locations (117 649 variables, 343
/// per-column blocks, 343 coupling equalities).  The blocked and reference
/// kernel strategies must produce the same iterates; with the iteration count
/// capped the comparison measures exactly the Newton hot path both strategies
/// share, and stays runnable (the reference kernels need tens of seconds per
/// iteration at this size — which is why this test is `#[ignore]` and run from
/// the CI heavy lane via `cargo test --release -- --ignored`).
#[test]
#[ignore = "K = 343 reference kernels are slow; run explicitly (CI heavy lane)"]
fn full_tree_k343_blocked_matches_reference_iterates() {
    use std::time::Instant;
    let k = 343;
    let (p, blocks) = full_tree_shaped_problem(k);
    let (le, ge, eq) = p.constraint_counts();
    println!(
        "K=343 LP: {} vars, {} constraints ({le} ≤ / {ge} ≥ / {eq} =), {} nonzeros",
        p.num_vars(),
        p.num_constraints(),
        p.nonzeros()
    );
    let capped = |kernels| InteriorPointOptions {
        max_iterations: 3,
        kernels,
        ..InteriorPointOptions::default()
    };
    let t0 = Instant::now();
    let blocked = BlockAngularSolver::new(blocks.clone(), capped(KernelStrategy::Blocked))
        .solve(&p)
        .unwrap();
    let blocked_time = t0.elapsed();
    let t1 = Instant::now();
    let reference = BlockAngularSolver::new(blocks, capped(KernelStrategy::Reference))
        .solve(&p)
        .unwrap();
    let reference_time = t1.elapsed();
    println!(
        "K=343, 3 IPM iterations: blocked {blocked_time:?}, reference {reference_time:?} \
         ({:.1}x)",
        reference_time.as_secs_f64() / blocked_time.as_secs_f64().max(1e-9)
    );
    assert_eq!(blocked.iterations, reference.iterations);
    let scale = 1.0 + reference.objective.abs();
    assert!(
        (blocked.objective - reference.objective).abs() / scale < 1e-6,
        "blocked {} vs reference {}",
        blocked.objective,
        reference.objective
    );
    let max_dx = blocked
        .x
        .iter()
        .zip(reference.x.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_dx < 1e-6, "iterates diverged: max |Δx| = {max_dx}");
}

/// Full convergence of the blocked kernels on the K = 343 full-tree shape —
/// the solve the paper's fig09–fig13 regime depends on.  `#[ignore]`d for the
/// same reason as above (minutes, not milliseconds); the CI heavy lane runs it.
#[test]
#[ignore = "multi-minute full-tree solve; run explicitly (CI heavy lane)"]
fn full_tree_k343_blocked_converges() {
    use std::time::Instant;
    let (p, blocks) = full_tree_shaped_problem(343);
    let t0 = Instant::now();
    let s = BlockAngularSolver::new(blocks, InteriorPointOptions::default())
        .solve(&p)
        .unwrap();
    println!(
        "K=343 full solve: {:?} in {} iterations ({:?})",
        s.status,
        s.iterations,
        t0.elapsed()
    );
    assert_eq!(s.status, SolveStatus::Optimal);
    assert!(p.is_feasible(&s.x, 1e-5));
}

/// The parallel block kernels must not change what the solver computes: with
/// `threads > 1` the per-block factorizations are bit-exact and the Schur
/// reduction differs only in summation grouping, so iteration counts match
/// and objectives agree to solver tolerance.
#[test]
fn parallel_blocked_solver_matches_serial_on_full_tree_shape() {
    let (p, blocks) = full_tree_shaped_problem(12);
    let serial_opts = InteriorPointOptions {
        threads: 1,
        ..InteriorPointOptions::default()
    };
    let parallel_opts = InteriorPointOptions {
        threads: 3,
        ..InteriorPointOptions::default()
    };
    let serial = BlockAngularSolver::new(blocks.clone(), serial_opts)
        .solve(&p)
        .unwrap();
    let parallel = BlockAngularSolver::new(blocks, parallel_opts)
        .solve(&p)
        .unwrap();
    assert_eq!(serial.status, SolveStatus::Optimal);
    assert_eq!(parallel.status, SolveStatus::Optimal);
    assert_eq!(
        serial.iterations, parallel.iterations,
        "parallel kernels changed the iterate path"
    );
    let scale = 1.0 + serial.objective.abs();
    assert!(
        (serial.objective - parallel.objective).abs() / scale < 1e-8,
        "serial {} vs parallel {}",
        serial.objective,
        parallel.objective
    );
    assert!(p.is_feasible(&parallel.x, 1e-6));
}

/// Warm-start contract on the K = 49 full-tree shape: re-solving from the
/// converged iterate reaches the same optimum in strictly fewer iterations.
#[test]
fn warm_start_k49_matches_cold_objective_in_fewer_iterations() {
    let (p, blocks) = full_tree_shaped_problem(49);
    let cold = BlockAngularSolver::new(blocks.clone(), InteriorPointOptions::default())
        .solve(&p)
        .unwrap();
    assert_eq!(cold.status, SolveStatus::Optimal);
    let warm_state = cold
        .warm
        .clone()
        .expect("optimal solve captures warm state");
    let warm = BlockAngularSolver::new(blocks, InteriorPointOptions::default())
        .solve_with_warm(&p, Some(&warm_state))
        .unwrap();
    assert_eq!(warm.status, SolveStatus::Optimal);
    assert!(
        warm.iterations < cold.iterations,
        "warm restart took {} iterations vs {} cold",
        warm.iterations,
        cold.iterations
    );
    // Both runs stop at the solver's convergence tolerance, so the two
    // optima agree to that tolerance, not to machine precision.
    let scale = 1.0 + cold.objective.abs();
    assert!(
        (warm.objective - cold.objective).abs() / scale < 1e-4,
        "warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    assert!(p.is_feasible(&warm.x, 1e-6));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random 2-variable problems with a box and a lower-bound cut, the IPM
    /// objective equals the simplex objective.
    #[test]
    fn prop_two_variable_agreement(
        c0 in 0.1f64..3.0, c1 in 0.1f64..3.0,
        cap in 1.0f64..6.0, lower in 0.1f64..0.9,
    ) {
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![c0, c1]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, cap).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Ge, lower).unwrap();
        let spx = SimplexSolver::new().solve(&p).unwrap();
        let ipm = InteriorPointSolver::default().solve(&p).unwrap();
        prop_assert_eq!(spx.status, SolveStatus::Optimal);
        prop_assert_eq!(ipm.status, SolveStatus::Optimal);
        prop_assert!((spx.objective - ipm.objective).abs() < 1e-5);
    }

    /// Any worker count produces the serial iterate path on a block-angular
    /// solve: same status, same iteration count, same objective.
    #[test]
    fn prop_thread_count_never_changes_the_solve(threads in 2usize..5, k in 4usize..8) {
        let (p, blocks) = full_tree_shaped_problem(k);
        let serial = BlockAngularSolver::new(
            blocks.clone(),
            InteriorPointOptions { threads: 1, ..InteriorPointOptions::default() },
        )
        .solve(&p)
        .unwrap();
        let parallel = BlockAngularSolver::new(
            blocks,
            InteriorPointOptions { threads, ..InteriorPointOptions::default() },
        )
        .solve(&p)
        .unwrap();
        prop_assert_eq!(serial.status, parallel.status);
        prop_assert_eq!(serial.iterations, parallel.iterations);
        let scale = 1.0 + serial.objective.abs();
        prop_assert!((serial.objective - parallel.objective).abs() / scale < 1e-8);
    }

    /// Random transportation problems (always feasible and bounded): agreement.
    #[test]
    fn prop_transportation_agreement(
        s0 in 1.0f64..5.0, s1 in 1.0f64..5.0,
        split in 0.2f64..0.8,
        costs in proptest::collection::vec(0.1f64..4.0, 4),
    ) {
        let total = s0 + s1;
        let d0 = total * split;
        let d1 = total - d0;
        let mut p = LpProblem::new(4); // x00 x01 x10 x11
        p.set_objective_vector(costs).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, s0).unwrap();
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], ConstraintSense::Eq, s1).unwrap();
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, d0).unwrap();
        p.add_constraint(vec![(1, 1.0), (3, 1.0)], ConstraintSense::Eq, d1).unwrap();
        let spx = SimplexSolver::new().solve(&p).unwrap();
        let ipm = InteriorPointSolver::default().solve(&p).unwrap();
        prop_assert_eq!(spx.status, SolveStatus::Optimal);
        prop_assert_eq!(ipm.status, SolveStatus::Optimal);
        let scale = 1.0 + spx.objective.abs();
        prop_assert!((spx.objective - ipm.objective).abs() / scale < 1e-4);
    }
}
