//! Cross-solver agreement tests: the simplex method is the exact reference; the
//! interior-point solvers must reproduce its optimal objective on random
//! feasible, bounded problems.

use corgi_lp::{
    BlockAngularSolver, ConstraintSense, InteriorPointOptions, InteriorPointSolver, LpProblem,
    LpSolver, SimplexSolver, SolveStatus,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Build a random LP that is guaranteed feasible (the origin plus slack is
/// feasible because every RHS is ≥ 0 for ≤ rows) and bounded (all objective
/// coefficients are ≥ 0.1 and variables are non-negative).
fn random_bounded_problem(seed: u64, n: usize, m: usize) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = LpProblem::new(n);
    let c: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..2.0)).collect();
    p.set_objective_vector(c).unwrap();
    for _ in 0..m {
        let k = rng.gen_range(1..=3.min(n));
        let mut coeffs = Vec::new();
        let mut used = std::collections::HashSet::new();
        while coeffs.len() < k {
            let j = rng.gen_range(0..n);
            if used.insert(j) {
                coeffs.push((j, rng.gen_range(-1.0..2.0)));
            }
        }
        // Mix of ≥ constraints (forces some mass away from zero) and ≤ caps.
        if rng.gen_bool(0.5) {
            // a·x ≥ b with small positive b and at least one positive coefficient
            // keeps the problem feasible.
            if coeffs.iter().any(|(_, a)| *a > 0.0) {
                p.add_constraint(coeffs, ConstraintSense::Ge, rng.gen_range(0.0..1.0))
                    .unwrap();
            }
        } else {
            let coeffs: Vec<(usize, f64)> =
                coeffs.into_iter().map(|(j, a)| (j, a.abs())).collect();
            p.add_constraint(coeffs, ConstraintSense::Le, rng.gen_range(1.0..5.0))
                .unwrap();
        }
    }
    p
}

#[test]
fn ipm_matches_simplex_on_many_random_problems() {
    let mut compared = 0;
    let mut skipped_non_optimal = 0;
    for seed in 0..60u64 {
        let p = random_bounded_problem(seed, 4 + (seed % 4) as usize, 5 + (seed % 6) as usize);
        let spx = SimplexSolver::new().solve(&p).unwrap();
        if spx.status != SolveStatus::Optimal {
            continue; // randomly generated ≥ rows can make a problem infeasible
        }
        let ipm = InteriorPointSolver::default().solve(&p).unwrap();
        if ipm.status != SolveStatus::Optimal {
            // Path-following without a homogeneous embedding is not guaranteed on
            // problems lacking a strictly feasible interior; it must report the
            // failure honestly rather than return a wrong answer.
            skipped_non_optimal += 1;
            continue;
        }
        let scale = 1.0 + spx.objective.abs();
        assert!(
            (ipm.objective - spx.objective).abs() / scale < 1e-4,
            "seed {seed}: ipm {} vs simplex {}",
            ipm.objective,
            spx.objective
        );
        assert!(p.is_feasible(&ipm.x, 1e-4), "seed {seed} produced infeasible x");
        compared += 1;
    }
    assert!(compared > 20, "too few feasible random instances ({compared})");
    assert!(
        skipped_non_optimal <= 3,
        "IPM gave up on too many instances ({skipped_non_optimal})"
    );
}

/// Row-stochastic "obfuscation-like" problems of varying size: block solver,
/// general IPM and simplex all agree.
#[test]
fn block_solver_matches_simplex_on_stochastic_matrices() {
    for &k in &[2usize, 3, 4, 5] {
        let var = |i: usize, j: usize| i * k + j;
        let mut p = LpProblem::new(k * k);
        let mut rng = StdRng::seed_from_u64(k as u64);
        for i in 0..k {
            for j in 0..k {
                let cost: f64 = (i as f64 - j as f64).abs() + rng.gen_range(0.0..0.2);
                p.set_objective(var(i, j), cost).unwrap();
            }
        }
        for i in 0..k {
            let coeffs = (0..k).map(|j| (var(i, j), 1.0)).collect();
            p.add_constraint(coeffs, ConstraintSense::Eq, 1.0).unwrap();
        }
        let factor = 0.8f64.exp();
        for j in 0..k {
            for i in 0..k {
                for l in 0..k {
                    if i != l {
                        p.add_constraint(
                            vec![(var(i, j), 1.0), (var(l, j), -factor)],
                            ConstraintSense::Le,
                            0.0,
                        )
                        .unwrap();
                    }
                }
            }
        }
        let spx = SimplexSolver::new().solve(&p).unwrap();
        let blocks: Vec<Vec<usize>> = (0..k)
            .map(|j| (0..k).map(|i| var(i, j)).collect())
            .collect();
        let block = BlockAngularSolver::new(blocks, InteriorPointOptions::default())
            .solve(&p)
            .unwrap();
        assert_eq!(spx.status, SolveStatus::Optimal);
        assert_eq!(block.status, SolveStatus::Optimal);
        assert!(
            (spx.objective - block.objective).abs() < 1e-4,
            "k={k}: simplex {} vs block {}",
            spx.objective,
            block.objective
        );
        assert!(p.is_feasible(&block.x, 1e-5));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random 2-variable problems with a box and a lower-bound cut, the IPM
    /// objective equals the simplex objective.
    #[test]
    fn prop_two_variable_agreement(
        c0 in 0.1f64..3.0, c1 in 0.1f64..3.0,
        cap in 1.0f64..6.0, lower in 0.1f64..0.9,
    ) {
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![c0, c1]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, cap).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Ge, lower).unwrap();
        let spx = SimplexSolver::new().solve(&p).unwrap();
        let ipm = InteriorPointSolver::default().solve(&p).unwrap();
        prop_assert_eq!(spx.status, SolveStatus::Optimal);
        prop_assert_eq!(ipm.status, SolveStatus::Optimal);
        prop_assert!((spx.objective - ipm.objective).abs() < 1e-5);
    }

    /// Random transportation problems (always feasible and bounded): agreement.
    #[test]
    fn prop_transportation_agreement(
        s0 in 1.0f64..5.0, s1 in 1.0f64..5.0,
        split in 0.2f64..0.8,
        costs in proptest::collection::vec(0.1f64..4.0, 4),
    ) {
        let total = s0 + s1;
        let d0 = total * split;
        let d1 = total - d0;
        let mut p = LpProblem::new(4); // x00 x01 x10 x11
        p.set_objective_vector(costs).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, s0).unwrap();
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], ConstraintSense::Eq, s1).unwrap();
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, d0).unwrap();
        p.add_constraint(vec![(1, 1.0), (3, 1.0)], ConstraintSense::Eq, d1).unwrap();
        let spx = SimplexSolver::new().solve(&p).unwrap();
        let ipm = InteriorPointSolver::default().solve(&p).unwrap();
        prop_assert_eq!(spx.status, SolveStatus::Optimal);
        prop_assert_eq!(ipm.status, SolveStatus::Optimal);
        let scale = 1.0 + spx.objective.abs();
        prop_assert!((spx.objective - ipm.objective).abs() / scale < 1e-4);
    }
}
