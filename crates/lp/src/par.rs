//! Dependency-free scoped-thread fan-out for the parallel block kernels.
//!
//! The block-angular Newton systems factor K independent per-block matrices
//! per interior-point iteration — embarrassingly parallel work that this
//! module spreads over [`std::thread::scope`] workers without pulling in an
//! external thread-pool crate.  Two primitives cover every call site in
//! `interior.rs`:
//!
//! * [`fan_out`] — read-only fan-out over an index range, returning one result
//!   per worker **in worker order** (worker `i` owns the `i`-th contiguous
//!   chunk of the range, so the result order is independent of scheduling);
//! * [`fan_out_mut`] — the same, but each worker additionally receives a
//!   disjoint `&mut` chunk of a shared slice (via `split_at_mut`), which is
//!   how the per-block Cholesky factors are written in place concurrently.
//!
//! Determinism contract: chunk boundaries depend only on `(workers, len)`,
//! results are collected in worker order, and callers reduce per-worker
//! partial buffers in that same order — so for a fixed `threads` setting the
//! parallel kernels always produce the same bits, and `threads = 1` never
//! spawns at all (the serial code path is preserved exactly).
//!
//! Threads are spawned per call rather than pooled.  A fan-out at the
//! sizes that warrant `threads > 1` (hundreds of dense Cholesky
//! factorizations, ~1 s of work) dwarfs the ~10 µs/thread spawn cost, and
//! scoped threads keep the API free of lifetime gymnastics and shutdown
//! protocols.  Worker panics are propagated to the caller via
//! [`std::panic::resume_unwind`].

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic;
use std::thread;

/// Resolve an [`InteriorPointOptions::threads`](crate::InteriorPointOptions)
/// setting to a concrete worker count: `0` means "all available cores"
/// ([`std::thread::available_parallelism`], falling back to 1 when the
/// platform cannot say), any other value is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Split `0..len` into at most `workers` contiguous chunks of near-equal size
/// (the first `len % workers` chunks get one extra item).  Always returns at
/// least one (possibly empty) range so callers can treat the result uniformly.
fn chunk_ranges(workers: usize, len: usize) -> Vec<Range<usize>> {
    let workers = workers.clamp(1, len.max(1));
    let base = len / workers;
    let rem = len % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let size = base + usize::from(i < rem);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Run `f` over contiguous chunks of `0..len` on up to `workers` scoped
/// threads and return the per-worker results in worker order.
///
/// With one chunk (or `workers <= 1`) the closure runs on the calling thread
/// and no threads are spawned.
pub fn fan_out<R, F>(workers: usize, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(workers, len);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(f).collect();
    }
    thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || f(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// Like [`fan_out`], but each worker receives a disjoint mutable chunk of
/// `items` plus the global index of the chunk's first element.
///
/// The chunks partition `items` contiguously in worker order, so worker `i`
/// of `n` always sees the same chunk for a given `(workers, items.len())` —
/// results and side effects are deterministic for a fixed worker count.
pub fn fan_out_mut<T, R, F>(workers: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let ranges = chunk_ranges(workers, items.len());
    if ranges.len() <= 1 {
        return vec![f(0, items)];
    }
    thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(ranges.len());
        let mut rest = items;
        for range in &ranges {
            let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(range.len());
            rest = tail;
            let start = range.start;
            handles.push(scope.spawn(move || f(start, chunk)));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| panic::resume_unwind(payload))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_partition_the_domain() {
        for workers in 1..6usize {
            for len in 0..20usize {
                let ranges = chunk_ranges(workers, len);
                assert!(!ranges.is_empty());
                assert!(ranges.len() <= workers.max(1));
                assert_eq!(ranges.first().unwrap().start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].end, pair[1].start, "chunks must be contiguous");
                }
                // Near-equal sizes: max and min differ by at most one.
                if len > 0 {
                    let sizes: Vec<usize> = ranges.iter().map(Range::len).collect();
                    let max = *sizes.iter().max().unwrap();
                    let min = *sizes.iter().min().unwrap();
                    assert!(max - min <= 1, "workers={workers} len={len}: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn resolve_threads_keeps_explicit_counts_and_expands_zero() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn fan_out_returns_results_in_worker_order() {
        for workers in 1..5usize {
            let results = fan_out(workers, 10, |range| range.collect::<Vec<_>>());
            let flat: Vec<usize> = results.into_iter().flatten().collect();
            assert_eq!(flat, (0..10).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn fan_out_mut_gives_disjoint_chunks_with_global_offsets() {
        for workers in 1..5usize {
            let mut items = vec![0usize; 11];
            let starts = fan_out_mut(workers, &mut items, |start, chunk| {
                for (off, item) in chunk.iter_mut().enumerate() {
                    *item = start + off;
                }
                start
            });
            assert_eq!(items, (0..11).collect::<Vec<_>>(), "workers={workers}");
            let mut sorted = starts.clone();
            sorted.sort_unstable();
            assert_eq!(starts, sorted, "results must arrive in worker order");
        }
    }

    #[test]
    fn empty_input_runs_one_empty_chunk() {
        assert_eq!(fan_out(4, 0, |range| range.len()), vec![0]);
        let mut items: Vec<u8> = Vec::new();
        assert_eq!(fan_out_mut(4, &mut items, |_, chunk| chunk.len()), vec![0]);
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            fan_out(3, 9, |range| {
                if range.contains(&5) {
                    panic!("worker bug");
                }
                range.len()
            })
        });
        assert!(result.is_err(), "a worker panic must not be swallowed");
    }
}
