//! Linear-program builder.

use crate::LpError;
use serde::{Deserialize, Serialize};

/// Sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintSense {
    /// `aᵀx ≤ b`
    Le,
    /// `aᵀx ≥ b`
    Ge,
    /// `aᵀx = b`
    Eq,
}

/// A single sparse linear constraint `aᵀx {≤,≥,=} b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse coefficients as `(variable index, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Constraint sense.
    pub sense: ConstraintSense,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Evaluate `aᵀx` for a given point.
    pub fn lhs_value(&self, x: &[f64]) -> f64 {
        self.coeffs.iter().map(|&(j, a)| a * x[j]).sum()
    }

    /// Signed violation of the constraint at `x` (0 when satisfied).
    ///
    /// For `≤` constraints this is `max(0, aᵀx − b)`, for `≥` it is
    /// `max(0, b − aᵀx)`, for `=` it is `|aᵀx − b|`.
    pub fn violation(&self, x: &[f64]) -> f64 {
        let lhs = self.lhs_value(x);
        match self.sense {
            ConstraintSense::Le => (lhs - self.rhs).max(0.0),
            ConstraintSense::Ge => (self.rhs - lhs).max(0.0),
            ConstraintSense::Eq => (lhs - self.rhs).abs(),
        }
    }
}

/// A linear program in the form
///
/// ```text
/// minimize    cᵀ x
/// subject to  aᵢᵀ x  {≤, ≥, =}  bᵢ     for every constraint i
///             x ≥ 0
/// ```
///
/// All variables are non-negative, which is exactly the form of the obfuscation
/// LPs in the paper (probabilities are non-negative); general bounds can be
/// expressed with explicit constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpProblem {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Create a problem with `num_vars` non-negative variables and a zero objective.
    pub fn new(num_vars: usize) -> Self {
        Self {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of constraints of each sense `(le, ge, eq)`.
    pub fn constraint_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for c in &self.constraints {
            match c.sense {
                ConstraintSense::Le => counts.0 += 1,
                ConstraintSense::Ge => counts.1 += 1,
                ConstraintSense::Eq => counts.2 += 1,
            }
        }
        counts
    }

    /// Total number of nonzero coefficients across all constraints — the
    /// figure that drives the per-iteration Newton *assembly* cost of the
    /// interior-point solvers (the factorization cost is driven by the block
    /// sizes instead).
    pub fn nonzeros(&self) -> usize {
        self.constraints.iter().map(|c| c.coeffs.len()).sum()
    }

    /// Set the objective coefficient of one variable.
    pub fn set_objective(&mut self, var: usize, coeff: f64) -> Result<(), LpError> {
        if var >= self.num_vars {
            return Err(LpError::VariableOutOfRange {
                index: var,
                num_vars: self.num_vars,
            });
        }
        if !coeff.is_finite() {
            return Err(LpError::NonFiniteCoefficient);
        }
        self.objective[var] = coeff;
        Ok(())
    }

    /// Set the full objective vector (must have exactly `num_vars` entries).
    pub fn set_objective_vector(&mut self, coeffs: Vec<f64>) -> Result<(), LpError> {
        if coeffs.len() != self.num_vars {
            return Err(LpError::VariableOutOfRange {
                index: coeffs.len(),
                num_vars: self.num_vars,
            });
        }
        if coeffs.iter().any(|c| !c.is_finite()) {
            return Err(LpError::NonFiniteCoefficient);
        }
        self.objective = coeffs;
        Ok(())
    }

    /// The objective vector `c`.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Add a sparse constraint and return its index.
    ///
    /// Duplicate variable indices within one constraint are summed.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        sense: ConstraintSense,
        rhs: f64,
    ) -> Result<usize, LpError> {
        if !rhs.is_finite() {
            return Err(LpError::NonFiniteCoefficient);
        }
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        for (j, a) in coeffs {
            if j >= self.num_vars {
                return Err(LpError::VariableOutOfRange {
                    index: j,
                    num_vars: self.num_vars,
                });
            }
            if !a.is_finite() {
                return Err(LpError::NonFiniteCoefficient);
            }
            if let Some(slot) = merged.iter_mut().find(|(jj, _)| *jj == j) {
                slot.1 += a;
            } else {
                merged.push((j, a));
            }
        }
        self.constraints.push(Constraint {
            coeffs: merged,
            sense,
            rhs,
        });
        Ok(self.constraints.len() - 1)
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Objective value `cᵀx` at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum()
    }

    /// Maximum constraint violation at `x` (also counts negativity of `x`).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let constraint_violation = self
            .constraints
            .iter()
            .map(|c| c.violation(x))
            .fold(0.0f64, f64::max);
        let negativity = x.iter().map(|v| (-v).max(0.0)).fold(0.0f64, f64::max);
        constraint_violation.max(negativity)
    }

    /// Whether a point is feasible within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.num_vars && self.max_violation(x) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_evaluate() {
        let mut p = LpProblem::new(2);
        p.set_objective(0, 1.0).unwrap();
        p.set_objective(1, 2.0).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 1.0)
            .unwrap();
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 2);
        assert_eq!(p.constraint_counts(), (1, 1, 0));
        assert_eq!(p.nonzeros(), 3);
        let x = [2.0, 1.0];
        assert!((p.objective_value(&x) - 4.0).abs() < 1e-12);
        assert!(p.is_feasible(&x, 1e-9));
    }

    #[test]
    fn violations_reported() {
        let mut p = LpProblem::new(1);
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Eq, 0.5)
            .unwrap();
        let x = [2.0];
        assert!((p.max_violation(&x) - 1.5).abs() < 1e-12);
        assert!(!p.is_feasible(&x, 1e-6));
        assert!(!p.is_feasible(&[-0.1], 1e-6), "negativity is a violation");
    }

    #[test]
    fn out_of_range_variable_rejected() {
        let mut p = LpProblem::new(2);
        assert!(matches!(
            p.set_objective(5, 1.0),
            Err(LpError::VariableOutOfRange { index: 5, .. })
        ));
        assert!(matches!(
            p.add_constraint(vec![(3, 1.0)], ConstraintSense::Le, 1.0),
            Err(LpError::VariableOutOfRange { index: 3, .. })
        ));
    }

    #[test]
    fn non_finite_rejected() {
        let mut p = LpProblem::new(1);
        assert_eq!(
            p.set_objective(0, f64::NAN),
            Err(LpError::NonFiniteCoefficient)
        );
        assert_eq!(
            p.add_constraint(vec![(0, f64::INFINITY)], ConstraintSense::Le, 1.0),
            Err(LpError::NonFiniteCoefficient)
        );
        assert_eq!(
            p.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, f64::NAN),
            Err(LpError::NonFiniteCoefficient)
        );
    }

    #[test]
    fn duplicate_indices_are_merged() {
        let mut p = LpProblem::new(2);
        p.add_constraint(
            vec![(0, 1.0), (0, 2.0), (1, -1.0)],
            ConstraintSense::Eq,
            3.0,
        )
        .unwrap();
        let c = &p.constraints()[0];
        assert_eq!(c.coeffs.len(), 2);
        assert!((c.lhs_value(&[1.0, 0.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn objective_vector_length_checked() {
        let mut p = LpProblem::new(3);
        assert!(p.set_objective_vector(vec![1.0, 2.0]).is_err());
        assert!(p.set_objective_vector(vec![1.0, 2.0, 3.0]).is_ok());
        assert_eq!(p.objective(), &[1.0, 2.0, 3.0]);
    }
}
