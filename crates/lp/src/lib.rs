//! Linear-programming solvers built from scratch.
//!
//! The CORGI paper generates every obfuscation matrix by solving a linear program
//! (Eq. 8 for the non-robust baseline, Eq. 16 for the δ-prunable robust matrix)
//! with MATLAB's `linprog`.  Mature LP solvers are not available as offline Rust
//! crates, so this crate implements the optimization substrate itself:
//!
//! * [`SimplexSolver`] — a dense two-phase tableau simplex.  Exact (up to floating
//!   point), handles infeasible and unbounded problems, intended for problems with
//!   up to a few thousand tableau entries.  Used as the reference oracle in tests.
//! * [`InteriorPointSolver`] — a primal–dual path-following interior-point method
//!   with Mehrotra predictor–corrector steps.  Works on the *mixed form*
//!   `min cᵀx  s.t.  Gx ≤ h,  Ex = f,  x ≥ 0` and reduces every Newton step to a
//!   positive-definite system of size `n × n` (number of variables), so it scales
//!   to the tens of thousands of Geo-Ind constraints the paper's formulation
//!   produces without ever materializing the constraint matrix squared.
//! * [`BlockAngularSolver`] — the same interior-point engine exploiting the
//!   *block-angular* structure of the obfuscation LP: every ε-Geo-Ind inequality
//!   touches entries of a single column of the obfuscation matrix, while the
//!   row-stochasticity equalities couple the columns.  The Newton matrix is then
//!   block diagonal plus a low-rank coupling handled by a Schur complement, making
//!   a K = 49…343 location instance solvable in seconds.  (The paper lists this
//!   kind of optimization decomposition as future work, Section 5.3.)
//!
//! The [`LpProblem`] builder plus the [`LpSolver`] trait give the rest of the
//! workspace a solver-agnostic API; [`solve_auto`] picks a sensible default.

#![warn(missing_docs)]

mod dense;
mod error;
mod interior;
pub mod par;
mod problem;
mod simplex;
mod solution;

pub use dense::{DenseMatrix, DEFAULT_CHOLESKY_BLOCK, FLUSH_THRESHOLD};
pub use error::LpError;
pub use interior::{
    bench_support, BlockAngularSolver, InteriorPointOptions, InteriorPointSolver, KernelStrategy,
};
pub use problem::{Constraint, ConstraintSense, LpProblem};
pub use simplex::SimplexSolver;
pub use solution::{LpSolution, SolveStatus, WarmStart};

/// Common interface implemented by every solver in this crate.
pub trait LpSolver {
    /// Solve the given minimization problem.
    fn solve(&self, problem: &LpProblem) -> Result<LpSolution, LpError>;

    /// Short human-readable name of the solver (used in experiment reports).
    fn name(&self) -> &'static str;
}

/// Solve a problem with a sensible default solver.
///
/// Small problems (tableau below ~250 000 entries) are solved exactly with the
/// simplex method; larger ones fall back to the interior-point method.
pub fn solve_auto(problem: &LpProblem) -> Result<LpSolution, LpError> {
    let rows = problem.num_constraints();
    let cols = problem.num_vars();
    let tableau_entries = (rows + 2) * (rows + cols + 2);
    if tableau_entries <= 250_000 {
        SimplexSolver::new().solve(problem)
    } else {
        InteriorPointSolver::new(InteriorPointOptions::default()).solve(problem)
    }
}
