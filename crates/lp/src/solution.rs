//! Solver output types.

use serde::{Deserialize, Serialize};

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// An optimal solution was found within tolerance.
    Optimal,
    /// The problem has no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The iteration limit was reached before convergence; the returned point is
    /// the best iterate found (it may be slightly infeasible).
    IterationLimit,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Outcome of the solve.
    pub status: SolveStatus,
    /// Objective value at `x` (meaningful when `status` is `Optimal` or `IterationLimit`).
    pub objective: f64,
    /// Primal solution (length = number of variables).
    pub x: Vec<f64>,
    /// Number of iterations performed (simplex pivots or interior-point steps).
    pub iterations: usize,
    /// Name of the solver that produced this solution.
    pub solver: String,
}

impl LpSolution {
    /// Whether the solve produced a usable (optimal) solution.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }

    /// Whether the returned point is worth consuming at all: optimal, or the
    /// best iterate of a solver that hit its iteration limit (callers like the
    /// obfuscation pipeline repair such points towards feasibility).
    /// [`SolveStatus::Infeasible`] and [`SolveStatus::Unbounded`] carry no
    /// meaningful `x`.
    pub fn is_usable(&self) -> bool {
        matches!(
            self.status,
            SolveStatus::Optimal | SolveStatus::IterationLimit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_flag() {
        let s = LpSolution {
            status: SolveStatus::Optimal,
            objective: 1.0,
            x: vec![1.0],
            iterations: 3,
            solver: "test".to_string(),
        };
        assert!(s.is_optimal());
        let s2 = LpSolution {
            status: SolveStatus::Infeasible,
            ..s
        };
        assert!(!s2.is_optimal());
    }

    #[test]
    fn usable_statuses() {
        let base = LpSolution {
            status: SolveStatus::Optimal,
            objective: 0.0,
            x: vec![],
            iterations: 0,
            solver: "test".to_string(),
        };
        for (status, usable) in [
            (SolveStatus::Optimal, true),
            (SolveStatus::IterationLimit, true),
            (SolveStatus::Infeasible, false),
            (SolveStatus::Unbounded, false),
        ] {
            let s = LpSolution {
                status,
                ..base.clone()
            };
            assert_eq!(s.is_usable(), usable, "{status:?}");
        }
    }
}
