//! Solver output types.

use serde::{Deserialize, Serialize};

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveStatus {
    /// An optimal solution was found within tolerance.
    Optimal,
    /// The problem has no feasible point.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
    /// The iteration limit was reached before convergence; the returned point is
    /// the best iterate found (it may be slightly infeasible).
    IterationLimit,
}

/// A converged interior-point iterate, captured from an `Optimal` solve and
/// reusable to *warm-start* the next solve of a nearby problem.
///
/// Grid-adjacent obfuscation LPs (`(privacy_level, δ)` neighbours, or the
/// successive refinement iterations of the robust Algorithm 1) differ only in
/// a few constraint coefficients; restarting the path-following from the
/// neighbour's converged point instead of the cold `x = s = 1` interior skips
/// most of the centering work.  Before use the iterate is validated (lengths,
/// finiteness, `mu > 0`) and shifted back to strict interior feasibility; an
/// unusable warm start silently degrades to the cold start, never to an error.
///
/// `y` lives in the solver's internal row-equilibrated constraint space.  The
/// equilibration is deterministic per problem, so transferring `y` between
/// near-identical problems is sound as a heuristic; the solver only uses it
/// as an initial guess.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStart {
    /// Primal iterate (length = number of variables).
    pub x: Vec<f64>,
    /// Constraint multipliers (length = number of equality rows + number of
    /// inequality rows): the equality multipliers μ first, then the
    /// inequality multipliers λ, both in the solver's row-equilibrated
    /// space.  Keeping λ is what makes the restart nearly *dual*-feasible —
    /// reconstructing λ from complementarity alone restarts with an O(1)
    /// dual residual at a near-zero barrier level, where the path-following
    /// has no room left to repair it.
    pub y: Vec<f64>,
    /// Dual slacks of the `x ≥ 0` bounds (length = number of variables).
    pub s: Vec<f64>,
    /// Complementarity gap μ at capture; the restart re-centers at roughly
    /// this barrier level (floored away from zero for numerical safety).
    pub mu: f64,
}

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LpSolution {
    /// Outcome of the solve.
    pub status: SolveStatus,
    /// Objective value at `x` (meaningful when `status` is `Optimal` or `IterationLimit`).
    pub objective: f64,
    /// Primal solution (length = number of variables).
    pub x: Vec<f64>,
    /// Number of iterations performed (simplex pivots or interior-point steps).
    pub iterations: usize,
    /// Name of the solver that produced this solution.
    pub solver: String,
    /// Converged interior-point iterate for warm-starting a nearby solve.
    /// `Some` exactly when an interior-point solver finished `Optimal`; the
    /// simplex solver never captures one.
    pub warm: Option<WarmStart>,
}

impl LpSolution {
    /// Whether the solve produced a usable (optimal) solution.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }

    /// Whether the returned point is worth consuming at all: optimal, or the
    /// best iterate of a solver that hit its iteration limit (callers like the
    /// obfuscation pipeline repair such points towards feasibility).
    /// [`SolveStatus::Infeasible`] and [`SolveStatus::Unbounded`] carry no
    /// meaningful `x`.
    pub fn is_usable(&self) -> bool {
        matches!(
            self.status,
            SolveStatus::Optimal | SolveStatus::IterationLimit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_flag() {
        let s = LpSolution {
            status: SolveStatus::Optimal,
            objective: 1.0,
            x: vec![1.0],
            iterations: 3,
            solver: "test".to_string(),
            warm: None,
        };
        assert!(s.is_optimal());
        let s2 = LpSolution {
            status: SolveStatus::Infeasible,
            ..s
        };
        assert!(!s2.is_optimal());
    }

    #[test]
    fn usable_statuses() {
        let base = LpSolution {
            status: SolveStatus::Optimal,
            objective: 0.0,
            x: vec![],
            iterations: 0,
            solver: "test".to_string(),
            warm: None,
        };
        for (status, usable) in [
            (SolveStatus::Optimal, true),
            (SolveStatus::IterationLimit, true),
            (SolveStatus::Infeasible, false),
            (SolveStatus::Unbounded, false),
        ] {
            let s = LpSolution {
                status,
                ..base.clone()
            };
            assert_eq!(s.is_usable(), usable, "{status:?}");
        }
    }
}
