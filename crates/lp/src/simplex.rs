//! Dense two-phase tableau simplex.
//!
//! This is the exact reference solver of the crate.  It converts the problem to
//! standard form (equalities with slack/surplus/artificial variables, non-negative
//! right-hand sides), runs phase 1 to find a basic feasible solution and phase 2 to
//! optimize the true objective.  Pivoting uses Dantzig's rule with an automatic
//! switch to Bland's rule when the objective stalls, which guarantees termination.

use crate::{ConstraintSense, LpError, LpProblem, LpSolution, LpSolver, SolveStatus};

/// Dense two-phase tableau simplex solver.
#[derive(Debug, Clone)]
pub struct SimplexSolver {
    /// Numerical tolerance used for optimality and feasibility tests.
    pub tolerance: f64,
    /// Hard cap on the number of pivots across both phases.
    pub max_iterations: usize,
}

impl Default for SimplexSolver {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            max_iterations: 50_000,
        }
    }
}

impl SimplexSolver {
    /// Create a solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a solver with a custom pivot limit.
    pub fn with_max_iterations(max_iterations: usize) -> Self {
        Self {
            max_iterations,
            ..Self::default()
        }
    }
}

struct Tableau {
    /// (m+1) × (n_total+1); last row is the objective (reduced costs, negated
    /// objective value in the corner), last column the right-hand side.
    data: Vec<Vec<f64>>,
    basis: Vec<usize>,
    m: usize,
    n_total: usize,
}

impl Tableau {
    fn rhs(&self, row: usize) -> f64 {
        self.data[row][self.n_total]
    }

    fn objective_value(&self) -> f64 {
        -self.data[self.m][self.n_total]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.data[row][col];
        debug_assert!(pivot_val.abs() > 0.0);
        let inv = 1.0 / pivot_val;
        for v in self.data[row].iter_mut() {
            *v *= inv;
        }
        for r in 0..=self.m {
            if r == row {
                continue;
            }
            let factor = self.data[r][col];
            if factor == 0.0 {
                continue;
            }
            // data[r] -= factor * data[row]
            let (head, tail) = if r < row {
                let (a, b) = self.data.split_at_mut(row);
                (&mut a[r], &b[0])
            } else {
                let (a, b) = self.data.split_at_mut(r);
                (&mut b[0], &a[row])
            };
            for (hv, tv) in head.iter_mut().zip(tail.iter()) {
                *hv -= factor * tv;
            }
        }
        self.basis[row] = col;
    }
}

enum PhaseOutcome {
    Optimal,
    Unbounded,
    IterationLimit,
}

fn run_phase(
    tab: &mut Tableau,
    tol: f64,
    iter_budget: &mut usize,
    allowed_cols: usize,
) -> PhaseOutcome {
    let mut stall_count = 0usize;
    let mut last_objective = tab.objective_value();
    loop {
        if *iter_budget == 0 {
            return PhaseOutcome::IterationLimit;
        }
        // Entering variable.
        let use_bland = stall_count > 200;
        let mut entering: Option<usize> = None;
        if use_bland {
            for j in 0..allowed_cols {
                if tab.data[tab.m][j] < -tol {
                    entering = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -tol;
            for j in 0..allowed_cols {
                let rc = tab.data[tab.m][j];
                if rc < best {
                    best = rc;
                    entering = Some(j);
                }
            }
        }
        let Some(col) = entering else {
            return PhaseOutcome::Optimal;
        };
        // Ratio test.  Among rows achieving (essentially) the minimum ratio, pick
        // the one with the largest pivot element: on highly degenerate problems
        // (like the obfuscation LPs, where most ratios are exactly zero) this
        // keeps the tableau numerically stable.  Under Bland's column rule the
        // tie-break switches to the smallest basis index, which is what makes the
        // anti-cycling guarantee hold.
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        let mut best_pivot = 0.0f64;
        for r in 0..tab.m {
            let a = tab.data[r][col];
            if a > tol {
                let ratio = tab.rhs(r).max(0.0) / a;
                let strictly_better = ratio < best_ratio - 1e-10;
                let tied = (ratio - best_ratio).abs() <= 1e-10;
                let better = strictly_better
                    || (tied
                        && if use_bland {
                            leaving.is_some_and(|lr| tab.basis[r] < tab.basis[lr])
                        } else {
                            a > best_pivot
                        });
                if better {
                    best_ratio = ratio;
                    best_pivot = a;
                    leaving = Some(r);
                }
            }
        }
        let Some(row) = leaving else {
            return PhaseOutcome::Unbounded;
        };
        tab.pivot(row, col);
        *iter_budget -= 1;
        let obj = tab.objective_value();
        if (last_objective - obj).abs() <= tol {
            stall_count += 1;
        } else {
            stall_count = 0;
            last_objective = obj;
        }
    }
}

impl LpSolver for SimplexSolver {
    fn solve(&self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        let n = problem.num_vars();
        if n == 0 {
            return Err(LpError::EmptyProblem);
        }
        let m = problem.num_constraints();
        let tol = self.tolerance;

        // Count extra columns: one slack per Le, one surplus per Ge, one artificial
        // per Ge/Eq row (and per Le row whose RHS is negative after normalization —
        // handled by flipping the row so RHS ≥ 0 first).
        //
        // Normalize: make every RHS non-negative by multiplying rows by -1 (which
        // flips Le ↔ Ge).
        struct Row {
            coeffs: Vec<(usize, f64)>,
            sense: ConstraintSense,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(m);
        for c in problem.constraints() {
            // Row equilibration: scale each row to unit max-absolute coefficient so
            // that constraints with very large coefficients (e.g. the e^{ε·d}
            // Geo-Ind bounds) do not dominate the pivoting tolerances.
            let max_abs = c.coeffs.iter().fold(0.0f64, |mx, (_, a)| mx.max(a.abs()));
            let scale = if max_abs > 0.0 { 1.0 / max_abs } else { 1.0 };
            let mut coeffs: Vec<(usize, f64)> =
                c.coeffs.iter().map(|&(j, a)| (j, a * scale)).collect();
            let mut sense = c.sense;
            let mut rhs = c.rhs * scale;
            if rhs < 0.0 {
                for (_, a) in coeffs.iter_mut() {
                    *a = -*a;
                }
                rhs = -rhs;
                sense = match sense {
                    ConstraintSense::Le => ConstraintSense::Ge,
                    ConstraintSense::Ge => ConstraintSense::Le,
                    ConstraintSense::Eq => ConstraintSense::Eq,
                };
            }
            rows.push(Row { coeffs, sense, rhs });
        }

        let num_slack = rows
            .iter()
            .filter(|r| matches!(r.sense, ConstraintSense::Le | ConstraintSense::Ge))
            .count();
        let num_artificial = rows
            .iter()
            .filter(|r| matches!(r.sense, ConstraintSense::Ge | ConstraintSense::Eq))
            .count();
        let n_structural = n;
        let n_with_slack = n_structural + num_slack;
        let n_total = n_with_slack + num_artificial;

        let mut data = vec![vec![0.0; n_total + 1]; m + 1];
        let mut basis = vec![usize::MAX; m];
        let mut slack_idx = n_structural;
        let mut art_idx = n_with_slack;
        for (i, row) in rows.iter().enumerate() {
            for &(j, a) in &row.coeffs {
                data[i][j] = a;
            }
            data[i][n_total] = row.rhs;
            match row.sense {
                ConstraintSense::Le => {
                    data[i][slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                ConstraintSense::Ge => {
                    data[i][slack_idx] = -1.0;
                    slack_idx += 1;
                    data[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
                ConstraintSense::Eq => {
                    data[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    art_idx += 1;
                }
            }
        }

        let mut tab = Tableau {
            data,
            basis,
            m,
            n_total,
        };
        let mut iter_budget = self.max_iterations;
        let mut total_iterations = 0usize;

        // ---- Phase 1: minimize the sum of artificial variables. ----
        if num_artificial > 0 {
            // Objective row: sum of the rows whose basis is an artificial, negated
            // so that reduced costs of the artificial basis are zero.
            for j in 0..=n_total {
                let mut v = 0.0;
                for i in 0..m {
                    if tab.basis[i] >= n_with_slack {
                        v += tab.data[i][j];
                    }
                }
                tab.data[m][j] = -v;
            }
            // Artificial columns themselves should have zero reduced cost initially.
            for a in n_with_slack..n_total {
                tab.data[m][a] = 0.0;
            }
            let before = iter_budget;
            let outcome = run_phase(&mut tab, tol, &mut iter_budget, n_with_slack);
            total_iterations += before - iter_budget;
            match outcome {
                PhaseOutcome::IterationLimit => {
                    return Ok(LpSolution {
                        status: SolveStatus::IterationLimit,
                        objective: f64::NAN,
                        x: vec![0.0; n],
                        iterations: total_iterations,
                        solver: self.name().to_string(),
                        warm: None,
                    });
                }
                PhaseOutcome::Unbounded => {
                    // Phase-1 objective is bounded below by 0; this cannot happen
                    // except through numerical trouble.
                    return Err(LpError::NumericalFailure(
                        "phase-1 reported unbounded".to_string(),
                    ));
                }
                PhaseOutcome::Optimal => {}
            }
            let phase1_value = -tab.objective_value();
            if phase1_value.abs() > 1e-6 {
                return Ok(LpSolution {
                    status: SolveStatus::Infeasible,
                    objective: f64::NAN,
                    x: vec![0.0; n],
                    iterations: total_iterations,
                    solver: self.name().to_string(),
                    warm: None,
                });
            }
            // Drive any artificial variables that remain basic (at zero level) out
            // of the basis when possible.
            for i in 0..m {
                if tab.basis[i] >= n_with_slack {
                    if let Some(col) = (0..n_with_slack).find(|&j| tab.data[i][j].abs() > 1e-8) {
                        tab.pivot(i, col);
                    }
                }
            }
        }

        // ---- Phase 2: original objective. ----
        for j in 0..=n_total {
            tab.data[m][j] = 0.0;
        }
        for (j, &c) in problem.objective().iter().enumerate() {
            tab.data[m][j] = c;
        }
        // Price out the basic variables so reduced costs of the basis are zero.
        for i in 0..m {
            let b = tab.basis[i];
            let cost = tab.data[m][b];
            if cost != 0.0 {
                for j in 0..=n_total {
                    tab.data[m][j] -= cost * tab.data[i][j];
                }
            }
        }
        let before = iter_budget;
        let outcome = run_phase(&mut tab, tol, &mut iter_budget, n_with_slack);
        total_iterations += before - iter_budget;

        let mut status = match outcome {
            PhaseOutcome::Optimal => SolveStatus::Optimal,
            PhaseOutcome::Unbounded => SolveStatus::Unbounded,
            PhaseOutcome::IterationLimit => SolveStatus::IterationLimit,
        };

        let mut x = vec![0.0; n];
        for i in 0..m {
            if tab.basis[i] < n {
                x[tab.basis[i]] = tab.rhs(i).max(0.0);
            }
        }
        // Guard against numerical drift in the dense tableau: never report a point
        // that violates the original constraints as "optimal".
        if status == SolveStatus::Optimal {
            let scale = 1.0
                + problem
                    .constraints()
                    .iter()
                    .map(|c| c.rhs.abs())
                    .fold(0.0f64, f64::max);
            if problem.max_violation(&x) > 1e-6 * scale {
                status = SolveStatus::IterationLimit;
            }
        }
        let objective = problem.objective_value(&x);
        Ok(LpSolution {
            status,
            objective,
            x,
            iterations: total_iterations,
            solver: self.name().to_string(),
            warm: None,
        })
    }

    fn name(&self) -> &'static str {
        "simplex"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(p: &LpProblem) -> LpSolution {
        SimplexSolver::new().solve(p).unwrap()
    }

    #[test]
    fn simple_maximization_as_minimization() {
        // max 3x + 5y  s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  (classic Dantzig example)
        // optimum x=2, y=6, objective 36.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![-3.0, -5.0]).unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        p.add_constraint(vec![(1, 2.0)], ConstraintSense::Le, 12.0)
            .unwrap();
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintSense::Le, 18.0)
            .unwrap();
        let s = solve(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(
            (s.objective + 36.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 2.0).abs() < 1e-6);
        assert!((s.x[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y  s.t. x + y = 10, x ≥ 3  ⇒ x can grow to 10 (y=0): obj = 10?
        // check: objective x + 2y with x+y=10 ⇒ obj = 10 + y, minimized at y=0 ⇒ 10.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![1.0, 2.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 10.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 3.0)
            .unwrap();
        let s = solve(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.x[0] - 10.0).abs() < 1e-6);
        assert!(s.x[1].abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        // x ≥ 5 and x ≤ 2 cannot both hold.
        let mut p = LpProblem::new(1);
        p.set_objective(0, 1.0).unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 5.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 2.0)
            .unwrap();
        let s = solve(&p);
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x with x ≥ 1: unbounded below.
        let mut p = LpProblem::new(1);
        p.set_objective(0, -1.0).unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 1.0)
            .unwrap();
        let s = solve(&p);
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_handled() {
        // -x ≤ -2  ⇔  x ≥ 2; minimize x ⇒ 2.
        let mut p = LpProblem::new(1);
        p.set_objective(0, 1.0).unwrap();
        p.add_constraint(vec![(0, -1.0)], ConstraintSense::Le, -2.0)
            .unwrap();
        let s = solve(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Several redundant constraints through the same vertex.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![-1.0, -1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        p.add_constraint(vec![(0, 2.0), (1, 2.0)], ConstraintSense::Le, 2.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        p.add_constraint(vec![(1, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        let s = solve(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective + 1.0).abs() < 1e-6);
    }

    #[test]
    fn transportation_problem() {
        // 2 sources (supply 3, 4) × 2 sinks (demand 2, 5), costs [[1, 3], [2, 1]].
        // Optimal: x00=2, x01=1, x11=4 ⇒ cost 2 + 3 + 4 = 9.
        let mut p = LpProblem::new(4); // x00 x01 x10 x11
        p.set_objective_vector(vec![1.0, 3.0, 2.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 3.0)
            .unwrap();
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], ConstraintSense::Eq, 4.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, 2.0)
            .unwrap();
        p.add_constraint(vec![(1, 1.0), (3, 1.0)], ConstraintSense::Eq, 5.0)
            .unwrap();
        let s = solve(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(
            (s.objective - 9.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn solution_is_feasible_for_mixed_senses() {
        let mut p = LpProblem::new(3);
        p.set_objective_vector(vec![2.0, 1.0, 3.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintSense::Eq, 6.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintSense::Ge, 1.0)
            .unwrap();
        p.add_constraint(vec![(2, 1.0)], ConstraintSense::Le, 2.0)
            .unwrap();
        let s = solve(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(p.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn empty_problem_rejected() {
        let p = LpProblem::new(0);
        assert!(matches!(
            SimplexSolver::new().solve(&p),
            Err(LpError::EmptyProblem)
        ));
    }

    #[test]
    fn unconstrained_min_at_zero() {
        // With only x ≥ 0 and positive costs, the optimum is the origin.
        let mut p = LpProblem::new(3);
        p.set_objective_vector(vec![1.0, 2.0, 3.0]).unwrap();
        let s = solve(&p);
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(s.objective.abs() < 1e-9);
    }
}
