//! Error types for the LP solvers.

use std::fmt;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// A constraint or objective referenced a variable index ≥ the number of variables.
    VariableOutOfRange {
        /// Offending variable index.
        index: usize,
        /// Number of variables in the problem.
        num_vars: usize,
    },
    /// A coefficient, bound, or right-hand side was NaN or infinite.
    NonFiniteCoefficient,
    /// The problem has no variables or no constraints where the solver requires them.
    EmptyProblem,
    /// The block partition handed to the block-angular solver is invalid.
    InvalidBlockStructure(String),
    /// An inequality constraint spans more than one block (block-angular solver only).
    ConstraintSpansBlocks {
        /// Index of the offending constraint.
        constraint: usize,
    },
    /// A numerical factorization failed (matrix not positive definite / singular).
    NumericalFailure(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::VariableOutOfRange { index, num_vars } => {
                write!(
                    f,
                    "variable index {index} out of range (problem has {num_vars} variables)"
                )
            }
            LpError::NonFiniteCoefficient => write!(f, "coefficient is NaN or infinite"),
            LpError::EmptyProblem => write!(f, "problem has no variables"),
            LpError::InvalidBlockStructure(msg) => write!(f, "invalid block structure: {msg}"),
            LpError::ConstraintSpansBlocks { constraint } => {
                write!(
                    f,
                    "inequality constraint {constraint} spans multiple blocks"
                )
            }
            LpError::NumericalFailure(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}
