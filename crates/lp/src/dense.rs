//! Dense matrix kernels used by the interior-point solvers.
//!
//! Only the operations the solvers need are implemented: symmetric rank updates,
//! Cholesky factorization with diagonal regularization, and triangular solves.
//! Matrices are stored row-major in a flat `Vec<f64>`.

use crate::LpError;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from nested rows (all rows must have equal length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Multiply by a vector: `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(x.iter()).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Add `alpha · v vᵀ` restricted to the index set `idx`: for all pairs
    /// `(a, b)` of positions in `idx`, `self[idx[a], idx[b]] += alpha · v[a] · v[b]`.
    ///
    /// This is the kernel that accumulates `Gᵀ D G` from sparse constraint rows.
    pub fn add_scaled_outer_sparse(&mut self, idx: &[usize], v: &[f64], alpha: f64) {
        debug_assert_eq!(idx.len(), v.len());
        for (a, &ia) in idx.iter().enumerate() {
            let va = alpha * v[a];
            let row_start = ia * self.cols;
            for (b, &ib) in idx.iter().enumerate() {
                self.data[row_start + ib] += va * v[b];
            }
        }
    }

    /// Add `value` to the diagonal entry `i`.
    pub fn add_diagonal(&mut self, i: usize, value: f64) {
        let c = self.cols;
        self.data[i * c + i] += value;
    }

    /// In-place Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix; the lower triangle of `self` is overwritten with `L`.
    ///
    /// A small diagonal regularization `reg` is added on the fly whenever a pivot
    /// falls below `reg` to keep the factorization stable on nearly singular
    /// systems (common in the late interior-point iterations).
    pub fn cholesky_in_place(&mut self, reg: f64) -> Result<(), LpError> {
        assert_eq!(self.rows, self.cols, "Cholesky needs a square matrix");
        let n = self.rows;
        for j in 0..n {
            // Diagonal element.
            let mut d = self[(j, j)];
            for k in 0..j {
                let l = self[(j, k)];
                d -= l * l;
            }
            if d.is_nan() {
                return Err(LpError::NumericalFailure(format!(
                    "NaN pivot at column {j}"
                )));
            }
            if d < reg || !d.is_finite() {
                d = reg.max(1e-300);
            }
            let d = d.sqrt();
            self[(j, j)] = d;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut v = self[(i, j)];
                // v -= dot(L[i, :j], L[j, :j])
                let (ri, rj) = (i * self.cols, j * self.cols);
                for k in 0..j {
                    v -= self.data[ri + k] * self.data[rj + k];
                }
                self[(i, j)] = v / d;
            }
        }
        Ok(())
    }

    /// Solve `L Lᵀ x = b` where `self` holds the Cholesky factor `L` in its lower
    /// triangle (as produced by [`DenseMatrix::cholesky_in_place`]).
    pub fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        let mut y = b.to_vec();
        // Forward solve L y = b.
        for i in 0..n {
            let ri = i * self.cols;
            let mut v = y[i];
            for k in 0..i {
                v -= self.data[ri + k] * y[k];
            }
            y[i] = v / self.data[ri + i];
        }
        // Back solve Lᵀ x = y.
        for i in (0..n).rev() {
            let mut v = y[i];
            for k in (i + 1)..n {
                v -= self.data[k * self.cols + i] * y[k];
            }
            y[i] = v / self.data[i * self.cols + i];
        }
        y
    }

    /// Solve for multiple right-hand sides given as columns of `rhs`
    /// (`rhs` has `self.rows()` rows); returns the solution matrix.
    pub fn cholesky_solve_matrix(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(rhs.rows, self.rows);
        let mut out = DenseMatrix::zeros(rhs.rows, rhs.cols);
        let mut col = vec![0.0; rhs.rows];
        for j in 0..rhs.cols {
            for i in 0..rhs.rows {
                col[i] = rhs[(i, j)];
            }
            let sol = self.cholesky_solve(&col);
            for i in 0..rhs.rows {
                out[(i, j)] = sol[i];
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solve_is_identity() {
        let mut eye = DenseMatrix::identity(4);
        eye.cholesky_in_place(1e-12).unwrap();
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = eye.cholesky_solve(&b);
        for (xi, bi) in x.iter().zip(b.iter()) {
            assert!((xi - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn known_spd_system() {
        // A = [[4, 2], [2, 3]], b = [6, 5]  ⇒  x = [1, 1]
        let mut a = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        a.cholesky_in_place(1e-14).unwrap();
        let x = a.cholesky_solve(&[6.0, 5.0]);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, -1.0, 4.0]]);
        let y = a.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![6.0, 3.0]);
    }

    #[test]
    fn sparse_outer_update_accumulates() {
        let mut m = DenseMatrix::zeros(4, 4);
        m.add_scaled_outer_sparse(&[1, 3], &[2.0, -1.0], 0.5);
        assert!((m[(1, 1)] - 2.0).abs() < 1e-12);
        assert!((m[(1, 3)] + 1.0).abs() < 1e-12);
        assert!((m[(3, 1)] + 1.0).abs() < 1e-12);
        assert!((m[(3, 3)] - 0.5).abs() < 1e-12);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn multi_rhs_solve() {
        let mut a = DenseMatrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 8.0]]);
        a.cholesky_in_place(1e-14).unwrap();
        let rhs = DenseMatrix::from_rows(&[vec![2.0, 4.0], vec![8.0, 16.0]]);
        let x = a.cholesky_solve_matrix(&rhs);
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(1, 1)] - 2.0).abs() < 1e-12);
    }

    proptest! {
        /// Cholesky solve inverts A·x for randomly generated SPD matrices A = BᵀB + I.
        #[test]
        fn prop_cholesky_solves_spd(seed_vals in proptest::collection::vec(-2.0f64..2.0, 9),
                                    x_true in proptest::collection::vec(-5.0f64..5.0, 3)) {
            // Build A = BᵀB + I (3×3) from the seed values.
            let b = DenseMatrix::from_rows(&[
                seed_vals[0..3].to_vec(),
                seed_vals[3..6].to_vec(),
                seed_vals[6..9].to_vec(),
            ]);
            let mut a = DenseMatrix::identity(3);
            for i in 0..3 {
                for j in 0..3 {
                    let mut v = 0.0;
                    for k in 0..3 {
                        v += b[(k, i)] * b[(k, j)];
                    }
                    a[(i, j)] += v;
                }
            }
            let rhs = a.mul_vec(&x_true);
            let mut f = a.clone();
            f.cholesky_in_place(1e-12).unwrap();
            let x = f.cholesky_solve(&rhs);
            for i in 0..3 {
                prop_assert!((x[i] - x_true[i]).abs() < 1e-6);
            }
        }
    }
}
