//! Dense matrix kernels used by the interior-point solvers.
//!
//! Only the operations the solvers need are implemented: symmetric rank updates,
//! Cholesky factorization with diagonal regularization, and triangular solves.
//! Matrices are stored row-major in a flat `Vec<f64>`.
//!
//! # Kernel layout and the blocked factorization
//!
//! The hot path of the block-angular interior-point solver factorizes hundreds
//! of symmetric positive-definite Newton blocks per iteration (343 matrices of
//! size 343 × 343 in the paper's full-tree regime).  Two kernel families are
//! provided:
//!
//! * **Blocked (default).**  [`DenseMatrix::cholesky_in_place`] runs a
//!   *right-looking blocked* factorization
//!   ([`DenseMatrix::cholesky_in_place_blocked`]): the matrix is processed in
//!   column panels of width `nb` (default [`DEFAULT_CHOLESKY_BLOCK`]).  For each
//!   panel the diagonal block is factorized in place, the rows below it are
//!   solved against the panel's transposed triangle, and the trailing submatrix
//!   receives a symmetric rank-`nb` update.  Because the storage is row-major,
//!   every inner loop is a dot product or AXPY over *contiguous* row slices of
//!   length ≤ `nb`, which keeps the panel resident in L1 and lets the compiler
//!   vectorize; the dot kernel additionally uses four independent accumulators
//!   to break the floating-point add dependency chain.  Only the lower triangle
//!   is read and written, so callers may assemble just the lower triangle (see
//!   [`DenseMatrix::add_scaled_outer_sparse_lower`]).
//! * **Reference.**  [`DenseMatrix::cholesky_in_place_unblocked`] is the
//!   textbook left-looking scalar kernel the crate shipped with originally.  It
//!   is kept verbatim as the measurable baseline for the perf-gated benchmarks
//!   and as the oracle for the blocked-vs-scalar property tests.
//!
//! Both variants perform the same regularized factorization; they differ only
//! in the order floating-point operations are accumulated, so their factors
//! agree to machine-precision rounding (asserted by property tests below).
//!
//! Multi-right-hand-side solves ([`DenseMatrix::cholesky_solve_matrix_into`])
//! are *fused*: the forward and backward substitutions sweep all RHS columns at
//! once with contiguous row AXPYs instead of extracting one column at a time,
//! and solve in place — no per-column allocation
//! ([`DenseMatrix::cholesky_solve_matrix_per_column`] preserves the allocating
//! reference for the benchmark that proves the win).

use crate::LpError;
use serde::{Deserialize, Serialize};

/// Default column-panel width of the blocked Cholesky factorization.
///
/// 64 columns × 8 bytes = 512 bytes per row panel: a handful of cache lines,
/// small enough that the panel rows of both operands of the trailing update
/// stay L1-resident, large enough to amortize the loop overhead.  Tunable per
/// solve via `InteriorPointOptions::cholesky_block_size`.
pub const DEFAULT_CHOLESKY_BLOCK: usize = 64;

/// Dot product with four independent accumulators.
///
/// Sequential summation chains every add through the previous one and caps the
/// kernel at one FLOP per add-latency; four-way accumulation exposes
/// instruction-level parallelism (and is the reason blocked and unblocked
/// factors differ by rounding only, not bitwise).
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        s0 += ca[0] * cb[0];
        s1 += ca[1] * cb[1];
        s2 += ca[2] * cb[2];
        s3 += ca[3] * cb[3];
    }
    let tail: f64 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| x * y)
        .sum();
    (s0 + s1) + (s2 + s3) + tail
}

/// `y += alpha · x` over contiguous slices.
#[inline]
fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

/// Magnitudes below this are flushed to exact zero by the blocked kernels.
///
/// `FLUSH_THRESHOLD² ≈ 1e-308` is the smallest normal `f64`: any product of
/// two flushed-scale values underflows to (sub)normal noise ≥ 300 orders of
/// magnitude below the solver's regularization floor, so zeroing them cannot
/// move a result.  What it does do is keep *subnormal* values out of the inner
/// loops — triangular factors of strongly diagonally dominant Newton matrices
/// decay geometrically below the band, and once entries underflow into the
/// subnormal range every multiply takes the CPU's microcoded assist path
/// (~100 cycles instead of ~4), which measurably dominated the K = 343
/// full-tree solve before flushing.
pub const FLUSH_THRESHOLD: f64 = 1e-154;

/// `v`, or exact zero when `|v|` is below [`FLUSH_THRESHOLD`].
#[inline]
fn flush_subnormalish(v: f64) -> f64 {
    if v.abs() < FLUSH_THRESHOLD {
        0.0
    } else {
        v
    }
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from nested rows (all rows must have equal length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a contiguous slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Overwrite every entry with `value` (used to recycle workspace matrices
    /// across interior-point iterations instead of reallocating).
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Element-wise `self += other` (shapes must match).
    ///
    /// This is the reduction step of the parallel Schur accumulation: each
    /// worker sums its blocks' `V_b V_bᵀ` contributions into a private partial
    /// matrix, and the partials are folded into the shared Schur matrix in
    /// worker order at the join barrier.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        assert_eq!(self.cols, other.cols, "column count mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiply by a vector: `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            out[i] = dot(self.row(i), x);
        }
        out
    }

    /// Add `alpha · v vᵀ` restricted to the index set `idx`: for all pairs
    /// `(a, b)` of positions in `idx`, `self[idx[a], idx[b]] += alpha · v[a] · v[b]`.
    ///
    /// This is the kernel that accumulates `Gᵀ D G` from sparse constraint rows.
    pub fn add_scaled_outer_sparse(&mut self, idx: &[usize], v: &[f64], alpha: f64) {
        debug_assert_eq!(idx.len(), v.len());
        for (a, &ia) in idx.iter().enumerate() {
            let va = alpha * v[a];
            let row_start = ia * self.cols;
            for (b, &ib) in idx.iter().enumerate() {
                self.data[row_start + ib] += va * v[b];
            }
        }
    }

    /// Lower-triangle-only variant of [`DenseMatrix::add_scaled_outer_sparse`]:
    /// entries with row < column are left untouched.
    ///
    /// The Cholesky kernels read and write only the lower triangle, so a matrix
    /// destined for factorization can skip the mirrored upper-triangle stores.
    pub fn add_scaled_outer_sparse_lower(&mut self, idx: &[usize], v: &[f64], alpha: f64) {
        debug_assert_eq!(idx.len(), v.len());
        for (a, &ia) in idx.iter().enumerate() {
            let va = alpha * v[a];
            let row_start = ia * self.cols;
            for (b, &ib) in idx.iter().enumerate() {
                if ib <= ia {
                    self.data[row_start + ib] += va * v[b];
                }
            }
        }
    }

    /// Add `value` to the diagonal entry `i`.
    pub fn add_diagonal(&mut self, i: usize, value: f64) {
        let c = self.cols;
        self.data[i * c + i] += value;
    }

    /// In-place Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix; the lower triangle of `self` is overwritten with `L`.
    ///
    /// Delegates to [`DenseMatrix::cholesky_in_place_blocked`] with the default
    /// panel width [`DEFAULT_CHOLESKY_BLOCK`].  Only the lower triangle is read;
    /// the upper triangle is ignored and left untouched.
    ///
    /// A small diagonal regularization `reg` is added on the fly whenever a pivot
    /// falls below `reg` to keep the factorization stable on nearly singular
    /// systems (common in the late interior-point iterations).
    pub fn cholesky_in_place(&mut self, reg: f64) -> Result<(), LpError> {
        self.cholesky_in_place_blocked(reg, DEFAULT_CHOLESKY_BLOCK)
    }

    /// Blocked right-looking Cholesky factorization with panel width `nb`.
    ///
    /// For each column panel `[k0, k1)` (width ≤ `nb`):
    /// 1. **Panel factorization** — the diagonal block `A[k0..k1, k0..k1]` is
    ///    factorized with the scalar left-looking kernel (its trailing updates
    ///    from previous panels have already been applied).
    /// 2. **Panel solve** — rows below the panel are solved against `L11ᵀ`:
    ///    `L21 = A21 · L11⁻ᵀ` by forward substitution across the panel columns.
    /// 3. **Trailing update** — the lower triangle of the trailing submatrix
    ///    receives the symmetric rank-`nb` update `A22 −= L21 · L21ᵀ`, computed
    ///    as contiguous length-`nb` row dot products.
    ///
    /// With `nb ≥ n` this degenerates to a single panel factorization and
    /// performs the same operations as the unblocked reference kernel.
    /// Regularization semantics match [`DenseMatrix::cholesky_in_place_unblocked`].
    ///
    /// Strictly-below-diagonal factor entries with magnitude under
    /// [`FLUSH_THRESHOLD`] are flushed to exact zero (see the constant's docs:
    /// numerically inert, keeps subnormals out of every downstream solve).
    /// Diagonal entries are never flushed.
    pub fn cholesky_in_place_blocked(&mut self, reg: f64, nb: usize) -> Result<(), LpError> {
        assert_eq!(self.rows, self.cols, "Cholesky needs a square matrix");
        let n = self.rows;
        let nb = nb.max(1);
        let mut panel_row = vec![0.0; nb];
        let mut k0 = 0;
        while k0 < n {
            let k1 = (k0 + nb).min(n);
            // 1. Factor the diagonal block in place (left-looking within panel).
            for j in k0..k1 {
                let rj = j * self.cols;
                let mut d = self.data[rj + j]
                    - dot(&self.data[rj + k0..rj + j], &self.data[rj + k0..rj + j]);
                if d.is_nan() {
                    return Err(LpError::NumericalFailure(format!(
                        "NaN pivot at column {j}"
                    )));
                }
                if d < reg || !d.is_finite() {
                    d = reg.max(1e-300);
                }
                let d = d.sqrt();
                self.data[rj + j] = d;
                for i in (j + 1)..k1 {
                    let ri = i * self.cols;
                    let s = dot(&self.data[ri + k0..ri + j], &self.data[rj + k0..rj + j]);
                    self.data[ri + j] = flush_subnormalish((self.data[ri + j] - s) / d);
                }
            }
            // 2. Solve the rows below the panel: L21 · L11ᵀ = A21.
            for i in k1..n {
                let ri = i * self.cols;
                for j in k0..k1 {
                    let rj = j * self.cols;
                    let s = dot(&self.data[ri + k0..ri + j], &self.data[rj + k0..rj + j]);
                    self.data[ri + j] =
                        flush_subnormalish((self.data[ri + j] - s) / self.data[rj + j]);
                }
            }
            // 3. Symmetric rank-nb trailing update of the lower triangle.
            let width = k1 - k0;
            for i in k1..n {
                let ri = i * self.cols;
                panel_row[..width].copy_from_slice(&self.data[ri + k0..ri + k1]);
                let (before, current) = self.data.split_at_mut(ri);
                for j in k1..i {
                    let rj = j * self.cols;
                    current[j] -= dot(&panel_row[..width], &before[rj + k0..rj + k1]);
                }
                current[i] -= dot(&panel_row[..width], &panel_row[..width]);
            }
            k0 = k1;
        }
        Ok(())
    }

    /// Reference scalar Cholesky factorization (textbook left-looking kernel).
    ///
    /// This is the exact pre-blocking implementation, kept as the baseline for
    /// the perf-gated `cholesky_factorize` benchmarks and as the oracle of the
    /// blocked-vs-scalar property tests.  Semantics (regularization, NaN
    /// handling, lower-triangle-only access) are identical to the blocked
    /// kernel; results agree to floating-point rounding.
    pub fn cholesky_in_place_unblocked(&mut self, reg: f64) -> Result<(), LpError> {
        assert_eq!(self.rows, self.cols, "Cholesky needs a square matrix");
        let n = self.rows;
        for j in 0..n {
            // Diagonal element.
            let mut d = self[(j, j)];
            for k in 0..j {
                let l = self[(j, k)];
                d -= l * l;
            }
            if d.is_nan() {
                return Err(LpError::NumericalFailure(format!(
                    "NaN pivot at column {j}"
                )));
            }
            if d < reg || !d.is_finite() {
                d = reg.max(1e-300);
            }
            let d = d.sqrt();
            self[(j, j)] = d;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut v = self[(i, j)];
                // v -= dot(L[i, :j], L[j, :j])
                let (ri, rj) = (i * self.cols, j * self.cols);
                for k in 0..j {
                    v -= self.data[ri + k] * self.data[rj + k];
                }
                self[(i, j)] = v / d;
            }
        }
        Ok(())
    }

    /// Solve `L Lᵀ x = b` where `self` holds the Cholesky factor `L` in its lower
    /// triangle (as produced by [`DenseMatrix::cholesky_in_place`]).
    pub fn cholesky_solve(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        self.cholesky_solve_into(&mut y);
        y
    }

    /// In-place variant of [`DenseMatrix::cholesky_solve`]: `b` is overwritten
    /// with the solution, no allocation.
    pub fn cholesky_solve_into(&self, b: &mut [f64]) {
        self.forward_solve_from(b, 0);
        self.backward_solve(b);
    }

    /// Forward-substitute `L y = b` in place, assuming `b[..start] == 0`.
    ///
    /// The leading zeros let the substitution begin at row `start`: for a
    /// right-hand side whose first nonzero sits at row `i₀`, the solution is
    /// also zero above `i₀`, so rows `0..i₀` are skipped entirely.  The sparse
    /// Schur assembly exploits this: the coupling columns `E_bᵀ` of the
    /// block-angular LP have a single nonzero each, which on average halves
    /// (and for the obfuscation LP's staircase pattern, cuts to a third) the
    /// triangular-solve work.
    pub fn forward_solve_from(&self, b: &mut [f64], start: usize) {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        debug_assert!(b[..start].iter().all(|&v| v == 0.0));
        let n = self.rows;
        for i in start..n {
            let ri = i * self.cols;
            let s = dot(&self.data[ri + start..ri + i], &b[start..i]);
            b[i] = (b[i] - s) / self.data[ri + i];
        }
    }

    /// Back-substitute `Lᵀ x = y` in place.
    pub fn backward_solve(&self, b: &mut [f64]) {
        assert_eq!(self.rows, self.cols);
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        for i in (0..n).rev() {
            let mut v = b[i];
            for k in (i + 1)..n {
                v -= self.data[k * self.cols + i] * b[k];
            }
            b[i] = v / self.data[i * self.cols + i];
        }
    }

    /// Solve for multiple right-hand sides given as columns of `rhs`
    /// (`rhs` has `self.rows()` rows); returns the solution matrix.
    ///
    /// One allocation for the output; the substitutions themselves run fused
    /// and in place (see [`DenseMatrix::cholesky_solve_matrix_into`]).
    pub fn cholesky_solve_matrix(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let mut out = rhs.clone();
        self.cholesky_solve_matrix_into(&mut out);
        out
    }

    /// Fused in-place multi-RHS solve: overwrite `rhs` with `(L Lᵀ)⁻¹ rhs`.
    ///
    /// Both substitutions sweep *all* columns of a row at once: the forward
    /// pass applies `row_i −= L[i,k] · row_k` as contiguous AXPYs (the target
    /// row stays L1-resident across the inner loop), the backward pass the
    /// transposed analogue.  Compared to the per-column reference
    /// ([`DenseMatrix::cholesky_solve_matrix_per_column`]) this removes one
    /// `Vec` allocation *per RHS column* and turns strided column gathers into
    /// streaming row operations.
    pub fn cholesky_solve_matrix_into(&self, rhs: &mut DenseMatrix) {
        assert_eq!(self.rows, self.cols);
        assert_eq!(rhs.rows, self.rows);
        let n = self.rows;
        let m = rhs.cols;
        // Forward: L Y = B.
        for i in 0..n {
            let ri = i * self.cols;
            let (before, current) = rhs.data.split_at_mut(i * m);
            let row_i = &mut current[..m];
            for k in 0..i {
                let l = self.data[ri + k];
                if l != 0.0 {
                    axpy(row_i, -l, &before[k * m..(k + 1) * m]);
                }
            }
            let inv = 1.0 / self.data[ri + i];
            for v in row_i.iter_mut() {
                *v *= inv;
            }
        }
        // Backward: Lᵀ X = Y.
        for i in (0..n).rev() {
            let (current, after) = rhs.data.split_at_mut((i + 1) * m);
            let row_i = &mut current[i * m..];
            for k in (i + 1)..n {
                let l = self.data[k * self.cols + i];
                if l != 0.0 {
                    axpy(row_i, -l, &after[(k - i - 1) * m..(k - i) * m]);
                }
            }
            let inv = 1.0 / self.data[i * self.cols + i];
            for v in row_i.iter_mut() {
                *v *= inv;
            }
        }
    }

    /// Reference multi-RHS solve: extract every column into a fresh `Vec`,
    /// solve it, scatter it back.
    ///
    /// Kept verbatim as the pre-fusing baseline — the `cholesky_multi_rhs`
    /// benchmark pits it against [`DenseMatrix::cholesky_solve_matrix_into`] to
    /// lock in the allocation win.  Prefer the fused kernels in new code.
    pub fn cholesky_solve_matrix_per_column(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(rhs.rows, self.rows);
        let mut out = DenseMatrix::zeros(rhs.rows, rhs.cols);
        let mut col = vec![0.0; rhs.rows];
        for j in 0..rhs.cols {
            for i in 0..rhs.rows {
                col[i] = rhs[(i, j)];
            }
            let sol = self.cholesky_solve(&col);
            for i in 0..rhs.rows {
                out[(i, j)] = sol[i];
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_assign_sums_elementwise() {
        let mut a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DenseMatrix::from_rows(&[vec![0.5, -2.0], vec![1.0, 10.0]]);
        a.add_assign(&b);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(0, 1)], 0.0);
        assert_eq!(a[(1, 0)], 4.0);
        assert_eq!(a[(1, 1)], 14.0);
    }

    /// Random SPD matrix `A = BᵀB + I` of size `n` built from `n²` seed values.
    fn random_spd(seed_vals: &[f64], n: usize) -> DenseMatrix {
        assert_eq!(seed_vals.len(), n * n);
        let mut a = DenseMatrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for k in 0..n {
                    v += seed_vals[k * n + i] * seed_vals[k * n + j];
                }
                a[(i, j)] += v;
            }
        }
        a
    }

    #[test]
    fn identity_solve_is_identity() {
        let mut eye = DenseMatrix::identity(4);
        eye.cholesky_in_place(1e-12).unwrap();
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = eye.cholesky_solve(&b);
        for (xi, bi) in x.iter().zip(b.iter()) {
            assert!((xi - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn known_spd_system() {
        // A = [[4, 2], [2, 3]], b = [6, 5]  ⇒  x = [1, 1]
        let mut a = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        a.cholesky_in_place(1e-14).unwrap();
        let x = a.cholesky_solve(&[6.0, 5.0]);
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, -1.0, 4.0]]);
        let y = a.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![6.0, 3.0]);
    }

    #[test]
    fn sparse_outer_update_accumulates() {
        let mut m = DenseMatrix::zeros(4, 4);
        m.add_scaled_outer_sparse(&[1, 3], &[2.0, -1.0], 0.5);
        assert!((m[(1, 1)] - 2.0).abs() < 1e-12);
        assert!((m[(1, 3)] + 1.0).abs() < 1e-12);
        assert!((m[(3, 1)] + 1.0).abs() < 1e-12);
        assert!((m[(3, 3)] - 0.5).abs() < 1e-12);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn lower_outer_update_skips_upper_triangle() {
        let mut full = DenseMatrix::zeros(4, 4);
        let mut lower = DenseMatrix::zeros(4, 4);
        full.add_scaled_outer_sparse(&[3, 1], &[2.0, -1.0], 0.5);
        lower.add_scaled_outer_sparse_lower(&[3, 1], &[2.0, -1.0], 0.5);
        for i in 0..4 {
            for j in 0..4 {
                if j <= i {
                    assert_eq!(lower[(i, j)], full[(i, j)], "lower entry ({i},{j})");
                } else {
                    assert_eq!(lower[(i, j)], 0.0, "upper entry ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn multi_rhs_solve() {
        let mut a = DenseMatrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 8.0]]);
        a.cholesky_in_place(1e-14).unwrap();
        let rhs = DenseMatrix::from_rows(&[vec![2.0, 4.0], vec![8.0, 16.0]]);
        let x = a.cholesky_solve_matrix(&rhs);
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((x[(1, 1)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn forward_solve_from_skips_leading_zeros() {
        let seeds: Vec<f64> = (0..25)
            .map(|i| ((i * 7 + 3) % 11) as f64 / 5.0 - 1.0)
            .collect();
        let mut l = random_spd(&seeds, 5);
        l.cholesky_in_place(1e-12).unwrap();
        // RHS with first nonzero at row 2.
        let rhs = vec![0.0, 0.0, 1.5, -0.5, 2.0];
        let mut full = rhs.clone();
        l.forward_solve_from(&mut full, 0);
        let mut skipped = rhs.clone();
        l.forward_solve_from(&mut skipped, 2);
        for (a, b) in full.iter().zip(skipped.iter()) {
            assert!((a - b).abs() < 1e-14, "{a} vs {b}");
        }
    }

    #[test]
    fn blocked_handles_tiny_panels_and_degenerate_sizes() {
        for &(n, nb) in &[
            (1usize, 1usize),
            (1, 64),
            (5, 1),
            (5, 2),
            (5, 5),
            (5, 64),
            (0, 4),
        ] {
            let seeds: Vec<f64> = (0..n * n)
                .map(|i| ((i * 13 + 1) % 17) as f64 / 8.0 - 1.0)
                .collect();
            let a = random_spd(&seeds, n);
            let mut blocked = a.clone();
            blocked.cholesky_in_place_blocked(1e-12, nb).unwrap();
            let mut reference = a.clone();
            reference.cholesky_in_place_unblocked(1e-12).unwrap();
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        (blocked[(i, j)] - reference[(i, j)]).abs() < 1e-10,
                        "n={n} nb={nb} entry ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_factorization_ignores_upper_triangle() {
        // Assemble only the lower triangle, poison the upper one: the factor and
        // solve must be unaffected.
        let seeds: Vec<f64> = (0..36)
            .map(|i| ((i * 5 + 2) % 13) as f64 / 6.0 - 1.0)
            .collect();
        let a = random_spd(&seeds, 6);
        let mut poisoned = a.clone();
        for i in 0..6 {
            for j in (i + 1)..6 {
                poisoned[(i, j)] = f64::NAN;
            }
        }
        let mut clean_f = a.clone();
        clean_f.cholesky_in_place(1e-12).unwrap();
        poisoned.cholesky_in_place(1e-12).unwrap();
        let b = vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.25];
        let x_clean = clean_f.cholesky_solve(&b);
        let x_poisoned = poisoned.cholesky_solve(&b);
        for (a, b) in x_clean.iter().zip(x_poisoned.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    proptest! {
        /// Cholesky solve inverts A·x for randomly generated SPD matrices A = BᵀB + I.
        #[test]
        fn prop_cholesky_solves_spd(seed_vals in proptest::collection::vec(-2.0f64..2.0, 9),
                                    x_true in proptest::collection::vec(-5.0f64..5.0, 3)) {
            let a = random_spd(&seed_vals, 3);
            let rhs = a.mul_vec(&x_true);
            let mut f = a.clone();
            f.cholesky_in_place(1e-12).unwrap();
            let x = f.cholesky_solve(&rhs);
            for i in 0..3 {
                prop_assert!((x[i] - x_true[i]).abs() < 1e-6);
            }
        }

        /// Blocked and unblocked Cholesky produce the same factor (up to
        /// accumulation-order rounding) on random SPD matrices, across panel
        /// widths that exercise every edge: nb = 1 (rank-1 outer product),
        /// nb < n, nb = n, and nb > n (single panel = scalar kernel).
        #[test]
        fn prop_blocked_cholesky_matches_scalar(
            seed_vals in proptest::collection::vec(-2.0f64..2.0, 49),
            nb in 1usize..10,
        ) {
            let a = random_spd(&seed_vals, 7);
            let mut blocked = a.clone();
            blocked.cholesky_in_place_blocked(1e-12, nb).unwrap();
            let mut reference = a.clone();
            reference.cholesky_in_place_unblocked(1e-12).unwrap();
            for i in 0..7 {
                for j in 0..=i {
                    let (x, y) = (blocked[(i, j)], reference[(i, j)]);
                    prop_assert!(
                        (x - y).abs() < 1e-9 * (1.0 + y.abs()),
                        "nb={} entry ({},{}): {} vs {}", nb, i, j, x, y
                    );
                }
            }
        }

        /// The fused multi-RHS solve agrees with the per-column reference
        /// bitwise: per column, both run the identical substitution sequence.
        #[test]
        fn prop_fused_multi_rhs_matches_per_column(
            seed_vals in proptest::collection::vec(-2.0f64..2.0, 16),
            rhs_vals in proptest::collection::vec(-3.0f64..3.0, 12),
        ) {
            let mut f = random_spd(&seed_vals, 4);
            f.cholesky_in_place_unblocked(1e-12).unwrap();
            let rhs = DenseMatrix::from_rows(&[
                rhs_vals[0..3].to_vec(),
                rhs_vals[3..6].to_vec(),
                rhs_vals[6..9].to_vec(),
                rhs_vals[9..12].to_vec(),
            ]);
            let fused = f.cholesky_solve_matrix(&rhs);
            let reference = f.cholesky_solve_matrix_per_column(&rhs);
            for i in 0..4 {
                for j in 0..3 {
                    prop_assert!(
                        (fused[(i, j)] - reference[(i, j)]).abs()
                            < 1e-12 * (1.0 + reference[(i, j)].abs()),
                        "entry ({},{})", i, j
                    );
                }
            }
        }
    }
}
