//! Primal–dual path-following interior-point solvers.
//!
//! The solver works on the mixed form
//!
//! ```text
//! minimize    cᵀx
//! subject to  G x ≤ h        (m_in inequality rows)
//!             E x = f        (m_eq equality rows)
//!             x ≥ 0
//! ```
//!
//! Every Newton step is reduced to a positive-definite system in the variables
//! only (size `n × n`), optionally exploiting a *block-angular* structure: when
//! every inequality row touches the variables of a single block, the Newton
//! matrix `Gᵀ·diag(λ/w)·G + diag(s/x)` is block diagonal and the equality rows
//! are handled through a small Schur complement.  The obfuscation LPs of the
//! CORGI paper have exactly this structure (Geo-Ind constraints live inside one
//! matrix column; row-stochasticity couples columns), which is what makes
//! K = 49…343 location instances tractable without an external solver.
//!
//! Steps use Mehrotra's predictor–corrector heuristic; the implementation follows
//! the standard infeasible-start formulation (see Wright, *Primal–Dual
//! Interior-Point Methods*, 1997).
//!
//! # Kernel strategies
//!
//! Two interchangeable linear-algebra backends drive the Newton systems (see
//! [`KernelStrategy`]):
//!
//! * [`KernelStrategy::Blocked`] (default) — blocked Cholesky factorization of
//!   the per-block Newton matrices plus a *structure-aware* Schur-complement
//!   assembly.  The coupling blocks `E_b` (the slice of the equality rows that
//!   touches block `b`) are stored as sparse columns, analyzed **once** per
//!   solve — the sparsity pattern is static across interior-point iterations,
//!   only the numeric values of the Newton matrix change.  Each iteration then
//!   computes `V = E_b L_b⁻ᵀ` with sparse-aware forward substitutions (leading
//!   zeros of each coupling column are skipped) and accumulates only the lower
//!   triangle of `S += V Vᵀ` with contiguous row dot products, instead of
//!   forming the dense `n_b × m_eq` product `M_b⁻¹ E_bᵀ` and a dense
//!   `m_eq² · n_b` triple loop.  All per-block factor and scratch buffers live
//!   in a workspace that is allocated once and recycled across iterations.
//! * [`KernelStrategy::Reference`] — the original scalar kernels (textbook
//!   left-looking Cholesky, per-column multi-RHS solves, dense Schur
//!   accumulation), kept verbatim so the perf-gated benchmarks can measure the
//!   speedup and the agreement tests can assert both strategies produce the
//!   same solutions.
//!
//! For the paper's K-location obfuscation LP (K² variables, K per-column
//! blocks, K row-stochasticity equalities) the reference Schur assembly alone
//! costs `K⁴` multiply-adds per iteration; the sparse path reduces it to `K³/3`
//! because every coupling column has exactly one nonzero.

use crate::{
    dense::{dot, DenseMatrix, DEFAULT_CHOLESKY_BLOCK, FLUSH_THRESHOLD},
    ConstraintSense, LpError, LpProblem, LpSolution, LpSolver, SolveStatus,
};

/// Linear-algebra backend used for the Newton systems (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStrategy {
    /// Blocked Cholesky + sparse Schur assembly with a reused workspace
    /// (default; the fast path for the K = 343 full-tree regime).
    Blocked,
    /// The pre-optimization scalar kernels, kept as the measurable baseline.
    Reference,
}

/// Tuning knobs of the interior-point solvers.
#[derive(Debug, Clone, Copy)]
pub struct InteriorPointOptions {
    /// Maximum number of interior-point iterations.
    pub max_iterations: usize,
    /// Relative tolerance on primal/dual residuals and the complementarity gap.
    pub tolerance: f64,
    /// Diagonal regularization added to keep Cholesky factorizations stable.
    pub regularization: f64,
    /// Fraction of the distance to the boundary taken by each step (0 < τ < 1).
    pub step_fraction: f64,
    /// Which linear-algebra kernels drive the Newton systems.
    pub kernels: KernelStrategy,
    /// Column-panel width of the blocked Cholesky factorization (ignored by
    /// [`KernelStrategy::Reference`]).
    pub cholesky_block_size: usize,
}

impl Default for InteriorPointOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-8,
            regularization: 1e-10,
            step_fraction: 0.995,
            kernels: KernelStrategy::Blocked,
            cholesky_block_size: DEFAULT_CHOLESKY_BLOCK,
        }
    }
}

impl InteriorPointOptions {
    /// The default options with the [`KernelStrategy::Reference`] backend —
    /// convenience for benchmarks and agreement tests.
    pub fn reference_kernels() -> Self {
        Self {
            kernels: KernelStrategy::Reference,
            ..Self::default()
        }
    }
}

/// General-purpose interior-point solver (single block).
#[derive(Debug, Clone)]
pub struct InteriorPointSolver {
    options: InteriorPointOptions,
}

impl InteriorPointSolver {
    /// Create a solver with the given options.
    pub fn new(options: InteriorPointOptions) -> Self {
        Self { options }
    }
}

impl Default for InteriorPointSolver {
    fn default() -> Self {
        Self::new(InteriorPointOptions::default())
    }
}

impl LpSolver for InteriorPointSolver {
    fn solve(&self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        let blocks = vec![(0..problem.num_vars()).collect::<Vec<_>>()];
        solve_ipm(problem, &blocks, &self.options, self.name())
    }

    fn name(&self) -> &'static str {
        "interior-point"
    }
}

/// Interior-point solver exploiting a block-angular structure.
///
/// `blocks` is a partition of the variable indices.  Every *inequality*
/// constraint must reference variables of one block only; equality constraints
/// may couple blocks freely.
#[derive(Debug, Clone)]
pub struct BlockAngularSolver {
    blocks: Vec<Vec<usize>>,
    options: InteriorPointOptions,
}

impl BlockAngularSolver {
    /// Create a solver for the given variable partition.
    pub fn new(blocks: Vec<Vec<usize>>, options: InteriorPointOptions) -> Self {
        Self { blocks, options }
    }
}

impl LpSolver for BlockAngularSolver {
    fn solve(&self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        validate_blocks(&self.blocks, problem.num_vars())?;
        solve_ipm(problem, &self.blocks, &self.options, self.name())
    }

    fn name(&self) -> &'static str {
        "block-angular-ipm"
    }
}

fn validate_blocks(blocks: &[Vec<usize>], num_vars: usize) -> Result<(), LpError> {
    let mut seen = vec![false; num_vars];
    for block in blocks {
        for &v in block {
            if v >= num_vars {
                return Err(LpError::InvalidBlockStructure(format!(
                    "variable {v} out of range"
                )));
            }
            if seen[v] {
                return Err(LpError::InvalidBlockStructure(format!(
                    "variable {v} appears in more than one block"
                )));
            }
            seen[v] = true;
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(LpError::InvalidBlockStructure(format!(
            "variable {missing} is not covered by any block"
        )));
    }
    Ok(())
}

/// Sparse row: (variable indices, coefficients).
struct SparseRow {
    idx: Vec<usize>,
    val: Vec<f64>,
}

impl SparseRow {
    fn dot(&self, x: &[f64]) -> f64 {
        self.idx
            .iter()
            .zip(self.val.iter())
            .map(|(&j, &a)| a * x[j])
            .sum()
    }

    /// y[idx] += alpha * val
    fn axpy_into(&self, alpha: f64, y: &mut [f64]) {
        for (&j, &a) in self.idx.iter().zip(self.val.iter()) {
            y[j] += alpha * a;
        }
    }
}

/// One column of the coupling matrix `E_bᵀ` of a block: the nonzeros (in
/// block-local coordinates) that one equality row contributes to the block.
///
/// Extracted once per solve — the pattern is static across interior-point
/// iterations — and consumed by the sparse Schur assembly every iteration.
struct CouplingColumn {
    /// Smallest local index with a nonzero (forward solves start here).
    first: usize,
    /// `(local index, coefficient)` nonzeros.
    entries: Vec<(usize, f64)>,
}

struct Prepared {
    n: usize,
    c: Vec<f64>,
    g: Vec<SparseRow>,
    h: Vec<f64>,
    e: Vec<SparseRow>,
    f: Vec<f64>,
    /// block id of every variable
    var_block: Vec<usize>,
    /// local index of every variable inside its block
    var_local: Vec<usize>,
    blocks: Vec<Vec<usize>>,
    /// inequality rows grouped by block
    g_by_block: Vec<Vec<usize>>,
    /// block-local variable indices of every inequality row (parallel to `g`)
    g_local: Vec<Vec<usize>>,
    /// equality rows touching each block (for the Schur assembly)
    eq_by_block: Vec<Vec<usize>>,
    /// sparse columns of `E_bᵀ` per block (parallel to `eq_by_block[b]`)
    coupling_by_block: Vec<Vec<CouplingColumn>>,
}

fn prepare(problem: &LpProblem, blocks: &[Vec<usize>]) -> Result<Prepared, LpError> {
    let n = problem.num_vars();
    if n == 0 {
        return Err(LpError::EmptyProblem);
    }
    let mut var_block = vec![usize::MAX; n];
    let mut var_local = vec![usize::MAX; n];
    for (b, block) in blocks.iter().enumerate() {
        for (local, &v) in block.iter().enumerate() {
            var_block[v] = b;
            var_local[v] = local;
        }
    }

    let mut g = Vec::new();
    let mut h = Vec::new();
    let mut e = Vec::new();
    let mut f = Vec::new();
    for cons in problem.constraints() {
        let (idx, mut val): (Vec<usize>, Vec<f64>) = cons.coeffs.iter().copied().unzip();
        // Row equilibration: scale every constraint row to unit max-absolute
        // coefficient.  The feasible set is unchanged but the Newton systems stay
        // well-conditioned even when coefficients span many orders of magnitude
        // (the Geo-Ind bounds e^{ε·d} easily reach 10⁶ and beyond).
        let max_abs = val.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { 1.0 / max_abs } else { 1.0 };
        for v in val.iter_mut() {
            *v *= scale;
        }
        let rhs = cons.rhs * scale;
        match cons.sense {
            ConstraintSense::Le => {
                g.push(SparseRow { idx, val });
                h.push(rhs);
            }
            ConstraintSense::Ge => {
                let val = val.into_iter().map(|a| -a).collect();
                g.push(SparseRow { idx, val });
                h.push(-rhs);
            }
            ConstraintSense::Eq => {
                e.push(SparseRow { idx, val });
                f.push(rhs);
            }
        }
    }

    // Group inequality rows by block and reject rows spanning blocks; cache the
    // block-local index of every row coefficient (static across iterations).
    let mut g_by_block = vec![Vec::new(); blocks.len()];
    let mut g_local = Vec::with_capacity(g.len());
    for (ri, row) in g.iter().enumerate() {
        let mut row_block: Option<usize> = None;
        for &j in &row.idx {
            let b = var_block[j];
            match row_block {
                None => row_block = Some(b),
                Some(existing) if existing != b => {
                    return Err(LpError::ConstraintSpansBlocks { constraint: ri });
                }
                _ => {}
            }
        }
        // Rows with no variables are vacuous; attach to block 0.
        g_by_block[row_block.unwrap_or(0)].push(ri);
        g_local.push(row.idx.iter().map(|&v| var_local[v]).collect());
    }

    // Equality rows touching each block, plus the sparse coupling columns.
    let mut eq_by_block = vec![Vec::new(); blocks.len()];
    for (ri, row) in e.iter().enumerate() {
        let mut touched = vec![false; blocks.len()];
        for &j in &row.idx {
            touched[var_block[j]] = true;
        }
        for (b, t) in touched.iter().enumerate() {
            if *t {
                eq_by_block[b].push(ri);
            }
        }
    }
    let coupling_by_block: Vec<Vec<CouplingColumn>> = eq_by_block
        .iter()
        .enumerate()
        .map(|(b, active)| {
            active
                .iter()
                .map(|&eq_row| {
                    let row = &e[eq_row];
                    let entries: Vec<(usize, f64)> = row
                        .idx
                        .iter()
                        .zip(row.val.iter())
                        .filter(|(&v, _)| var_block[v] == b)
                        .map(|(&v, &a)| (var_local[v], a))
                        .collect();
                    let first = entries.iter().map(|&(l, _)| l).min().unwrap_or(0);
                    CouplingColumn { first, entries }
                })
                .collect()
        })
        .collect();

    Ok(Prepared {
        n,
        c: problem.objective().to_vec(),
        g,
        h,
        e,
        f,
        var_block,
        var_local,
        blocks: blocks.to_vec(),
        g_by_block,
        g_local,
        eq_by_block,
        coupling_by_block,
    })
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Barrier weight of an inequality row, capped to keep the Cholesky stable.
///
/// Near convergence the slack of an active constraint underflows and λ/w would
/// overflow to infinity, which would poison the factorization.  The cap acts as
/// an implicit proximal regularization and does not change the limit.
#[inline]
fn barrier_weight(lam: f64, w: f64) -> f64 {
    (lam / w).min(1e10)
}

// ---------------------------------------------------------------------------
// Blocked kernels: workspace, factorization, Newton solve.
// ---------------------------------------------------------------------------

/// Per-solve scratch of the blocked kernel strategy.
///
/// Allocated once before the first iteration and recycled: the factor storage,
/// the Schur matrix and the `V = E_b L_b⁻ᵀ` scratch panel are zeroed and
/// refilled each iteration instead of reallocated (the reference path, kept
/// for comparison, reallocates ~2·n² doubles per iteration).
struct BlockedWorkspace {
    /// Cholesky factors of the per-block Newton matrices (persistent storage).
    factors: Vec<DenseMatrix>,
    /// Lower triangle of the Schur complement `E M⁻¹ Eᵀ` (+ regularization).
    schur: DenseMatrix,
    /// Whether equality rows exist (i.e. `schur` is meaningful).
    has_eq: bool,
    /// Flat scratch for the rows of `V = E_b L_b⁻ᵀ`, stride `v_stride`.
    v_data: Vec<f64>,
    v_stride: usize,
    /// First nonzero of each currently held `V` row.
    v_first: Vec<usize>,
    /// One-past-the-last nonzero of each currently held `V` row (the rows of a
    /// forward solve against a diagonally dominant factor decay geometrically,
    /// so after flushing they are effectively banded; the Schur accumulation
    /// skips row pairs whose bands do not overlap).
    v_last: Vec<usize>,
}

impl BlockedWorkspace {
    fn new(prep: &Prepared) -> Self {
        let m_eq = prep.e.len();
        let max_nb = prep.blocks.iter().map(Vec::len).max().unwrap_or(0);
        let max_active = prep.eq_by_block.iter().map(Vec::len).max().unwrap_or(0);
        Self {
            factors: prep
                .blocks
                .iter()
                .map(|b| DenseMatrix::zeros(b.len(), b.len()))
                .collect(),
            schur: DenseMatrix::zeros(m_eq, m_eq),
            has_eq: m_eq > 0,
            v_data: vec![0.0; max_active * max_nb],
            v_stride: max_nb,
            v_first: vec![0; max_active],
            v_last: vec![0; max_active],
        }
    }
}

/// Assemble and factorize the block-diagonal Newton matrix and the Schur
/// complement with the blocked kernels, reusing the workspace buffers.
fn factor_blocked(
    prep: &Prepared,
    opts: &InteriorPointOptions,
    ws: &mut BlockedWorkspace,
    x: &[f64],
    s: &[f64],
    w: &[f64],
    lam: &[f64],
) -> Result<(), LpError> {
    // Per-block Newton matrices M_b = G_bᵀ diag(λ/w) G_b + diag(s/x), assembled
    // lower-triangle-only (the factorization never reads the upper triangle).
    for (b, block) in prep.blocks.iter().enumerate() {
        let mb = &mut ws.factors[b];
        mb.fill(0.0);
        for &ri in &prep.g_by_block[b] {
            let row = &prep.g[ri];
            mb.add_scaled_outer_sparse_lower(
                &prep.g_local[ri],
                &row.val,
                barrier_weight(lam[ri], w[ri]),
            );
        }
        for (local, &v) in block.iter().enumerate() {
            mb.add_diagonal(local, (s[v] / x[v]).min(1e10));
        }
        mb.cholesky_in_place_blocked(opts.regularization, opts.cholesky_block_size)?;
    }

    if !ws.has_eq {
        return Ok(());
    }

    // Sparse Schur assembly: S = Σ_b E_b M_b⁻¹ E_bᵀ = Σ_b V_b V_bᵀ with
    // V_b = E_b L_b⁻ᵀ.  Each row of V_b solves L_b v = (coupling column), a
    // forward substitution started at the column's first nonzero; the rank-k
    // update touches only the lower triangle of S with contiguous row dots
    // trimmed to the overlap of the two rows' nonzero suffixes.
    let m_eq = prep.e.len();
    ws.schur.fill(0.0);
    for (b, block) in prep.blocks.iter().enumerate() {
        let nb = block.len();
        let active = &prep.eq_by_block[b];
        let coupling = &prep.coupling_by_block[b];
        let factor = &ws.factors[b];
        for (a_pos, col) in coupling.iter().enumerate() {
            let row = &mut ws.v_data[a_pos * ws.v_stride..a_pos * ws.v_stride + nb];
            row.fill(0.0);
            for &(local, coeff) in &col.entries {
                row[local] = coeff;
            }
            factor.forward_solve_from(row, col.first);
            // Flush the geometric tail of the solve and record the effective
            // band: entries below the flush threshold square to exactly zero
            // in the V Vᵀ products, and leaving them in would (a) pay the
            // subnormal microcode penalty per multiply and (b) force every
            // row pair into a full-length dot product.
            let mut last = nb;
            while last > col.first && row[last - 1].abs() < FLUSH_THRESHOLD {
                last -= 1;
            }
            for v in row[col.first..last].iter_mut() {
                if v.abs() < FLUSH_THRESHOLD {
                    *v = 0.0;
                }
            }
            row[last..nb].fill(0.0);
            ws.v_first[a_pos] = col.first;
            ws.v_last[a_pos] = last;
        }
        for (a_pos, &eq_a) in active.iter().enumerate() {
            for (b_pos, &eq_b) in active.iter().enumerate().take(a_pos + 1) {
                // `active` is ascending, so eq_a ≥ eq_b: lower triangle only.
                let start = ws.v_first[a_pos].max(ws.v_first[b_pos]);
                let end = ws.v_last[a_pos].min(ws.v_last[b_pos]);
                if start >= end {
                    continue; // bands do not overlap: the dot is exactly zero
                }
                let va = &ws.v_data[a_pos * ws.v_stride + start..a_pos * ws.v_stride + end];
                let vb = &ws.v_data[b_pos * ws.v_stride + start..b_pos * ws.v_stride + end];
                ws.schur[(eq_a, eq_b)] += dot(va, vb);
            }
        }
    }
    for i in 0..m_eq {
        ws.schur.add_diagonal(i, opts.regularization.max(1e-12));
    }
    ws.schur
        .cholesky_in_place_blocked(opts.regularization, opts.cholesky_block_size)
}

/// Newton solve against the blocked factorization.
///
/// Returns `(dx, dmu)`.
fn newton_solve_blocked(
    prep: &Prepared,
    ws: &BlockedWorkspace,
    rhs1: &[f64],
    r_p2: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let m_eq = prep.e.len();
    // t = M⁻¹ rhs1, blockwise, in-place solves on a reused local buffer.
    let mut t = vec![0.0; prep.n];
    let max_nb = ws.v_stride;
    let mut local = vec![0.0; max_nb];
    for (b, block) in prep.blocks.iter().enumerate() {
        let nb = block.len();
        for (l, &v) in block.iter().enumerate() {
            local[l] = rhs1[v];
        }
        ws.factors[b].cholesky_solve_into(&mut local[..nb]);
        for (l, &v) in block.iter().enumerate() {
            t[v] = local[l];
        }
    }
    if m_eq == 0 {
        return (t, Vec::new());
    }
    // rhs_schur = E t − r_p2
    let mut rhs_schur = vec![0.0; m_eq];
    for (ri, row) in prep.e.iter().enumerate() {
        rhs_schur[ri] = row.dot(&t) - r_p2[ri];
    }
    let dmu = ws.schur.cholesky_solve(&rhs_schur);
    // dx = M⁻¹ (rhs1 − Eᵀ dmu), blockwise: scatter E_bᵀ dmu through the sparse
    // coupling columns, one solve per block — the dense `M_b⁻¹ E_bᵀ` product of
    // the reference path is never materialized.
    let mut dx = vec![0.0; prep.n];
    for (b, block) in prep.blocks.iter().enumerate() {
        let nb = block.len();
        let active = &prep.eq_by_block[b];
        let coupling = &prep.coupling_by_block[b];
        let u = &mut local[..nb];
        u.fill(0.0);
        for (a_pos, col) in coupling.iter().enumerate() {
            let d = dmu[active[a_pos]];
            if d != 0.0 {
                for &(l, coeff) in &col.entries {
                    u[l] += coeff * d;
                }
            }
        }
        ws.factors[b].cholesky_solve_into(u);
        for (l, &v) in block.iter().enumerate() {
            dx[v] = t[v] - u[l];
        }
    }
    (dx, dmu)
}

// ---------------------------------------------------------------------------
// Reference kernels (pre-optimization), kept for benchmarks and agreement.
// ---------------------------------------------------------------------------

/// Factorization state of the reference path: per-block factors, the dense
/// Schur factor, and the materialized `M_b⁻¹ E_bᵀ` panels.
struct ReferenceFactors {
    block_factors: Vec<DenseMatrix>,
    schur_factor: Option<DenseMatrix>,
    block_ez: Vec<DenseMatrix>,
}

/// Assemble and factorize with the original scalar kernels (fresh allocations
/// every iteration, dense Schur accumulation) — the measurable baseline.
fn factor_reference(
    prep: &Prepared,
    opts: &InteriorPointOptions,
    x: &[f64],
    s: &[f64],
    w: &[f64],
    lam: &[f64],
) -> Result<ReferenceFactors, LpError> {
    let m_eq = prep.e.len();
    let mut block_factors = Vec::with_capacity(prep.blocks.len());
    for (b, block) in prep.blocks.iter().enumerate() {
        let nb = block.len();
        let mut mb = DenseMatrix::zeros(nb, nb);
        for &ri in &prep.g_by_block[b] {
            let row = &prep.g[ri];
            let local_idx: Vec<usize> = row.idx.iter().map(|&v| prep.var_local[v]).collect();
            mb.add_scaled_outer_sparse(&local_idx, &row.val, barrier_weight(lam[ri], w[ri]));
        }
        for (local, &v) in block.iter().enumerate() {
            mb.add_diagonal(local, (s[v] / x[v]).min(1e10));
        }
        mb.cholesky_in_place_unblocked(opts.regularization)?;
        block_factors.push(mb);
    }

    // Precompute M_b⁻¹ E_bᵀ and the Schur complement S = E M⁻¹ Eᵀ (+ reg I).
    let mut block_ez = Vec::with_capacity(prep.blocks.len());
    let mut schur_factor = None;
    if m_eq > 0 {
        let mut schur = DenseMatrix::zeros(m_eq, m_eq);
        for (b, block) in prep.blocks.iter().enumerate() {
            let nb = block.len();
            let active = &prep.eq_by_block[b];
            let mut ebt = DenseMatrix::zeros(nb, active.len());
            for (a_pos, &eq_row) in active.iter().enumerate() {
                let row = &prep.e[eq_row];
                for (&v, &a) in row.idx.iter().zip(row.val.iter()) {
                    if prep.var_block[v] == b {
                        ebt[(prep.var_local[v], a_pos)] = a;
                    }
                }
            }
            let z = block_factors[b].cholesky_solve_matrix_per_column(&ebt); // n_b × |active|
                                                                             // schur[active, active] += E_b · z  (E_b = ebtᵀ)
            for (a_pos, &eq_a) in active.iter().enumerate() {
                for (b_pos, &eq_b) in active.iter().enumerate() {
                    let mut v = 0.0;
                    for local in 0..nb {
                        v += ebt[(local, a_pos)] * z[(local, b_pos)];
                    }
                    schur[(eq_a, eq_b)] += v;
                }
            }
            block_ez.push(z);
        }
        for i in 0..m_eq {
            schur.add_diagonal(i, opts.regularization.max(1e-12));
        }
        schur.cholesky_in_place_unblocked(opts.regularization)?;
        schur_factor = Some(schur);
    } else {
        for block in &prep.blocks {
            block_ez.push(DenseMatrix::zeros(block.len(), 0));
        }
    }
    Ok(ReferenceFactors {
        block_factors,
        schur_factor,
        block_ez,
    })
}

/// Newton solve against the reference factorization.
///
/// Returns `(dx, dmu)`.
fn newton_solve_reference(
    prep: &Prepared,
    factors: &ReferenceFactors,
    rhs1: &[f64],
    r_p2: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let m_eq = prep.e.len();
    // t = M⁻¹ rhs1, blockwise.
    let mut t = vec![0.0; prep.n];
    for (b, block) in prep.blocks.iter().enumerate() {
        let local_rhs: Vec<f64> = block.iter().map(|&v| rhs1[v]).collect();
        let local_sol = factors.block_factors[b].cholesky_solve(&local_rhs);
        for (local, &v) in block.iter().enumerate() {
            t[v] = local_sol[local];
        }
    }
    if m_eq == 0 {
        return (t, Vec::new());
    }
    // rhs_schur = E t − r_p2
    let mut rhs_schur = vec![0.0; m_eq];
    for (ri, row) in prep.e.iter().enumerate() {
        rhs_schur[ri] = row.dot(&t) - r_p2[ri];
    }
    let dmu = factors
        .schur_factor
        .as_ref()
        .expect("Schur factor exists when equality rows are present")
        .cholesky_solve(&rhs_schur);
    // dx = M⁻¹ (rhs1 − Eᵀ dmu), blockwise, reusing the precomputed M_b⁻¹ E_bᵀ.
    let mut dx = vec![0.0; prep.n];
    for (b, block) in prep.blocks.iter().enumerate() {
        let active = &prep.eq_by_block[b];
        let ez = &factors.block_ez[b]; // n_b × |active|: M_b⁻¹ E_bᵀ
        for (local, &v) in block.iter().enumerate() {
            let mut correction = 0.0;
            for (a_pos, &eq_row) in active.iter().enumerate() {
                correction += ez[(local, a_pos)] * dmu[eq_row];
            }
            dx[v] = t[v] - correction;
        }
    }
    (dx, dmu)
}

/// Factorization of one iteration's Newton matrix, under either kernel strategy.
enum Factorization<'a> {
    Blocked(&'a BlockedWorkspace),
    Reference(ReferenceFactors),
}

impl Factorization<'_> {
    fn newton_solve(&self, prep: &Prepared, rhs1: &[f64], r_p2: &[f64]) -> (Vec<f64>, Vec<f64>) {
        match self {
            Factorization::Blocked(ws) => newton_solve_blocked(prep, ws, rhs1, r_p2),
            Factorization::Reference(factors) => newton_solve_reference(prep, factors, rhs1, r_p2),
        }
    }
}

fn solve_ipm(
    problem: &LpProblem,
    blocks: &[Vec<usize>],
    opts: &InteriorPointOptions,
    solver_name: &'static str,
) -> Result<LpSolution, LpError> {
    let prep = prepare(problem, blocks)?;
    let n = prep.n;
    let m_in = prep.g.len();
    let m_eq = prep.e.len();

    // Primal and dual iterates, all strictly positive where required.
    let mut x = vec![1.0; n];
    let mut w = vec![1.0; m_in];
    let mut lam = vec![1.0; m_in];
    let mut s = vec![1.0; n];
    let mut mu_eq = vec![0.0; m_eq];

    let scale = 1.0
        + inf_norm(&prep.c)
            .max(inf_norm(&prep.h))
            .max(inf_norm(&prep.f));

    let mut workspace = match opts.kernels {
        KernelStrategy::Blocked => Some(BlockedWorkspace::new(&prep)),
        KernelStrategy::Reference => None,
    };

    let mut iterations = 0usize;
    let mut status = SolveStatus::IterationLimit;
    // Track the best iterate seen so far (by a simple merit of residuals + gap);
    // if the path-following stalls or diverges later, return this point instead
    // of the last iterate.
    let mut best_x = x.clone();
    let mut best_merit = f64::INFINITY;

    for iter in 0..opts.max_iterations {
        iterations = iter + 1;

        // Residuals.
        let mut r_p1 = vec![0.0; m_in]; // h − Gx − w
        for (ri, row) in prep.g.iter().enumerate() {
            r_p1[ri] = prep.h[ri] - row.dot(&x) - w[ri];
        }
        let mut r_p2 = vec![0.0; m_eq]; // f − Ex
        for (ri, row) in prep.e.iter().enumerate() {
            r_p2[ri] = prep.f[ri] - row.dot(&x);
        }
        // resid_dual = c + Gᵀλ + Eᵀμ − s
        let mut resid_dual = prep.c.clone();
        for (ri, row) in prep.g.iter().enumerate() {
            row.axpy_into(lam[ri], &mut resid_dual);
        }
        for (ri, row) in prep.e.iter().enumerate() {
            row.axpy_into(mu_eq[ri], &mut resid_dual);
        }
        for j in 0..n {
            resid_dual[j] -= s[j];
        }

        let gap_terms = x.iter().zip(s.iter()).map(|(a, b)| a * b).sum::<f64>()
            + w.iter().zip(lam.iter()).map(|(a, b)| a * b).sum::<f64>();
        let denom = (n + m_in) as f64;
        let mu_gap = gap_terms / denom;

        let primal_err = inf_norm(&r_p1).max(inf_norm(&r_p2));
        let dual_err = inf_norm(&resid_dual);
        let merit = primal_err + dual_err + mu_gap;
        if merit.is_finite() && merit < best_merit {
            best_merit = merit;
            best_x.copy_from_slice(&x);
        }
        if primal_err <= opts.tolerance * scale
            && dual_err <= opts.tolerance * scale
            && mu_gap <= opts.tolerance * scale
        {
            status = SolveStatus::Optimal;
            break;
        }
        // Divergence guard: infeasible-start path following is not guaranteed to
        // converge on problems without a strictly feasible interior.  Stop and
        // report the iteration limit instead of looping; callers can check the
        // returned point's feasibility (or fall back to the simplex).
        if !mu_gap.is_finite() || mu_gap > 1e14 || primal_err > 1e14 || dual_err > 1e14 {
            status = SolveStatus::IterationLimit;
            break;
        }

        // Assemble and factorize the Newton system under the selected kernels.
        let factorization = match opts.kernels {
            KernelStrategy::Blocked => {
                let ws = workspace.as_mut().expect("blocked workspace exists");
                factor_blocked(&prep, opts, ws, &x, &s, &w, &lam)?;
                Factorization::Blocked(workspace.as_ref().expect("blocked workspace exists"))
            }
            KernelStrategy::Reference => {
                Factorization::Reference(factor_reference(&prep, opts, &x, &s, &w, &lam)?)
            }
        };

        // rd3 = −resid_dual
        let rd3: Vec<f64> = resid_dual.iter().map(|v| -v).collect();

        // ---- Affine (predictor) direction: σ = 0, no corrector. ----
        let build_rhs1 = |rc1: &[f64], rc2: &[f64]| -> Vec<f64> {
            let mut rhs1 = rd3.clone();
            // + Gᵀ((λ/w)·r_p1 − rc2/w)
            for (ri, row) in prep.g.iter().enumerate() {
                let u = (lam[ri] / w[ri]) * r_p1[ri] - rc2[ri] / w[ri];
                row.axpy_into(u, &mut rhs1);
            }
            // + rc1/x
            for j in 0..n {
                rhs1[j] += rc1[j] / x[j];
            }
            rhs1
        };

        let rc1_aff: Vec<f64> = x.iter().zip(s.iter()).map(|(xi, si)| -xi * si).collect();
        let rc2_aff: Vec<f64> = w.iter().zip(lam.iter()).map(|(wi, li)| -wi * li).collect();
        let rhs1_aff = build_rhs1(&rc1_aff, &rc2_aff);
        let (dx_aff, _) = factorization.newton_solve(&prep, &rhs1_aff, &r_p2);
        let mut dw_aff = vec![0.0; m_in];
        let mut dlam_aff = vec![0.0; m_in];
        for (ri, row) in prep.g.iter().enumerate() {
            dw_aff[ri] = r_p1[ri] - row.dot(&dx_aff);
            dlam_aff[ri] = (rc2_aff[ri] - lam[ri] * dw_aff[ri]) / w[ri];
        }
        let mut ds_aff = vec![0.0; n];
        for j in 0..n {
            ds_aff[j] = (rc1_aff[j] - s[j] * dx_aff[j]) / x[j];
        }

        let step_to_boundary = |v: &[f64], dv: &[f64]| -> f64 {
            let mut alpha = 1.0f64;
            for (vi, di) in v.iter().zip(dv.iter()) {
                if *di < 0.0 {
                    alpha = alpha.min(-vi / di);
                }
            }
            alpha
        };
        let alpha_p_aff = step_to_boundary(&x, &dx_aff).min(step_to_boundary(&w, &dw_aff));
        let alpha_d_aff = step_to_boundary(&s, &ds_aff).min(step_to_boundary(&lam, &dlam_aff));

        // Mehrotra centering parameter.
        let mut gap_aff = 0.0;
        for j in 0..n {
            gap_aff += (x[j] + alpha_p_aff * dx_aff[j]) * (s[j] + alpha_d_aff * ds_aff[j]);
        }
        for ri in 0..m_in {
            gap_aff += (w[ri] + alpha_p_aff * dw_aff[ri]) * (lam[ri] + alpha_d_aff * dlam_aff[ri]);
        }
        let mu_aff = gap_aff / denom;
        let sigma = if mu_gap > 0.0 {
            ((mu_aff / mu_gap).powi(3)).clamp(1e-8, 1.0)
        } else {
            0.0
        };

        // ---- Corrector direction. ----
        let rc1: Vec<f64> = (0..n)
            .map(|j| sigma * mu_gap - x[j] * s[j] - dx_aff[j] * ds_aff[j])
            .collect();
        let rc2: Vec<f64> = (0..m_in)
            .map(|ri| sigma * mu_gap - w[ri] * lam[ri] - dw_aff[ri] * dlam_aff[ri])
            .collect();
        let rhs1 = build_rhs1(&rc1, &rc2);
        let (dx, dmu) = factorization.newton_solve(&prep, &rhs1, &r_p2);
        let mut dw = vec![0.0; m_in];
        let mut dlam = vec![0.0; m_in];
        for (ri, row) in prep.g.iter().enumerate() {
            dw[ri] = r_p1[ri] - row.dot(&dx);
            dlam[ri] = (rc2[ri] - lam[ri] * dw[ri]) / w[ri];
        }
        let mut ds = vec![0.0; n];
        for j in 0..n {
            ds[j] = (rc1[j] - s[j] * dx[j]) / x[j];
        }

        let alpha_p = (opts.step_fraction
            * step_to_boundary(&x, &dx).min(step_to_boundary(&w, &dw)))
        .min(1.0);
        let alpha_d = (opts.step_fraction
            * step_to_boundary(&s, &ds).min(step_to_boundary(&lam, &dlam)))
        .min(1.0);

        // A tiny positive floor keeps the barrier quantities away from exact zero
        // (which would otherwise produce 0/0 in later iterations once a variable
        // converges to an active bound and underflows).
        const FLOOR: f64 = 1e-30;
        for j in 0..n {
            x[j] = (x[j] + alpha_p * dx[j]).max(FLOOR);
            s[j] = (s[j] + alpha_d * ds[j]).max(FLOOR);
        }
        for ri in 0..m_in {
            w[ri] = (w[ri] + alpha_p * dw[ri]).max(FLOOR);
            lam[ri] = (lam[ri] + alpha_d * dlam[ri]).max(FLOOR);
        }
        for (ri, d) in dmu.iter().enumerate() {
            mu_eq[ri] += alpha_d * d;
        }
        if x.iter().any(|v| !v.is_finite()) {
            // Numerical breakdown: stop and fall back to the best iterate.
            status = SolveStatus::IterationLimit;
            break;
        }
    }

    let x = if status == SolveStatus::Optimal {
        x
    } else {
        best_x
    };
    let objective = problem.objective_value(&x);
    Ok(LpSolution {
        status,
        objective,
        x,
        iterations,
        solver: solver_name.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimplexSolver;

    fn ipm() -> InteriorPointSolver {
        InteriorPointSolver::default()
    }

    #[test]
    fn matches_simplex_on_small_inequality_problem() {
        // max 3x + 5y (as min of the negation) from the simplex tests.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![-3.0, -5.0]).unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        p.add_constraint(vec![(1, 2.0)], ConstraintSense::Le, 12.0)
            .unwrap();
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintSense::Le, 18.0)
            .unwrap();
        let s = ipm().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(
            (s.objective + 36.0).abs() < 1e-5,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 2.0).abs() < 1e-4);
        assert!((s.x[1] - 6.0).abs() < 1e-4);
    }

    #[test]
    fn handles_equality_constraints() {
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![1.0, 2.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 10.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 3.0)
            .unwrap();
        let s = ipm().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-5);
        assert!(p.is_feasible(&s.x, 1e-5));
    }

    #[test]
    fn transportation_problem_matches_simplex() {
        let mut p = LpProblem::new(4);
        p.set_objective_vector(vec![1.0, 3.0, 2.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 3.0)
            .unwrap();
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], ConstraintSense::Eq, 4.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, 2.0)
            .unwrap();
        p.add_constraint(vec![(1, 1.0), (3, 1.0)], ConstraintSense::Eq, 5.0)
            .unwrap();
        let ipm_sol = ipm().solve(&p).unwrap();
        let spx_sol = SimplexSolver::new().solve(&p).unwrap();
        assert_eq!(ipm_sol.status, SolveStatus::Optimal);
        assert!((ipm_sol.objective - spx_sol.objective).abs() < 1e-5);
        assert!(p.is_feasible(&ipm_sol.x, 1e-5));
    }

    #[test]
    fn block_solver_matches_general_solver() {
        // Two independent 2-variable blocks coupled by one equality.
        // min x0 + 2x1 + 3x2 + x3
        //  s.t. x0 + x1 ≤ 4        (block 0)
        //       x2 + 2x3 ≤ 6       (block 1)
        //       x0 + x2 = 3        (coupling)
        //       x1 + x3 ≥ 1 … as −x1 − x3 ≤ −1 spans blocks, so keep it equality-free:
        //       use x1 = 1 instead (equality, couples nothing extra).
        let build = || {
            let mut p = LpProblem::new(4);
            p.set_objective_vector(vec![1.0, 2.0, 3.0, 1.0]).unwrap();
            p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
                .unwrap();
            p.add_constraint(vec![(2, 1.0), (3, 2.0)], ConstraintSense::Le, 6.0)
                .unwrap();
            p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, 3.0)
                .unwrap();
            p.add_constraint(vec![(1, 1.0)], ConstraintSense::Eq, 1.0)
                .unwrap();
            p
        };
        let p = build();
        let general = ipm().solve(&p).unwrap();
        let block = BlockAngularSolver::new(
            vec![vec![0, 1], vec![2, 3]],
            InteriorPointOptions::default(),
        )
        .solve(&p)
        .unwrap();
        let spx = SimplexSolver::new().solve(&p).unwrap();
        assert_eq!(block.status, SolveStatus::Optimal);
        assert!((general.objective - spx.objective).abs() < 1e-5);
        assert!((block.objective - spx.objective).abs() < 1e-5);
        assert!(p.is_feasible(&block.x, 1e-5));
    }

    #[test]
    fn block_solver_rejects_spanning_inequality() {
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![1.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        let solver =
            BlockAngularSolver::new(vec![vec![0], vec![1]], InteriorPointOptions::default());
        assert!(matches!(
            solver.solve(&p),
            Err(LpError::ConstraintSpansBlocks { constraint: 0 })
        ));
    }

    #[test]
    fn block_structure_validation() {
        let mut p = LpProblem::new(3);
        p.set_objective_vector(vec![1.0; 3]).unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 1.0)
            .unwrap();
        // Missing variable 2.
        let solver =
            BlockAngularSolver::new(vec![vec![0], vec![1]], InteriorPointOptions::default());
        assert!(matches!(
            solver.solve(&p),
            Err(LpError::InvalidBlockStructure(_))
        ));
        // Duplicate variable.
        let solver = BlockAngularSolver::new(
            vec![vec![0, 1], vec![1, 2]],
            InteriorPointOptions::default(),
        );
        assert!(matches!(
            solver.solve(&p),
            Err(LpError::InvalidBlockStructure(_))
        ));
    }

    #[test]
    fn empty_problem_rejected() {
        let p = LpProblem::new(0);
        assert!(matches!(ipm().solve(&p), Err(LpError::EmptyProblem)));
    }

    #[test]
    fn pure_equality_problem() {
        // min x + y s.t. x + y = 2, x − y = 0 ⇒ x = y = 1.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![1.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 2.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintSense::Eq, 0.0)
            .unwrap();
        let s = ipm().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.x[0] - 1.0).abs() < 1e-5);
        assert!((s.x[1] - 1.0).abs() < 1e-5);
    }

    /// Build the miniature obfuscation LP used by several tests: a k×k
    /// row-stochastic matrix, per-column ratio constraints, row sums = 1.
    fn stochastic_problem(k: usize, factor: f64) -> (LpProblem, Vec<Vec<usize>>) {
        let var = |i: usize, j: usize| i * k + j;
        let mut p = LpProblem::new(k * k);
        for i in 0..k {
            for j in 0..k {
                let cost = (i as f64 - j as f64).abs();
                p.set_objective(var(i, j), cost).unwrap();
            }
        }
        for i in 0..k {
            let coeffs = (0..k).map(|j| (var(i, j), 1.0)).collect();
            p.add_constraint(coeffs, ConstraintSense::Eq, 1.0).unwrap();
        }
        for j in 0..k {
            for i in 0..k {
                for l in 0..k {
                    if i != l {
                        p.add_constraint(
                            vec![(var(i, j), 1.0), (var(l, j), -factor)],
                            ConstraintSense::Le,
                            0.0,
                        )
                        .unwrap();
                    }
                }
            }
        }
        let blocks: Vec<Vec<usize>> = (0..k)
            .map(|j| (0..k).map(|i| var(i, j)).collect())
            .collect();
        (p, blocks)
    }

    #[test]
    fn stochastic_row_problem_like_obfuscation_lp() {
        // A miniature of the paper's LP: a 3×3 row-stochastic matrix (9 variables),
        // minimize a cost, subject to per-column ratio constraints and row sums = 1.
        let (p, blocks) = stochastic_problem(3, 0.5f64.exp());
        let spx = SimplexSolver::new().solve(&p).unwrap();
        let general = ipm().solve(&p).unwrap();
        let block = BlockAngularSolver::new(blocks, InteriorPointOptions::default())
            .solve(&p)
            .unwrap();
        assert_eq!(spx.status, SolveStatus::Optimal);
        assert_eq!(general.status, SolveStatus::Optimal);
        assert_eq!(block.status, SolveStatus::Optimal);
        assert!(
            (general.objective - spx.objective).abs() < 1e-4,
            "ipm {} vs simplex {}",
            general.objective,
            spx.objective
        );
        assert!(
            (block.objective - spx.objective).abs() < 1e-4,
            "block {} vs simplex {}",
            block.objective,
            spx.objective
        );
        assert!(p.is_feasible(&block.x, 1e-5));
    }

    #[test]
    fn blocked_kernels_match_reference_kernels() {
        // Same LP, both kernel strategies: the solutions must agree far below
        // the solver tolerance (the paths differ only by floating-point
        // accumulation order inside the Cholesky).
        let (p, blocks) = stochastic_problem(5, 0.8f64.exp());
        let blocked = BlockAngularSolver::new(blocks.clone(), InteriorPointOptions::default())
            .solve(&p)
            .unwrap();
        let reference = BlockAngularSolver::new(blocks, InteriorPointOptions::reference_kernels())
            .solve(&p)
            .unwrap();
        assert_eq!(blocked.status, SolveStatus::Optimal);
        assert_eq!(reference.status, SolveStatus::Optimal);
        assert!(
            (blocked.objective - reference.objective).abs() < 1e-7,
            "blocked {} vs reference {}",
            blocked.objective,
            reference.objective
        );
        for (a, b) in blocked.x.iter().zip(reference.x.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn blocked_kernels_match_reference_on_general_single_block() {
        // The general (single-block) solver exercises the blocked kernels with
        // every equality row dense in the one block.
        let mut p = LpProblem::new(4);
        p.set_objective_vector(vec![1.0, 3.0, 2.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 3.0)
            .unwrap();
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], ConstraintSense::Eq, 4.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, 2.0)
            .unwrap();
        p.add_constraint(vec![(1, 1.0), (3, 1.0)], ConstraintSense::Eq, 5.0)
            .unwrap();
        let blocked = InteriorPointSolver::default().solve(&p).unwrap();
        let reference = InteriorPointSolver::new(InteriorPointOptions::reference_kernels())
            .solve(&p)
            .unwrap();
        assert_eq!(blocked.status, SolveStatus::Optimal);
        assert_eq!(reference.status, SolveStatus::Optimal);
        assert!((blocked.objective - reference.objective).abs() < 1e-7);
    }

    #[test]
    fn tiny_cholesky_panels_still_converge() {
        // cholesky_block_size = 1 degenerates the blocked factorization to a
        // rank-1 right-looking (outer-product) form; the solver must be
        // unaffected beyond rounding.
        let (p, blocks) = stochastic_problem(4, 0.6f64.exp());
        let opts = InteriorPointOptions {
            cholesky_block_size: 1,
            ..InteriorPointOptions::default()
        };
        let s = BlockAngularSolver::new(blocks, opts).solve(&p).unwrap();
        let spx = SimplexSolver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - spx.objective).abs() < 1e-4);
    }
}
