//! Primal–dual path-following interior-point solvers.
//!
//! The solver works on the mixed form
//!
//! ```text
//! minimize    cᵀx
//! subject to  G x ≤ h        (m_in inequality rows)
//!             E x = f        (m_eq equality rows)
//!             x ≥ 0
//! ```
//!
//! Every Newton step is reduced to a positive-definite system in the variables
//! only (size `n × n`), optionally exploiting a *block-angular* structure: when
//! every inequality row touches the variables of a single block, the Newton
//! matrix `Gᵀ·diag(λ/w)·G + diag(s/x)` is block diagonal and the equality rows
//! are handled through a small Schur complement.  The obfuscation LPs of the
//! CORGI paper have exactly this structure (Geo-Ind constraints live inside one
//! matrix column; row-stochasticity couples columns), which is what makes
//! K = 49…343 location instances tractable without an external solver.
//!
//! Steps use Mehrotra's predictor–corrector heuristic; the implementation follows
//! the standard infeasible-start formulation (see Wright, *Primal–Dual
//! Interior-Point Methods*, 1997).
//!
//! # Kernel strategies
//!
//! Two interchangeable linear-algebra backends drive the Newton systems (see
//! [`KernelStrategy`]):
//!
//! * [`KernelStrategy::Blocked`] (default) — blocked Cholesky factorization of
//!   the per-block Newton matrices plus a *structure-aware* Schur-complement
//!   assembly.  The coupling blocks `E_b` (the slice of the equality rows that
//!   touches block `b`) are stored as sparse columns, analyzed **once** per
//!   solve — the sparsity pattern is static across interior-point iterations,
//!   only the numeric values of the Newton matrix change.  Each iteration then
//!   computes `V = E_b L_b⁻ᵀ` with sparse-aware forward substitutions (leading
//!   zeros of each coupling column are skipped) and accumulates only the lower
//!   triangle of `S += V Vᵀ` with contiguous row dot products, instead of
//!   forming the dense `n_b × m_eq` product `M_b⁻¹ E_bᵀ` and a dense
//!   `m_eq² · n_b` triple loop.  All per-block factor and scratch buffers live
//!   in a workspace that is allocated once and recycled across iterations.
//! * [`KernelStrategy::Reference`] — the original scalar kernels (textbook
//!   left-looking Cholesky, per-column multi-RHS solves, dense Schur
//!   accumulation), kept verbatim so the perf-gated benchmarks can measure the
//!   speedup and the agreement tests can assert both strategies produce the
//!   same solutions.
//!
//! For the paper's K-location obfuscation LP (K² variables, K per-column
//! blocks, K row-stochasticity equalities) the reference Schur assembly alone
//! costs `K⁴` multiply-adds per iteration; the sparse path reduces it to `K³/3`
//! because every coupling column has exactly one nonzero.

use crate::{
    dense::{dot, DenseMatrix, DEFAULT_CHOLESKY_BLOCK, FLUSH_THRESHOLD},
    par, ConstraintSense, LpError, LpProblem, LpSolution, LpSolver, SolveStatus, WarmStart,
};

/// Linear-algebra backend used for the Newton systems (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStrategy {
    /// Blocked Cholesky + sparse Schur assembly with a reused workspace
    /// (default; the fast path for the K = 343 full-tree regime).
    Blocked,
    /// The pre-optimization scalar kernels, kept as the measurable baseline.
    Reference,
}

/// Tuning knobs of the interior-point solvers.
#[derive(Debug, Clone, Copy)]
pub struct InteriorPointOptions {
    /// Maximum number of interior-point iterations.
    pub max_iterations: usize,
    /// Relative tolerance on primal/dual residuals and the complementarity gap.
    pub tolerance: f64,
    /// Diagonal regularization added to keep Cholesky factorizations stable.
    pub regularization: f64,
    /// Fraction of the distance to the boundary taken by each step (0 < τ < 1).
    pub step_fraction: f64,
    /// Which linear-algebra kernels drive the Newton systems.
    pub kernels: KernelStrategy,
    /// Column-panel width of the blocked Cholesky factorization (ignored by
    /// [`KernelStrategy::Reference`]).
    pub cholesky_block_size: usize,
    /// Worker threads for the parallel block kernels: per-block Cholesky
    /// factorizations, block triangular solves and the Schur accumulation fan
    /// out over this many [`std::thread::scope`] workers per operation.
    ///
    /// `1` (the default) never spawns and preserves the serial code path
    /// bit-exactly; `0` resolves to all available cores
    /// ([`crate::par::resolve_threads`]).  Only the [`KernelStrategy::Blocked`]
    /// kernels parallelize; the reference kernels stay serial by design.
    /// Results are deterministic for a fixed thread count (per-worker partial
    /// Schur buffers are reduced in worker order), and per-block factors are
    /// bit-identical to the serial path at any thread count — only the Schur
    /// reduction order (and thus its last ~1 ulp) depends on the setting.
    pub threads: usize,
    /// Maximum Gondzio centrality correctors per iteration.
    ///
    /// The obfuscation LPs are heavily degenerate: near the optimum a handful
    /// of complementarity products sit far below the barrier average and
    /// truncate the Mehrotra step to α ≈ 0.1–0.4, so residuals shrink by only
    /// (1 − α) per iteration and the tail grinds.  Each corrector reuses the
    /// existing factorization (back/forward solves only — no refactorization)
    /// to lift the outlier products toward the central path, then keeps the
    /// enlarged direction only if the step length actually improved.  `0`
    /// disables the mechanism (plain predictor–corrector).
    pub max_centrality_correctors: usize,
}

impl Default for InteriorPointOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-8,
            regularization: 1e-10,
            step_fraction: 0.995,
            kernels: KernelStrategy::Blocked,
            cholesky_block_size: DEFAULT_CHOLESKY_BLOCK,
            threads: 1,
            max_centrality_correctors: 2,
        }
    }
}

impl InteriorPointOptions {
    /// The default options with the [`KernelStrategy::Reference`] backend —
    /// convenience for benchmarks and agreement tests.
    pub fn reference_kernels() -> Self {
        Self {
            kernels: KernelStrategy::Reference,
            ..Self::default()
        }
    }
}

/// General-purpose interior-point solver (single block).
#[derive(Debug, Clone)]
pub struct InteriorPointSolver {
    options: InteriorPointOptions,
}

impl InteriorPointSolver {
    /// Create a solver with the given options.
    pub fn new(options: InteriorPointOptions) -> Self {
        Self { options }
    }

    /// [`LpSolver::solve`], optionally seeded with a [`WarmStart`] captured
    /// from a previous `Optimal` solve of the same or a nearby problem.
    ///
    /// An unusable warm start (wrong lengths, non-finite entries, `mu ≤ 0`)
    /// is ignored and the solve falls back to the cold start.
    pub fn solve_with_warm(
        &self,
        problem: &LpProblem,
        warm: Option<&WarmStart>,
    ) -> Result<LpSolution, LpError> {
        let blocks = vec![(0..problem.num_vars()).collect::<Vec<_>>()];
        solve_ipm(problem, &blocks, &self.options, self.name(), warm)
    }
}

impl Default for InteriorPointSolver {
    fn default() -> Self {
        Self::new(InteriorPointOptions::default())
    }
}

impl LpSolver for InteriorPointSolver {
    fn solve(&self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        let blocks = vec![(0..problem.num_vars()).collect::<Vec<_>>()];
        solve_ipm(problem, &blocks, &self.options, self.name(), None)
    }

    fn name(&self) -> &'static str {
        "interior-point"
    }
}

/// Interior-point solver exploiting a block-angular structure.
///
/// `blocks` is a partition of the variable indices.  Every *inequality*
/// constraint must reference variables of one block only; equality constraints
/// may couple blocks freely.
#[derive(Debug, Clone)]
pub struct BlockAngularSolver {
    blocks: Vec<Vec<usize>>,
    options: InteriorPointOptions,
}

impl BlockAngularSolver {
    /// Create a solver for the given variable partition.
    pub fn new(blocks: Vec<Vec<usize>>, options: InteriorPointOptions) -> Self {
        Self { blocks, options }
    }

    /// [`LpSolver::solve`], optionally seeded with a [`WarmStart`] captured
    /// from a previous `Optimal` solve of the same or a nearby problem (the
    /// shape must match, i.e. same variable count and constraint-row counts;
    /// anything else degrades to the cold start).
    pub fn solve_with_warm(
        &self,
        problem: &LpProblem,
        warm: Option<&WarmStart>,
    ) -> Result<LpSolution, LpError> {
        validate_blocks(&self.blocks, problem.num_vars())?;
        solve_ipm(problem, &self.blocks, &self.options, self.name(), warm)
    }
}

impl LpSolver for BlockAngularSolver {
    fn solve(&self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        validate_blocks(&self.blocks, problem.num_vars())?;
        solve_ipm(problem, &self.blocks, &self.options, self.name(), None)
    }

    fn name(&self) -> &'static str {
        "block-angular-ipm"
    }
}

fn validate_blocks(blocks: &[Vec<usize>], num_vars: usize) -> Result<(), LpError> {
    let mut seen = vec![false; num_vars];
    for block in blocks {
        for &v in block {
            if v >= num_vars {
                return Err(LpError::InvalidBlockStructure(format!(
                    "variable {v} out of range"
                )));
            }
            if seen[v] {
                return Err(LpError::InvalidBlockStructure(format!(
                    "variable {v} appears in more than one block"
                )));
            }
            seen[v] = true;
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(LpError::InvalidBlockStructure(format!(
            "variable {missing} is not covered by any block"
        )));
    }
    Ok(())
}

/// Sparse row: (variable indices, coefficients).
struct SparseRow {
    idx: Vec<usize>,
    val: Vec<f64>,
}

impl SparseRow {
    fn dot(&self, x: &[f64]) -> f64 {
        self.idx
            .iter()
            .zip(self.val.iter())
            .map(|(&j, &a)| a * x[j])
            .sum()
    }

    /// y[idx] += alpha * val
    fn axpy_into(&self, alpha: f64, y: &mut [f64]) {
        for (&j, &a) in self.idx.iter().zip(self.val.iter()) {
            y[j] += alpha * a;
        }
    }
}

/// One column of the coupling matrix `E_bᵀ` of a block: the nonzeros (in
/// block-local coordinates) that one equality row contributes to the block.
///
/// Extracted once per solve — the pattern is static across interior-point
/// iterations — and consumed by the sparse Schur assembly every iteration.
struct CouplingColumn {
    /// Smallest local index with a nonzero (forward solves start here).
    first: usize,
    /// `(local index, coefficient)` nonzeros.
    entries: Vec<(usize, f64)>,
}

struct Prepared {
    n: usize,
    c: Vec<f64>,
    g: Vec<SparseRow>,
    h: Vec<f64>,
    e: Vec<SparseRow>,
    f: Vec<f64>,
    /// block id of every variable
    var_block: Vec<usize>,
    /// local index of every variable inside its block
    var_local: Vec<usize>,
    blocks: Vec<Vec<usize>>,
    /// inequality rows grouped by block
    g_by_block: Vec<Vec<usize>>,
    /// block-local variable indices of every inequality row (parallel to `g`)
    g_local: Vec<Vec<usize>>,
    /// equality rows touching each block (for the Schur assembly)
    eq_by_block: Vec<Vec<usize>>,
    /// sparse columns of `E_bᵀ` per block (parallel to `eq_by_block[b]`)
    coupling_by_block: Vec<Vec<CouplingColumn>>,
}

fn prepare(problem: &LpProblem, blocks: &[Vec<usize>]) -> Result<Prepared, LpError> {
    let n = problem.num_vars();
    if n == 0 {
        return Err(LpError::EmptyProblem);
    }
    let mut var_block = vec![usize::MAX; n];
    let mut var_local = vec![usize::MAX; n];
    for (b, block) in blocks.iter().enumerate() {
        for (local, &v) in block.iter().enumerate() {
            var_block[v] = b;
            var_local[v] = local;
        }
    }

    let mut g = Vec::new();
    let mut h = Vec::new();
    let mut e = Vec::new();
    let mut f = Vec::new();
    for cons in problem.constraints() {
        let (idx, mut val): (Vec<usize>, Vec<f64>) = cons.coeffs.iter().copied().unzip();
        // Row equilibration: scale every constraint row to unit max-absolute
        // coefficient.  The feasible set is unchanged but the Newton systems stay
        // well-conditioned even when coefficients span many orders of magnitude
        // (the Geo-Ind bounds e^{ε·d} easily reach 10⁶ and beyond).
        let max_abs = val.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { 1.0 / max_abs } else { 1.0 };
        for v in val.iter_mut() {
            *v *= scale;
        }
        let rhs = cons.rhs * scale;
        match cons.sense {
            ConstraintSense::Le => {
                g.push(SparseRow { idx, val });
                h.push(rhs);
            }
            ConstraintSense::Ge => {
                let val = val.into_iter().map(|a| -a).collect();
                g.push(SparseRow { idx, val });
                h.push(-rhs);
            }
            ConstraintSense::Eq => {
                e.push(SparseRow { idx, val });
                f.push(rhs);
            }
        }
    }

    // Group inequality rows by block and reject rows spanning blocks; cache the
    // block-local index of every row coefficient (static across iterations).
    let mut g_by_block = vec![Vec::new(); blocks.len()];
    let mut g_local = Vec::with_capacity(g.len());
    for (ri, row) in g.iter().enumerate() {
        let mut row_block: Option<usize> = None;
        for &j in &row.idx {
            let b = var_block[j];
            match row_block {
                None => row_block = Some(b),
                Some(existing) if existing != b => {
                    return Err(LpError::ConstraintSpansBlocks { constraint: ri });
                }
                _ => {}
            }
        }
        // Rows with no variables are vacuous; attach to block 0.
        g_by_block[row_block.unwrap_or(0)].push(ri);
        g_local.push(row.idx.iter().map(|&v| var_local[v]).collect());
    }

    // Equality rows touching each block, plus the sparse coupling columns.
    let mut eq_by_block = vec![Vec::new(); blocks.len()];
    for (ri, row) in e.iter().enumerate() {
        let mut touched = vec![false; blocks.len()];
        for &j in &row.idx {
            touched[var_block[j]] = true;
        }
        for (b, t) in touched.iter().enumerate() {
            if *t {
                eq_by_block[b].push(ri);
            }
        }
    }
    let coupling_by_block: Vec<Vec<CouplingColumn>> = eq_by_block
        .iter()
        .enumerate()
        .map(|(b, active)| {
            active
                .iter()
                .map(|&eq_row| {
                    let row = &e[eq_row];
                    let entries: Vec<(usize, f64)> = row
                        .idx
                        .iter()
                        .zip(row.val.iter())
                        .filter(|(&v, _)| var_block[v] == b)
                        .map(|(&v, &a)| (var_local[v], a))
                        .collect();
                    let first = entries.iter().map(|&(l, _)| l).min().unwrap_or(0);
                    CouplingColumn { first, entries }
                })
                .collect()
        })
        .collect();

    Ok(Prepared {
        n,
        c: problem.objective().to_vec(),
        g,
        h,
        e,
        f,
        var_block,
        var_local,
        blocks: blocks.to_vec(),
        g_by_block,
        g_local,
        eq_by_block,
        coupling_by_block,
    })
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Barrier weight of an inequality row, capped to keep the Cholesky stable.
///
/// Near convergence the slack of an active constraint underflows and λ/w would
/// overflow to infinity, which would poison the factorization.  The cap acts as
/// an implicit proximal regularization and does not change the limit.
#[inline]
fn barrier_weight(lam: f64, w: f64) -> f64 {
    (lam / w).min(1e10)
}

// ---------------------------------------------------------------------------
// Blocked kernels: workspace, factorization, Newton solve.
// ---------------------------------------------------------------------------

/// Per-solve scratch of the blocked kernel strategy.
///
/// Allocated once before the first iteration and recycled: the factor storage,
/// the Schur matrix and the `V = E_b L_b⁻ᵀ` scratch panel are zeroed and
/// refilled each iteration instead of reallocated (the reference path, kept
/// for comparison, reallocates ~2·n² doubles per iteration).
struct BlockedWorkspace {
    /// Cholesky factors of the per-block Newton matrices (persistent storage).
    factors: Vec<DenseMatrix>,
    /// Lower triangle of the Schur complement `E M⁻¹ Eᵀ` (+ regularization).
    schur: DenseMatrix,
    /// Whether equality rows exist (i.e. `schur` is meaningful).
    has_eq: bool,
    /// Flat scratch for the rows of `V = E_b L_b⁻ᵀ`, stride `v_stride`.
    v_data: Vec<f64>,
    v_stride: usize,
    /// First nonzero of each currently held `V` row.
    v_first: Vec<usize>,
    /// One-past-the-last nonzero of each currently held `V` row (the rows of a
    /// forward solve against a diagonally dominant factor decay geometrically,
    /// so after flushing they are effectively banded; the Schur accumulation
    /// skips row pairs whose bands do not overlap).
    v_last: Vec<usize>,
}

impl BlockedWorkspace {
    fn new(prep: &Prepared) -> Self {
        let m_eq = prep.e.len();
        let max_nb = prep.blocks.iter().map(Vec::len).max().unwrap_or(0);
        let max_active = prep.eq_by_block.iter().map(Vec::len).max().unwrap_or(0);
        Self {
            factors: prep
                .blocks
                .iter()
                .map(|b| DenseMatrix::zeros(b.len(), b.len()))
                .collect(),
            schur: DenseMatrix::zeros(m_eq, m_eq),
            has_eq: m_eq > 0,
            v_data: vec![0.0; max_active * max_nb],
            v_stride: max_nb,
            v_first: vec![0; max_active],
            v_last: vec![0; max_active],
        }
    }
}

/// Assemble the lower triangle of block `b`'s Newton matrix
/// `M_b = G_bᵀ diag(λ/w) G_b + diag(s/x)` into `mb` (zeroed first; the
/// factorization never reads the upper triangle).
fn assemble_block_matrix(
    prep: &Prepared,
    b: usize,
    mb: &mut DenseMatrix,
    x: &[f64],
    s: &[f64],
    w: &[f64],
    lam: &[f64],
) {
    mb.fill(0.0);
    for &ri in &prep.g_by_block[b] {
        let row = &prep.g[ri];
        mb.add_scaled_outer_sparse_lower(
            &prep.g_local[ri],
            &row.val,
            barrier_weight(lam[ri], w[ri]),
        );
    }
    for (local, &v) in prep.blocks[b].iter().enumerate() {
        mb.add_diagonal(local, (s[v] / x[v]).min(1e10));
    }
}

/// Accumulate block `b`'s Schur contribution `V_b V_bᵀ` (lower triangle, with
/// `V_b = E_b L_b⁻ᵀ`) into `schur`, using the caller-provided `V`-row scratch.
///
/// Each row of `V_b` solves `L_b v = (coupling column)`, a forward
/// substitution started at the column's first nonzero.  The geometric tail of
/// every solve is flushed below [`FLUSH_THRESHOLD`] and the effective band
/// recorded: flushed entries square to exactly zero in the `V Vᵀ` products,
/// and leaving them in would (a) pay the subnormal microcode penalty per
/// multiply and (b) force every row pair into a full-length dot product.
/// The rank-k update then touches only the lower triangle of `schur` with
/// contiguous row dots trimmed to the overlap of the two rows' bands.
#[allow(clippy::too_many_arguments)]
fn accumulate_schur_block(
    prep: &Prepared,
    b: usize,
    factor: &DenseMatrix,
    v_data: &mut [f64],
    v_stride: usize,
    v_first: &mut [usize],
    v_last: &mut [usize],
    schur: &mut DenseMatrix,
) {
    let nb = prep.blocks[b].len();
    let active = &prep.eq_by_block[b];
    let coupling = &prep.coupling_by_block[b];
    for (a_pos, col) in coupling.iter().enumerate() {
        let row = &mut v_data[a_pos * v_stride..a_pos * v_stride + nb];
        row.fill(0.0);
        for &(local, coeff) in &col.entries {
            row[local] = coeff;
        }
        factor.forward_solve_from(row, col.first);
        let mut last = nb;
        while last > col.first && row[last - 1].abs() < FLUSH_THRESHOLD {
            last -= 1;
        }
        for v in row[col.first..last].iter_mut() {
            if v.abs() < FLUSH_THRESHOLD {
                *v = 0.0;
            }
        }
        row[last..nb].fill(0.0);
        v_first[a_pos] = col.first;
        v_last[a_pos] = last;
    }
    for (a_pos, &eq_a) in active.iter().enumerate() {
        for (b_pos, &eq_b) in active.iter().enumerate().take(a_pos + 1) {
            // `active` is ascending, so eq_a ≥ eq_b: lower triangle only.
            let start = v_first[a_pos].max(v_first[b_pos]);
            let end = v_last[a_pos].min(v_last[b_pos]);
            if start >= end {
                continue; // bands do not overlap: the dot is exactly zero
            }
            let va = &v_data[a_pos * v_stride + start..a_pos * v_stride + end];
            let vb = &v_data[b_pos * v_stride + start..b_pos * v_stride + end];
            schur[(eq_a, eq_b)] += dot(va, vb);
        }
    }
}

/// Regularize and factorize the fully accumulated Schur complement.
fn finalize_schur(
    schur: &mut DenseMatrix,
    m_eq: usize,
    opts: &InteriorPointOptions,
) -> Result<(), LpError> {
    for i in 0..m_eq {
        schur.add_diagonal(i, opts.regularization.max(1e-12));
    }
    schur.cholesky_in_place_blocked(opts.regularization, opts.cholesky_block_size)
}

/// Assemble and factorize the block-diagonal Newton matrix and the Schur
/// complement with the blocked kernels, reusing the workspace buffers.
///
/// `workers > 1` dispatches to [`factor_blocked_parallel`]; `workers == 1`
/// runs the serial path with exactly the pre-parallel operation order
/// (bit-exact with historical results).
#[allow(clippy::too_many_arguments)]
fn factor_blocked(
    prep: &Prepared,
    opts: &InteriorPointOptions,
    ws: &mut BlockedWorkspace,
    workers: usize,
    x: &[f64],
    s: &[f64],
    w: &[f64],
    lam: &[f64],
) -> Result<(), LpError> {
    if workers > 1 && prep.blocks.len() > 1 {
        return factor_blocked_parallel(prep, opts, ws, workers, x, s, w, lam);
    }
    // Per-block Newton matrices, assembled lower-triangle-only.
    for b in 0..prep.blocks.len() {
        let mb = &mut ws.factors[b];
        assemble_block_matrix(prep, b, mb, x, s, w, lam);
        mb.cholesky_in_place_blocked(opts.regularization, opts.cholesky_block_size)?;
    }

    if !ws.has_eq {
        return Ok(());
    }

    // Sparse Schur assembly: S = Σ_b E_b M_b⁻¹ E_bᵀ = Σ_b V_b V_bᵀ.
    let m_eq = prep.e.len();
    ws.schur.fill(0.0);
    for b in 0..prep.blocks.len() {
        accumulate_schur_block(
            prep,
            b,
            &ws.factors[b],
            &mut ws.v_data,
            ws.v_stride,
            &mut ws.v_first,
            &mut ws.v_last,
            &mut ws.schur,
        );
    }
    finalize_schur(&mut ws.schur, m_eq, opts)
}

/// Parallel variant of [`factor_blocked`]: the blocks are spread over
/// `workers` scoped threads.
///
/// Each block's assembly + factorization is arithmetic-identical to the
/// serial path, so the per-block factors are **bit-exact** for any worker
/// count.  The Schur complement is accumulated into per-worker partial
/// matrices (each worker owns a contiguous block range) and reduced in
/// worker order at the join barrier — deterministic for a fixed worker
/// count, and within reduction-rounding (≤1e-10 relative) of the serial sum
/// because only the summation parenthesization changes.
#[allow(clippy::too_many_arguments)]
fn factor_blocked_parallel(
    prep: &Prepared,
    opts: &InteriorPointOptions,
    ws: &mut BlockedWorkspace,
    workers: usize,
    x: &[f64],
    s: &[f64],
    w: &[f64],
    lam: &[f64],
) -> Result<(), LpError> {
    let m_eq = prep.e.len();
    let has_eq = ws.has_eq;
    let v_stride = ws.v_stride;
    let max_active = prep.eq_by_block.iter().map(Vec::len).max().unwrap_or(0);
    let partials = par::fan_out_mut(workers, &mut ws.factors, |start, factors| {
        // Per-worker V scratch: the shared workspace panel cannot be split
        // safely across workers, and the allocation is once per fan-out, not
        // per block.
        let mut v_data = vec![0.0; v_stride * max_active];
        let mut v_first = vec![0usize; max_active];
        let mut v_last = vec![0usize; max_active];
        let mut partial = has_eq.then(|| DenseMatrix::zeros(m_eq, m_eq));
        for (off, mb) in factors.iter_mut().enumerate() {
            let b = start + off;
            assemble_block_matrix(prep, b, mb, x, s, w, lam);
            mb.cholesky_in_place_blocked(opts.regularization, opts.cholesky_block_size)?;
            if let Some(partial) = partial.as_mut() {
                accumulate_schur_block(
                    prep,
                    b,
                    mb,
                    &mut v_data,
                    v_stride,
                    &mut v_first,
                    &mut v_last,
                    partial,
                );
            }
        }
        Ok::<_, LpError>(partial)
    });
    if !has_eq {
        for partial in partials {
            partial?;
        }
        return Ok(());
    }
    ws.schur.fill(0.0);
    for partial in partials {
        if let Some(partial) = partial? {
            ws.schur.add_assign(&partial);
        }
    }
    finalize_schur(&mut ws.schur, m_eq, opts)
}

/// Newton solve against the blocked factorization.
///
/// Returns `(dx, dmu)`.  `workers > 1` dispatches to
/// [`newton_solve_blocked_parallel`], which is bit-exact with this serial
/// path (the per-block solves are identical and scatter to disjoint indices).
fn newton_solve_blocked(
    prep: &Prepared,
    ws: &BlockedWorkspace,
    workers: usize,
    rhs1: &[f64],
    r_p2: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    if workers > 1 && prep.blocks.len() > 1 {
        return newton_solve_blocked_parallel(prep, ws, workers, rhs1, r_p2);
    }
    let m_eq = prep.e.len();
    // t = M⁻¹ rhs1, blockwise, in-place solves on a reused local buffer.
    let mut t = vec![0.0; prep.n];
    let max_nb = ws.v_stride;
    let mut local = vec![0.0; max_nb];
    for (b, block) in prep.blocks.iter().enumerate() {
        let nb = block.len();
        for (l, &v) in block.iter().enumerate() {
            local[l] = rhs1[v];
        }
        ws.factors[b].cholesky_solve_into(&mut local[..nb]);
        for (l, &v) in block.iter().enumerate() {
            t[v] = local[l];
        }
    }
    if m_eq == 0 {
        return (t, Vec::new());
    }
    // rhs_schur = E t − r_p2
    let mut rhs_schur = vec![0.0; m_eq];
    for (ri, row) in prep.e.iter().enumerate() {
        rhs_schur[ri] = row.dot(&t) - r_p2[ri];
    }
    let dmu = ws.schur.cholesky_solve(&rhs_schur);
    // dx = M⁻¹ (rhs1 − Eᵀ dmu), blockwise: scatter E_bᵀ dmu through the sparse
    // coupling columns, one solve per block — the dense `M_b⁻¹ E_bᵀ` product of
    // the reference path is never materialized.
    let mut dx = vec![0.0; prep.n];
    for (b, block) in prep.blocks.iter().enumerate() {
        let nb = block.len();
        let active = &prep.eq_by_block[b];
        let coupling = &prep.coupling_by_block[b];
        let u = &mut local[..nb];
        u.fill(0.0);
        for (a_pos, col) in coupling.iter().enumerate() {
            let d = dmu[active[a_pos]];
            if d != 0.0 {
                for &(l, coeff) in &col.entries {
                    u[l] += coeff * d;
                }
            }
        }
        ws.factors[b].cholesky_solve_into(u);
        for (l, &v) in block.iter().enumerate() {
            dx[v] = t[v] - u[l];
        }
    }
    (dx, dmu)
}

/// Parallel variant of [`newton_solve_blocked`]: both blockwise solve sweeps
/// (the `t = M⁻¹ rhs1` gather/solve/scatter and the `dx` coupling-correction
/// solve) fan out over the blocks.
///
/// Every per-block solve performs the same arithmetic as the serial path on a
/// fresh exact-size local buffer, and the scattered index sets of distinct
/// blocks are disjoint — so the result is **bit-exact** regardless of the
/// worker count (the Schur solve for `dmu` stays serial; it is `m_eq`-sized,
/// far smaller than the block sweeps).
fn newton_solve_blocked_parallel(
    prep: &Prepared,
    ws: &BlockedWorkspace,
    workers: usize,
    rhs1: &[f64],
    r_p2: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let m_eq = prep.e.len();
    let nblocks = prep.blocks.len();
    // t = M⁻¹ rhs1: per-worker local solves, scattered after the join.
    let chunks = par::fan_out(workers, nblocks, |range| {
        let mut out = Vec::with_capacity(range.len());
        for b in range {
            let mut local: Vec<f64> = prep.blocks[b].iter().map(|&v| rhs1[v]).collect();
            ws.factors[b].cholesky_solve_into(&mut local);
            out.push(local);
        }
        out
    });
    let mut t = vec![0.0; prep.n];
    for (b, local) in chunks.into_iter().flatten().enumerate() {
        for (l, &v) in prep.blocks[b].iter().enumerate() {
            t[v] = local[l];
        }
    }
    if m_eq == 0 {
        return (t, Vec::new());
    }
    // rhs_schur = E t − r_p2
    let mut rhs_schur = vec![0.0; m_eq];
    for (ri, row) in prep.e.iter().enumerate() {
        rhs_schur[ri] = row.dot(&t) - r_p2[ri];
    }
    let dmu = ws.schur.cholesky_solve(&rhs_schur);
    // dx = M⁻¹ (rhs1 − Eᵀ dmu), blockwise: scatter E_bᵀ dmu through the
    // sparse coupling columns, one solve per block, fanned out the same way.
    let chunks = par::fan_out(workers, nblocks, |range| {
        let mut out = Vec::with_capacity(range.len());
        for b in range {
            let nb = prep.blocks[b].len();
            let active = &prep.eq_by_block[b];
            let coupling = &prep.coupling_by_block[b];
            let mut u = vec![0.0; nb];
            for (a_pos, col) in coupling.iter().enumerate() {
                let d = dmu[active[a_pos]];
                if d != 0.0 {
                    for &(l, coeff) in &col.entries {
                        u[l] += coeff * d;
                    }
                }
            }
            ws.factors[b].cholesky_solve_into(&mut u);
            out.push(u);
        }
        out
    });
    let mut dx = vec![0.0; prep.n];
    for (b, u) in chunks.into_iter().flatten().enumerate() {
        for (l, &v) in prep.blocks[b].iter().enumerate() {
            dx[v] = t[v] - u[l];
        }
    }
    (dx, dmu)
}

// ---------------------------------------------------------------------------
// Reference kernels (pre-optimization), kept for benchmarks and agreement.
// ---------------------------------------------------------------------------

/// Factorization state of the reference path: per-block factors, the dense
/// Schur factor, and the materialized `M_b⁻¹ E_bᵀ` panels.
struct ReferenceFactors {
    block_factors: Vec<DenseMatrix>,
    schur_factor: Option<DenseMatrix>,
    block_ez: Vec<DenseMatrix>,
}

/// Assemble and factorize with the original scalar kernels (fresh allocations
/// every iteration, dense Schur accumulation) — the measurable baseline.
fn factor_reference(
    prep: &Prepared,
    opts: &InteriorPointOptions,
    x: &[f64],
    s: &[f64],
    w: &[f64],
    lam: &[f64],
) -> Result<ReferenceFactors, LpError> {
    let m_eq = prep.e.len();
    let mut block_factors = Vec::with_capacity(prep.blocks.len());
    for (b, block) in prep.blocks.iter().enumerate() {
        let nb = block.len();
        let mut mb = DenseMatrix::zeros(nb, nb);
        for &ri in &prep.g_by_block[b] {
            let row = &prep.g[ri];
            let local_idx: Vec<usize> = row.idx.iter().map(|&v| prep.var_local[v]).collect();
            mb.add_scaled_outer_sparse(&local_idx, &row.val, barrier_weight(lam[ri], w[ri]));
        }
        for (local, &v) in block.iter().enumerate() {
            mb.add_diagonal(local, (s[v] / x[v]).min(1e10));
        }
        mb.cholesky_in_place_unblocked(opts.regularization)?;
        block_factors.push(mb);
    }

    // Precompute M_b⁻¹ E_bᵀ and the Schur complement S = E M⁻¹ Eᵀ (+ reg I).
    let mut block_ez = Vec::with_capacity(prep.blocks.len());
    let mut schur_factor = None;
    if m_eq > 0 {
        let mut schur = DenseMatrix::zeros(m_eq, m_eq);
        for (b, block) in prep.blocks.iter().enumerate() {
            let nb = block.len();
            let active = &prep.eq_by_block[b];
            let mut ebt = DenseMatrix::zeros(nb, active.len());
            for (a_pos, &eq_row) in active.iter().enumerate() {
                let row = &prep.e[eq_row];
                for (&v, &a) in row.idx.iter().zip(row.val.iter()) {
                    if prep.var_block[v] == b {
                        ebt[(prep.var_local[v], a_pos)] = a;
                    }
                }
            }
            let z = block_factors[b].cholesky_solve_matrix_per_column(&ebt); // n_b × |active|
                                                                             // schur[active, active] += E_b · z  (E_b = ebtᵀ)
            for (a_pos, &eq_a) in active.iter().enumerate() {
                for (b_pos, &eq_b) in active.iter().enumerate() {
                    let mut v = 0.0;
                    for local in 0..nb {
                        v += ebt[(local, a_pos)] * z[(local, b_pos)];
                    }
                    schur[(eq_a, eq_b)] += v;
                }
            }
            block_ez.push(z);
        }
        for i in 0..m_eq {
            schur.add_diagonal(i, opts.regularization.max(1e-12));
        }
        schur.cholesky_in_place_unblocked(opts.regularization)?;
        schur_factor = Some(schur);
    } else {
        for block in &prep.blocks {
            block_ez.push(DenseMatrix::zeros(block.len(), 0));
        }
    }
    Ok(ReferenceFactors {
        block_factors,
        schur_factor,
        block_ez,
    })
}

/// Newton solve against the reference factorization.
///
/// Returns `(dx, dmu)`.
fn newton_solve_reference(
    prep: &Prepared,
    factors: &ReferenceFactors,
    rhs1: &[f64],
    r_p2: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let m_eq = prep.e.len();
    // t = M⁻¹ rhs1, blockwise.
    let mut t = vec![0.0; prep.n];
    for (b, block) in prep.blocks.iter().enumerate() {
        let local_rhs: Vec<f64> = block.iter().map(|&v| rhs1[v]).collect();
        let local_sol = factors.block_factors[b].cholesky_solve(&local_rhs);
        for (local, &v) in block.iter().enumerate() {
            t[v] = local_sol[local];
        }
    }
    if m_eq == 0 {
        return (t, Vec::new());
    }
    // rhs_schur = E t − r_p2
    let mut rhs_schur = vec![0.0; m_eq];
    for (ri, row) in prep.e.iter().enumerate() {
        rhs_schur[ri] = row.dot(&t) - r_p2[ri];
    }
    let dmu = factors
        .schur_factor
        .as_ref()
        .expect("Schur factor exists when equality rows are present")
        .cholesky_solve(&rhs_schur);
    // dx = M⁻¹ (rhs1 − Eᵀ dmu), blockwise, reusing the precomputed M_b⁻¹ E_bᵀ.
    let mut dx = vec![0.0; prep.n];
    for (b, block) in prep.blocks.iter().enumerate() {
        let active = &prep.eq_by_block[b];
        let ez = &factors.block_ez[b]; // n_b × |active|: M_b⁻¹ E_bᵀ
        for (local, &v) in block.iter().enumerate() {
            let mut correction = 0.0;
            for (a_pos, &eq_row) in active.iter().enumerate() {
                correction += ez[(local, a_pos)] * dmu[eq_row];
            }
            dx[v] = t[v] - correction;
        }
    }
    (dx, dmu)
}

/// Factorization of one iteration's Newton matrix, under either kernel strategy.
enum Factorization<'a> {
    Blocked(&'a BlockedWorkspace),
    Reference(ReferenceFactors),
}

impl Factorization<'_> {
    fn newton_solve(
        &self,
        prep: &Prepared,
        workers: usize,
        rhs1: &[f64],
        r_p2: &[f64],
    ) -> (Vec<f64>, Vec<f64>) {
        match self {
            Factorization::Blocked(ws) => newton_solve_blocked(prep, ws, workers, rhs1, r_p2),
            Factorization::Reference(factors) => newton_solve_reference(prep, factors, rhs1, r_p2),
        }
    }
}

fn solve_ipm(
    problem: &LpProblem,
    blocks: &[Vec<usize>],
    opts: &InteriorPointOptions,
    solver_name: &'static str,
    warm: Option<&WarmStart>,
) -> Result<LpSolution, LpError> {
    let prep = prepare(problem, blocks)?;
    let n = prep.n;
    let m_in = prep.g.len();
    let m_eq = prep.e.len();

    // Worker count for the blocked kernels, clamped to the block count —
    // extra threads would only idle.
    let workers = par::resolve_threads(opts.threads).min(prep.blocks.len().max(1));

    // Primal and dual iterates, all strictly positive where required.
    let mut x = vec![1.0; n];
    let mut w = vec![1.0; m_in];
    let mut lam = vec![1.0; m_in];
    let mut s = vec![1.0; n];
    let mut mu_eq = vec![0.0; m_eq];

    let scale = 1.0
        + inf_norm(&prep.c)
            .max(inf_norm(&prep.h))
            .max(inf_norm(&prep.f));

    // Warm start: adopt a validated previous iterate, shifted back to the
    // strict interior.  The primal `x`, dual slacks `s` and all constraint
    // multipliers (`μ` for equalities, `λ` for inequalities — both carried in
    // `warm.y`) restart at their captured values, so the initial residuals are
    // those of the captured point on the *new* problem: near zero for a
    // same-or-nearby problem.  The inequality slacks `w` are recomputed from
    // the warm primal.  All barrier quantities are then re-centered *up* to
    // the barrier level μ₀ = max(warm.mu, 10·tol·scale): a converged iterate
    // sits essentially on the boundary (μ ≈ tol), and restarting a perturbed
    // problem from there leaves the path-following no room to move — lifting
    // the complementarity products to ≥ ~μ₀ restores that room while adding
    // only an O(μ₀) dual perturbation.  An unusable warm start (wrong
    // dimensions, non-finite entries, non-positive μ) silently falls back to
    // the cold unit start.
    const WARM_FLOOR: f64 = 1e-8;
    if let Some(warm) = warm {
        let usable = warm.x.len() == n
            && warm.s.len() == n
            && warm.y.len() == m_eq + m_in
            && warm.mu.is_finite()
            && warm.mu > 0.0
            && warm.x.iter().all(|v| v.is_finite())
            && warm.y.iter().all(|v| v.is_finite())
            && warm.s.iter().all(|v| v.is_finite());
        if usable {
            for j in 0..n {
                x[j] = warm.x[j].max(WARM_FLOOR);
            }
            // Raw inequality slacks of the warm primal on the *new* problem,
            // and its worst violation.  A same-problem restart has violation
            // ≈ 0; a perturbed problem (the δ-grid tightening its Geo-Ind
            // rows) can cut the old optimum off by an O(1) margin.  Restarting
            // with boundary slacks against such a violation stalls the
            // path-following — μ collapses while the primal residual is still
            // macroscopic and every step toward feasibility is blocked by the
            // positivity clamp — so the restart barrier level must grow with
            // the violation, giving the first iterations room to walk the
            // iterate back inside.
            let mut raw_w = vec![0.0; m_in];
            let mut violation = 0.0f64;
            for (ri, row) in prep.g.iter().enumerate() {
                raw_w[ri] = prep.h[ri] - row.dot(&x);
                violation = violation.max(-raw_w[ri]);
            }
            let mu0 = warm
                .mu
                .max(10.0 * opts.tolerance * scale)
                .max(violation)
                .min(scale);
            for j in 0..n {
                s[j] = warm.s[j].max(mu0 / x[j].max(1.0)).max(WARM_FLOOR);
            }
            mu_eq.copy_from_slice(&warm.y[..m_eq]);
            for ri in 0..m_in {
                // Rows the warm point satisfies keep their exact slack (a
                // legitimately active row's tiny w pairs with its large λ);
                // violated or boundary rows restart at the barrier level —
                // an interior, step-friendly slack whose residual the solver
                // is built to drive out.
                w[ri] = if raw_w[ri] >= WARM_FLOOR {
                    raw_w[ri]
                } else {
                    mu0.max(WARM_FLOOR)
                };
                lam[ri] = warm.y[m_eq + ri].max(mu0 / w[ri].max(1.0)).max(WARM_FLOOR);
            }
        }
    }

    let mut workspace = match opts.kernels {
        KernelStrategy::Blocked => Some(BlockedWorkspace::new(&prep)),
        KernelStrategy::Reference => None,
    };

    // Set CORGI_IPM_TRACE=1 to print per-iteration residuals to stderr
    // (diagnosing warm-start quality and convergence stalls).
    let trace = std::env::var_os("CORGI_IPM_TRACE").is_some();

    let mut iterations = 0usize;
    let mut status = SolveStatus::IterationLimit;
    // Track the best iterate seen so far (by a simple merit of residuals + gap);
    // if the path-following stalls or diverges later, return this point instead
    // of the last iterate.
    let mut best_x = x.clone();
    let mut best_merit = f64::INFINITY;
    // μ of the last completed residual check — captured into the WarmStart on
    // convergence (it is then the converged complementarity gap).
    let mut mu_gap_final = f64::INFINITY;

    for iter in 0..opts.max_iterations {
        iterations = iter + 1;

        // Residuals.
        let mut r_p1 = vec![0.0; m_in]; // h − Gx − w
        for (ri, row) in prep.g.iter().enumerate() {
            r_p1[ri] = prep.h[ri] - row.dot(&x) - w[ri];
        }
        let mut r_p2 = vec![0.0; m_eq]; // f − Ex
        for (ri, row) in prep.e.iter().enumerate() {
            r_p2[ri] = prep.f[ri] - row.dot(&x);
        }
        // resid_dual = c + Gᵀλ + Eᵀμ − s
        let mut resid_dual = prep.c.clone();
        for (ri, row) in prep.g.iter().enumerate() {
            row.axpy_into(lam[ri], &mut resid_dual);
        }
        for (ri, row) in prep.e.iter().enumerate() {
            row.axpy_into(mu_eq[ri], &mut resid_dual);
        }
        for j in 0..n {
            resid_dual[j] -= s[j];
        }

        let gap_terms = x.iter().zip(s.iter()).map(|(a, b)| a * b).sum::<f64>()
            + w.iter().zip(lam.iter()).map(|(a, b)| a * b).sum::<f64>();
        let denom = (n + m_in) as f64;
        let mu_gap = gap_terms / denom;
        mu_gap_final = mu_gap;

        let primal_err = inf_norm(&r_p1).max(inf_norm(&r_p2));
        let dual_err = inf_norm(&resid_dual);
        if trace {
            eprintln!("iter {iter}: primal {primal_err:.3e} dual {dual_err:.3e} mu {mu_gap:.3e}");
        }
        let merit = primal_err + dual_err + mu_gap;
        if merit.is_finite() && merit < best_merit {
            best_merit = merit;
            best_x.copy_from_slice(&x);
        }
        if primal_err <= opts.tolerance * scale
            && dual_err <= opts.tolerance * scale
            && mu_gap <= opts.tolerance * scale
        {
            status = SolveStatus::Optimal;
            break;
        }
        // Divergence guard: infeasible-start path following is not guaranteed to
        // converge on problems without a strictly feasible interior.  Stop and
        // report the iteration limit instead of looping; callers can check the
        // returned point's feasibility (or fall back to the simplex).
        if !mu_gap.is_finite() || mu_gap > 1e14 || primal_err > 1e14 || dual_err > 1e14 {
            status = SolveStatus::IterationLimit;
            break;
        }

        // Assemble and factorize the Newton system under the selected kernels.
        let factorization = match opts.kernels {
            KernelStrategy::Blocked => {
                let ws = workspace.as_mut().expect("blocked workspace exists");
                factor_blocked(&prep, opts, ws, workers, &x, &s, &w, &lam)?;
                Factorization::Blocked(workspace.as_ref().expect("blocked workspace exists"))
            }
            KernelStrategy::Reference => {
                Factorization::Reference(factor_reference(&prep, opts, &x, &s, &w, &lam)?)
            }
        };

        // rd3 = −resid_dual
        let rd3: Vec<f64> = resid_dual.iter().map(|v| -v).collect();

        // ---- Affine (predictor) direction: σ = 0, no corrector. ----
        let build_rhs1 = |rc1: &[f64], rc2: &[f64]| -> Vec<f64> {
            let mut rhs1 = rd3.clone();
            // + Gᵀ((λ/w)·r_p1 − rc2/w)
            for (ri, row) in prep.g.iter().enumerate() {
                let u = (lam[ri] / w[ri]) * r_p1[ri] - rc2[ri] / w[ri];
                row.axpy_into(u, &mut rhs1);
            }
            // + rc1/x
            for j in 0..n {
                rhs1[j] += rc1[j] / x[j];
            }
            rhs1
        };

        let rc1_aff: Vec<f64> = x.iter().zip(s.iter()).map(|(xi, si)| -xi * si).collect();
        let rc2_aff: Vec<f64> = w.iter().zip(lam.iter()).map(|(wi, li)| -wi * li).collect();
        let rhs1_aff = build_rhs1(&rc1_aff, &rc2_aff);
        let (dx_aff, _) = factorization.newton_solve(&prep, workers, &rhs1_aff, &r_p2);
        let mut dw_aff = vec![0.0; m_in];
        let mut dlam_aff = vec![0.0; m_in];
        for (ri, row) in prep.g.iter().enumerate() {
            dw_aff[ri] = r_p1[ri] - row.dot(&dx_aff);
            dlam_aff[ri] = (rc2_aff[ri] - lam[ri] * dw_aff[ri]) / w[ri];
        }
        let mut ds_aff = vec![0.0; n];
        for j in 0..n {
            ds_aff[j] = (rc1_aff[j] - s[j] * dx_aff[j]) / x[j];
        }

        let step_to_boundary = |v: &[f64], dv: &[f64]| -> f64 {
            let mut alpha = 1.0f64;
            for (vi, di) in v.iter().zip(dv.iter()) {
                if *di < 0.0 {
                    alpha = alpha.min(-vi / di);
                }
            }
            alpha
        };
        let alpha_p_aff = step_to_boundary(&x, &dx_aff).min(step_to_boundary(&w, &dw_aff));
        let alpha_d_aff = step_to_boundary(&s, &ds_aff).min(step_to_boundary(&lam, &dlam_aff));

        // Mehrotra centering parameter.
        let mut gap_aff = 0.0;
        for j in 0..n {
            gap_aff += (x[j] + alpha_p_aff * dx_aff[j]) * (s[j] + alpha_d_aff * ds_aff[j]);
        }
        for ri in 0..m_in {
            gap_aff += (w[ri] + alpha_p_aff * dw_aff[ri]) * (lam[ri] + alpha_d_aff * dlam_aff[ri]);
        }
        let mu_aff = gap_aff / denom;
        let sigma = if mu_gap > 0.0 {
            ((mu_aff / mu_gap).powi(3)).clamp(1e-8, 1.0)
        } else {
            0.0
        };
        // Centering target, floored away from the machine-precision regime:
        // convergence only needs μ ≤ tol·scale, but an aggressive σ (e.g. on a
        // warm restart that enters almost converged) can drive μ orders of
        // magnitude below that while the residuals still need cleaning up —
        // and at μ ~ 1e-10 the barrier diagonal is so ill-conditioned that the
        // Newton directions break down (observed as a dual-residual explosion
        // followed by NaN pivots).  The floor never blocks convergence and
        // never lifts μ (it is capped by the current gap).
        let target_mu = (sigma * mu_gap).max((0.05 * opts.tolerance * scale).min(mu_gap));

        // ---- Corrector direction. ----
        let rc1: Vec<f64> = (0..n)
            .map(|j| target_mu - x[j] * s[j] - dx_aff[j] * ds_aff[j])
            .collect();
        let rc2: Vec<f64> = (0..m_in)
            .map(|ri| target_mu - w[ri] * lam[ri] - dw_aff[ri] * dlam_aff[ri])
            .collect();
        let rhs1 = build_rhs1(&rc1, &rc2);
        let (mut dx, mut dmu) = factorization.newton_solve(&prep, workers, &rhs1, &r_p2);
        let mut dw = vec![0.0; m_in];
        let mut dlam = vec![0.0; m_in];
        for (ri, row) in prep.g.iter().enumerate() {
            dw[ri] = r_p1[ri] - row.dot(&dx);
            dlam[ri] = (rc2[ri] - lam[ri] * dw[ri]) / w[ri];
        }
        let mut ds = vec![0.0; n];
        for j in 0..n {
            ds[j] = (rc1[j] - s[j] * dx[j]) / x[j];
        }

        let mut alpha_p = (opts.step_fraction
            * step_to_boundary(&x, &dx).min(step_to_boundary(&w, &dw)))
        .min(1.0);
        let mut alpha_d = (opts.step_fraction
            * step_to_boundary(&s, &ds).min(step_to_boundary(&lam, &dlam)))
        .min(1.0);

        // ---- Gondzio centrality correctors. ----
        //
        // These LPs are heavily degenerate: a handful of complementarity
        // products sit orders of magnitude below the barrier average, hit the
        // boundary almost immediately, and truncate every Mehrotra step to
        // α ≈ 0.1–0.4 — so residuals only shrink by (1 − α) per iteration and
        // the tail of the solve grinds geometrically.  Each corrector probes a
        // slightly longer trial step, measures which products fall outside the
        // centrality band [βmin, βmax]·σμ at that trial point, and solves one
        // more Newton system (reusing the factorization — back/forward solves
        // only) that pushes exactly those outliers back toward the central
        // path.  The enlarged direction is kept only if the achievable step
        // actually grew; otherwise the loop stops.
        const BETA_MIN: f64 = 0.1;
        const BETA_MAX: f64 = 10.0;
        // How far past the currently-achievable step each corrector probes.
        const TRIAL_ENLARGE: f64 = 0.1;
        let zeros_eq = vec![0.0; m_eq];
        for _ in 0..opts.max_centrality_correctors {
            let trial_p = (alpha_p / opts.step_fraction + TRIAL_ENLARGE * (1.0 - alpha_p)).min(1.0);
            let trial_d = (alpha_d / opts.step_fraction + TRIAL_ENLARGE * (1.0 - alpha_d)).min(1.0);
            let lo = BETA_MIN * target_mu;
            let hi = BETA_MAX * target_mu;
            let band = |v: f64| {
                if v < lo {
                    lo - v
                } else if v > hi {
                    hi - v
                } else {
                    0.0
                }
            };
            // Pairs whose primal side has converged to its bound are left
            // alone: the correction divides by that variable, so "lifting" a
            // boundary pair would inject an enormous (possibly overflowing)
            // right-hand side for a product that legitimately sits at zero.
            const BOUNDARY: f64 = 1e-12;
            let mut any_outlier = false;
            let t1: Vec<f64> = (0..n)
                .map(|j| {
                    if x[j] <= BOUNDARY {
                        return 0.0;
                    }
                    let t = band((x[j] + trial_p * dx[j]) * (s[j] + trial_d * ds[j]));
                    any_outlier |= t != 0.0;
                    t
                })
                .collect();
            let t2: Vec<f64> = (0..m_in)
                .map(|ri| {
                    if w[ri] <= BOUNDARY {
                        return 0.0;
                    }
                    let t = band((w[ri] + trial_p * dw[ri]) * (lam[ri] + trial_d * dlam[ri]));
                    any_outlier |= t != 0.0;
                    t
                })
                .collect();
            if !any_outlier {
                break;
            }
            // Newton system with zero residual blocks and the band violations
            // as the complementarity targets.
            let mut rhs1_c = vec![0.0; n];
            for (ri, row) in prep.g.iter().enumerate() {
                if t2[ri] != 0.0 {
                    row.axpy_into(-t2[ri] / w[ri], &mut rhs1_c);
                }
            }
            for j in 0..n {
                rhs1_c[j] += t1[j] / x[j];
            }
            let (ddx, ddmu) = factorization.newton_solve(&prep, workers, &rhs1_c, &zeros_eq);
            let mut dwc = dw.clone();
            let mut dlamc = dlam.clone();
            for (ri, row) in prep.g.iter().enumerate() {
                let ddw = -row.dot(&ddx);
                dwc[ri] += ddw;
                dlamc[ri] += (t2[ri] - lam[ri] * ddw) / w[ri];
            }
            let dxc: Vec<f64> = dx.iter().zip(&ddx).map(|(a, b)| a + b).collect();
            let dsc: Vec<f64> = (0..n)
                .map(|j| ds[j] + (t1[j] - s[j] * ddx[j]) / x[j])
                .collect();
            let ap = (opts.step_fraction
                * step_to_boundary(&x, &dxc).min(step_to_boundary(&w, &dwc)))
            .min(1.0);
            let ad = (opts.step_fraction
                * step_to_boundary(&s, &dsc).min(step_to_boundary(&lam, &dlamc)))
            .min(1.0);
            let finite = dxc.iter().all(|v| v.is_finite())
                && dsc.iter().all(|v| v.is_finite())
                && dwc.iter().all(|v| v.is_finite())
                && dlamc.iter().all(|v| v.is_finite());
            if !finite || ap + ad < alpha_p + alpha_d + 0.02 {
                break;
            }
            dx = dxc;
            dw = dwc;
            ds = dsc;
            dlam = dlamc;
            for (a, b) in dmu.iter_mut().zip(&ddmu) {
                *a += b;
            }
            alpha_p = ap;
            alpha_d = ad;
        }
        if trace {
            eprintln!(
                "  step: aff_p {alpha_p_aff:.3} aff_d {alpha_d_aff:.3} sigma {sigma:.3e} p {alpha_p:.3} d {alpha_d:.3}"
            );
        }

        // A tiny positive floor keeps the barrier quantities away from exact zero
        // (which would otherwise produce 0/0 in later iterations once a variable
        // converges to an active bound and underflows).
        const FLOOR: f64 = 1e-30;
        for j in 0..n {
            x[j] = (x[j] + alpha_p * dx[j]).max(FLOOR);
            s[j] = (s[j] + alpha_d * ds[j]).max(FLOOR);
        }
        for ri in 0..m_in {
            w[ri] = (w[ri] + alpha_p * dw[ri]).max(FLOOR);
            lam[ri] = (lam[ri] + alpha_d * dlam[ri]).max(FLOOR);
        }
        for (ri, d) in dmu.iter().enumerate() {
            mu_eq[ri] += alpha_d * d;
        }
        if x.iter().any(|v| !v.is_finite()) {
            // Numerical breakdown: stop and fall back to the best iterate.
            status = SolveStatus::IterationLimit;
            break;
        }
    }

    // Capture the converged iterate for warm-starting nearby solves — only on
    // `Optimal` (a diverged or stalled iterate would poison the next solve).
    let warm_out = if status == SolveStatus::Optimal {
        let mut y = mu_eq;
        y.extend_from_slice(&lam);
        Some(WarmStart {
            x: x.clone(),
            y,
            s,
            mu: mu_gap_final,
        })
    } else {
        None
    };
    let x = if status == SolveStatus::Optimal {
        x
    } else {
        best_x
    };
    let objective = problem.objective_value(&x);
    Ok(LpSolution {
        status,
        objective,
        x,
        iterations,
        solver: solver_name.to_string(),
        warm: warm_out,
    })
}

/// Benchmark and agreement-test support: drives the blocked factorization
/// kernels on a prepared problem directly, without full IPM iterations.
///
/// `lp_benches` uses this to time the `block_factorize_parallel/{1_thread,
/// n_threads}` pair on the same assembled Newton system, and the agreement
/// tests compare the resulting factors/Schur complement across thread counts.
pub mod bench_support {
    use super::*;

    /// A prepared block-angular problem plus the blocked-kernel workspace,
    /// ready to factorize repeatedly under different thread counts.
    pub struct FactorizationBench {
        prep: Prepared,
        options: InteriorPointOptions,
        ws: BlockedWorkspace,
        x: Vec<f64>,
        s: Vec<f64>,
        w: Vec<f64>,
        lam: Vec<f64>,
    }

    impl FactorizationBench {
        /// Prepare `problem` under the given block partition and options
        /// (`options.threads` selects the worker count of [`Self::factor`]).
        pub fn new(
            problem: &LpProblem,
            blocks: &[Vec<usize>],
            options: InteriorPointOptions,
        ) -> Result<Self, LpError> {
            validate_blocks(blocks, problem.num_vars())?;
            let prep = prepare(problem, blocks)?;
            let ws = BlockedWorkspace::new(&prep);
            let n = prep.n;
            let m_in = prep.g.len();
            Ok(Self {
                prep,
                options,
                ws,
                x: vec![1.0; n],
                s: vec![1.0; n],
                w: vec![1.0; m_in],
                lam: vec![1.0; m_in],
            })
        }

        /// Perturb the barrier state pseudo-randomly (xorshift64, seeded) so
        /// repeated factorizations run on a representative mid-path iterate
        /// rather than the trivial all-ones point.  Deterministic per seed.
        pub fn perturb_state(&mut self, seed: u64) {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            for v in self
                .x
                .iter_mut()
                .chain(self.s.iter_mut())
                .chain(self.w.iter_mut())
                .chain(self.lam.iter_mut())
            {
                *v = 0.05 + next();
            }
        }

        /// Assemble and factorize all block Newton matrices and the Schur
        /// complement under `options.threads` workers — the timed kernel.
        pub fn factor(&mut self) -> Result<(), LpError> {
            let workers =
                par::resolve_threads(self.options.threads).min(self.prep.blocks.len().max(1));
            factor_blocked(
                &self.prep,
                &self.options,
                &mut self.ws,
                workers,
                &self.x,
                &self.s,
                &self.w,
                &self.lam,
            )
        }

        /// The per-block Cholesky factors of the last [`Self::factor`] call.
        pub fn factors(&self) -> &[DenseMatrix] {
            &self.ws.factors
        }

        /// The factored, regularized Schur complement of the last
        /// [`Self::factor`] call.
        pub fn schur(&self) -> &DenseMatrix {
            &self.ws.schur
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimplexSolver;

    fn ipm() -> InteriorPointSolver {
        InteriorPointSolver::default()
    }

    #[test]
    fn matches_simplex_on_small_inequality_problem() {
        // max 3x + 5y (as min of the negation) from the simplex tests.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![-3.0, -5.0]).unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 4.0)
            .unwrap();
        p.add_constraint(vec![(1, 2.0)], ConstraintSense::Le, 12.0)
            .unwrap();
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintSense::Le, 18.0)
            .unwrap();
        let s = ipm().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(
            (s.objective + 36.0).abs() < 1e-5,
            "objective {}",
            s.objective
        );
        assert!((s.x[0] - 2.0).abs() < 1e-4);
        assert!((s.x[1] - 6.0).abs() < 1e-4);
    }

    #[test]
    fn handles_equality_constraints() {
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![1.0, 2.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 10.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 3.0)
            .unwrap();
        let s = ipm().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-5);
        assert!(p.is_feasible(&s.x, 1e-5));
    }

    #[test]
    fn transportation_problem_matches_simplex() {
        let mut p = LpProblem::new(4);
        p.set_objective_vector(vec![1.0, 3.0, 2.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 3.0)
            .unwrap();
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], ConstraintSense::Eq, 4.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, 2.0)
            .unwrap();
        p.add_constraint(vec![(1, 1.0), (3, 1.0)], ConstraintSense::Eq, 5.0)
            .unwrap();
        let ipm_sol = ipm().solve(&p).unwrap();
        let spx_sol = SimplexSolver::new().solve(&p).unwrap();
        assert_eq!(ipm_sol.status, SolveStatus::Optimal);
        assert!((ipm_sol.objective - spx_sol.objective).abs() < 1e-5);
        assert!(p.is_feasible(&ipm_sol.x, 1e-5));
    }

    #[test]
    fn block_solver_matches_general_solver() {
        // Two independent 2-variable blocks coupled by one equality.
        // min x0 + 2x1 + 3x2 + x3
        //  s.t. x0 + x1 ≤ 4        (block 0)
        //       x2 + 2x3 ≤ 6       (block 1)
        //       x0 + x2 = 3        (coupling)
        //       x1 + x3 ≥ 1 … as −x1 − x3 ≤ −1 spans blocks, so keep it equality-free:
        //       use x1 = 1 instead (equality, couples nothing extra).
        let build = || {
            let mut p = LpProblem::new(4);
            p.set_objective_vector(vec![1.0, 2.0, 3.0, 1.0]).unwrap();
            p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0)
                .unwrap();
            p.add_constraint(vec![(2, 1.0), (3, 2.0)], ConstraintSense::Le, 6.0)
                .unwrap();
            p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, 3.0)
                .unwrap();
            p.add_constraint(vec![(1, 1.0)], ConstraintSense::Eq, 1.0)
                .unwrap();
            p
        };
        let p = build();
        let general = ipm().solve(&p).unwrap();
        let block = BlockAngularSolver::new(
            vec![vec![0, 1], vec![2, 3]],
            InteriorPointOptions::default(),
        )
        .solve(&p)
        .unwrap();
        let spx = SimplexSolver::new().solve(&p).unwrap();
        assert_eq!(block.status, SolveStatus::Optimal);
        assert!((general.objective - spx.objective).abs() < 1e-5);
        assert!((block.objective - spx.objective).abs() < 1e-5);
        assert!(p.is_feasible(&block.x, 1e-5));
    }

    #[test]
    fn block_solver_rejects_spanning_inequality() {
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![1.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 1.0)
            .unwrap();
        let solver =
            BlockAngularSolver::new(vec![vec![0], vec![1]], InteriorPointOptions::default());
        assert!(matches!(
            solver.solve(&p),
            Err(LpError::ConstraintSpansBlocks { constraint: 0 })
        ));
    }

    #[test]
    fn block_structure_validation() {
        let mut p = LpProblem::new(3);
        p.set_objective_vector(vec![1.0; 3]).unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 1.0)
            .unwrap();
        // Missing variable 2.
        let solver =
            BlockAngularSolver::new(vec![vec![0], vec![1]], InteriorPointOptions::default());
        assert!(matches!(
            solver.solve(&p),
            Err(LpError::InvalidBlockStructure(_))
        ));
        // Duplicate variable.
        let solver = BlockAngularSolver::new(
            vec![vec![0, 1], vec![1, 2]],
            InteriorPointOptions::default(),
        );
        assert!(matches!(
            solver.solve(&p),
            Err(LpError::InvalidBlockStructure(_))
        ));
    }

    #[test]
    fn empty_problem_rejected() {
        let p = LpProblem::new(0);
        assert!(matches!(ipm().solve(&p), Err(LpError::EmptyProblem)));
    }

    #[test]
    fn pure_equality_problem() {
        // min x + y s.t. x + y = 2, x − y = 0 ⇒ x = y = 1.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![1.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 2.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintSense::Eq, 0.0)
            .unwrap();
        let s = ipm().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.x[0] - 1.0).abs() < 1e-5);
        assert!((s.x[1] - 1.0).abs() < 1e-5);
    }

    /// Build the miniature obfuscation LP used by several tests: a k×k
    /// row-stochastic matrix, per-column ratio constraints, row sums = 1.
    fn stochastic_problem(k: usize, factor: f64) -> (LpProblem, Vec<Vec<usize>>) {
        let var = |i: usize, j: usize| i * k + j;
        let mut p = LpProblem::new(k * k);
        for i in 0..k {
            for j in 0..k {
                let cost = (i as f64 - j as f64).abs();
                p.set_objective(var(i, j), cost).unwrap();
            }
        }
        for i in 0..k {
            let coeffs = (0..k).map(|j| (var(i, j), 1.0)).collect();
            p.add_constraint(coeffs, ConstraintSense::Eq, 1.0).unwrap();
        }
        for j in 0..k {
            for i in 0..k {
                for l in 0..k {
                    if i != l {
                        p.add_constraint(
                            vec![(var(i, j), 1.0), (var(l, j), -factor)],
                            ConstraintSense::Le,
                            0.0,
                        )
                        .unwrap();
                    }
                }
            }
        }
        let blocks: Vec<Vec<usize>> = (0..k)
            .map(|j| (0..k).map(|i| var(i, j)).collect())
            .collect();
        (p, blocks)
    }

    #[test]
    fn stochastic_row_problem_like_obfuscation_lp() {
        // A miniature of the paper's LP: a 3×3 row-stochastic matrix (9 variables),
        // minimize a cost, subject to per-column ratio constraints and row sums = 1.
        let (p, blocks) = stochastic_problem(3, 0.5f64.exp());
        let spx = SimplexSolver::new().solve(&p).unwrap();
        let general = ipm().solve(&p).unwrap();
        let block = BlockAngularSolver::new(blocks, InteriorPointOptions::default())
            .solve(&p)
            .unwrap();
        assert_eq!(spx.status, SolveStatus::Optimal);
        assert_eq!(general.status, SolveStatus::Optimal);
        assert_eq!(block.status, SolveStatus::Optimal);
        assert!(
            (general.objective - spx.objective).abs() < 1e-4,
            "ipm {} vs simplex {}",
            general.objective,
            spx.objective
        );
        assert!(
            (block.objective - spx.objective).abs() < 1e-4,
            "block {} vs simplex {}",
            block.objective,
            spx.objective
        );
        assert!(p.is_feasible(&block.x, 1e-5));
    }

    #[test]
    fn blocked_kernels_match_reference_kernels() {
        // Same LP, both kernel strategies: the solutions must agree far below
        // the solver tolerance (the paths differ only by floating-point
        // accumulation order inside the Cholesky).
        let (p, blocks) = stochastic_problem(5, 0.8f64.exp());
        let blocked = BlockAngularSolver::new(blocks.clone(), InteriorPointOptions::default())
            .solve(&p)
            .unwrap();
        let reference = BlockAngularSolver::new(blocks, InteriorPointOptions::reference_kernels())
            .solve(&p)
            .unwrap();
        assert_eq!(blocked.status, SolveStatus::Optimal);
        assert_eq!(reference.status, SolveStatus::Optimal);
        assert!(
            (blocked.objective - reference.objective).abs() < 1e-7,
            "blocked {} vs reference {}",
            blocked.objective,
            reference.objective
        );
        for (a, b) in blocked.x.iter().zip(reference.x.iter()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn blocked_kernels_match_reference_on_general_single_block() {
        // The general (single-block) solver exercises the blocked kernels with
        // every equality row dense in the one block.
        let mut p = LpProblem::new(4);
        p.set_objective_vector(vec![1.0, 3.0, 2.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 3.0)
            .unwrap();
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], ConstraintSense::Eq, 4.0)
            .unwrap();
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, 2.0)
            .unwrap();
        p.add_constraint(vec![(1, 1.0), (3, 1.0)], ConstraintSense::Eq, 5.0)
            .unwrap();
        let blocked = InteriorPointSolver::default().solve(&p).unwrap();
        let reference = InteriorPointSolver::new(InteriorPointOptions::reference_kernels())
            .solve(&p)
            .unwrap();
        assert_eq!(blocked.status, SolveStatus::Optimal);
        assert_eq!(reference.status, SolveStatus::Optimal);
        assert!((blocked.objective - reference.objective).abs() < 1e-7);
    }

    #[test]
    fn tiny_cholesky_panels_still_converge() {
        // cholesky_block_size = 1 degenerates the blocked factorization to a
        // rank-1 right-looking (outer-product) form; the solver must be
        // unaffected beyond rounding.
        let (p, blocks) = stochastic_problem(4, 0.6f64.exp());
        let opts = InteriorPointOptions {
            cholesky_block_size: 1,
            ..InteriorPointOptions::default()
        };
        let s = BlockAngularSolver::new(blocks, opts).solve(&p).unwrap();
        let spx = SimplexSolver::new().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - spx.objective).abs() < 1e-4);
    }

    #[test]
    fn parallel_factorization_matches_serial() {
        // Per-block factors must be bit-exact for any worker count; the Schur
        // complement may differ only by the partial-sum reduction order.
        let (p, blocks) = stochastic_problem(6, 0.7f64.exp());
        let mut serial =
            bench_support::FactorizationBench::new(&p, &blocks, InteriorPointOptions::default())
                .unwrap();
        serial.perturb_state(42);
        serial.factor().unwrap();
        for threads in [2usize, 3, 5] {
            let opts = InteriorPointOptions {
                threads,
                ..InteriorPointOptions::default()
            };
            let mut parallel = bench_support::FactorizationBench::new(&p, &blocks, opts).unwrap();
            parallel.perturb_state(42);
            parallel.factor().unwrap();
            for (b, (fs, fp)) in serial
                .factors()
                .iter()
                .zip(parallel.factors().iter())
                .enumerate()
            {
                let nb = blocks[b].len();
                for i in 0..nb {
                    for j in 0..=i {
                        assert_eq!(
                            fs[(i, j)],
                            fp[(i, j)],
                            "threads={threads} block={b} ({i},{j}) not bit-exact"
                        );
                    }
                }
            }
            let m_eq = 6; // one row-sum equality per row
            for i in 0..m_eq {
                for j in 0..=i {
                    let a = serial.schur()[(i, j)];
                    let b = parallel.schur()[(i, j)];
                    let tol = 1e-10 * a.abs().max(1.0);
                    assert!(
                        (a - b).abs() <= tol,
                        "threads={threads} schur ({i},{j}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_solver_agrees_with_serial() {
        let (p, blocks) = stochastic_problem(5, 0.8f64.exp());
        let serial = BlockAngularSolver::new(blocks.clone(), InteriorPointOptions::default())
            .solve(&p)
            .unwrap();
        let opts = InteriorPointOptions {
            threads: 3,
            ..InteriorPointOptions::default()
        };
        let parallel = BlockAngularSolver::new(blocks, opts).solve(&p).unwrap();
        assert_eq!(serial.status, SolveStatus::Optimal);
        assert_eq!(parallel.status, SolveStatus::Optimal);
        assert_eq!(serial.iterations, parallel.iterations);
        assert!(
            (serial.objective - parallel.objective).abs() < 1e-8,
            "serial {} vs parallel {}",
            serial.objective,
            parallel.objective
        );
    }

    #[test]
    fn warm_start_reconverges_in_fewer_iterations() {
        let (p, blocks) = stochastic_problem(5, 0.8f64.exp());
        let solver = BlockAngularSolver::new(blocks, InteriorPointOptions::default());
        let cold = solver.solve(&p).unwrap();
        assert_eq!(cold.status, SolveStatus::Optimal);
        let warm_state = cold
            .warm
            .as_ref()
            .expect("Optimal solve captures a warm start");
        let warm = solver.solve_with_warm(&p, Some(warm_state)).unwrap();
        assert_eq!(warm.status, SolveStatus::Optimal);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} iterations vs cold {}",
            warm.iterations,
            cold.iterations
        );
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    #[test]
    fn invalid_warm_start_is_ignored() {
        let (p, blocks) = stochastic_problem(4, 0.6f64.exp());
        let solver = BlockAngularSolver::new(blocks, InteriorPointOptions::default());
        let cold = solver.solve(&p).unwrap();
        let bogus = WarmStart {
            x: vec![1.0; 3], // wrong length
            y: Vec::new(),
            s: vec![1.0; 3],
            mu: 1.0,
        };
        let with_bogus = solver.solve_with_warm(&p, Some(&bogus)).unwrap();
        assert_eq!(with_bogus.status, cold.status);
        assert_eq!(with_bogus.iterations, cold.iterations);
        assert_eq!(with_bogus.objective, cold.objective);
    }
}
