//! Primal–dual path-following interior-point solvers.
//!
//! The solver works on the mixed form
//!
//! ```text
//! minimize    cᵀx
//! subject to  G x ≤ h        (m_in inequality rows)
//!             E x = f        (m_eq equality rows)
//!             x ≥ 0
//! ```
//!
//! Every Newton step is reduced to a positive-definite system in the variables
//! only (size `n × n`), optionally exploiting a *block-angular* structure: when
//! every inequality row touches the variables of a single block, the Newton
//! matrix `Gᵀ·diag(λ/w)·G + diag(s/x)` is block diagonal and the equality rows
//! are handled through a small Schur complement.  The obfuscation LPs of the
//! CORGI paper have exactly this structure (Geo-Ind constraints live inside one
//! matrix column; row-stochasticity couples columns), which is what makes
//! K = 49…343 location instances tractable without an external solver.
//!
//! Steps use Mehrotra's predictor–corrector heuristic; the implementation follows
//! the standard infeasible-start formulation (see Wright, *Primal–Dual
//! Interior-Point Methods*, 1997).

use crate::{
    dense::DenseMatrix, ConstraintSense, LpError, LpProblem, LpSolution, LpSolver, SolveStatus,
};

/// Tuning knobs of the interior-point solvers.
#[derive(Debug, Clone, Copy)]
pub struct InteriorPointOptions {
    /// Maximum number of interior-point iterations.
    pub max_iterations: usize,
    /// Relative tolerance on primal/dual residuals and the complementarity gap.
    pub tolerance: f64,
    /// Diagonal regularization added to keep Cholesky factorizations stable.
    pub regularization: f64,
    /// Fraction of the distance to the boundary taken by each step (0 < τ < 1).
    pub step_fraction: f64,
}

impl Default for InteriorPointOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-8,
            regularization: 1e-10,
            step_fraction: 0.995,
        }
    }
}

/// General-purpose interior-point solver (single block).
#[derive(Debug, Clone)]
pub struct InteriorPointSolver {
    options: InteriorPointOptions,
}

impl InteriorPointSolver {
    /// Create a solver with the given options.
    pub fn new(options: InteriorPointOptions) -> Self {
        Self { options }
    }
}

impl Default for InteriorPointSolver {
    fn default() -> Self {
        Self::new(InteriorPointOptions::default())
    }
}

impl LpSolver for InteriorPointSolver {
    fn solve(&self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        let blocks = vec![(0..problem.num_vars()).collect::<Vec<_>>()];
        solve_ipm(problem, &blocks, &self.options, self.name())
    }

    fn name(&self) -> &'static str {
        "interior-point"
    }
}

/// Interior-point solver exploiting a block-angular structure.
///
/// `blocks` is a partition of the variable indices.  Every *inequality*
/// constraint must reference variables of one block only; equality constraints
/// may couple blocks freely.
#[derive(Debug, Clone)]
pub struct BlockAngularSolver {
    blocks: Vec<Vec<usize>>,
    options: InteriorPointOptions,
}

impl BlockAngularSolver {
    /// Create a solver for the given variable partition.
    pub fn new(blocks: Vec<Vec<usize>>, options: InteriorPointOptions) -> Self {
        Self { blocks, options }
    }
}

impl LpSolver for BlockAngularSolver {
    fn solve(&self, problem: &LpProblem) -> Result<LpSolution, LpError> {
        validate_blocks(&self.blocks, problem.num_vars())?;
        solve_ipm(problem, &self.blocks, &self.options, self.name())
    }

    fn name(&self) -> &'static str {
        "block-angular-ipm"
    }
}

fn validate_blocks(blocks: &[Vec<usize>], num_vars: usize) -> Result<(), LpError> {
    let mut seen = vec![false; num_vars];
    for block in blocks {
        for &v in block {
            if v >= num_vars {
                return Err(LpError::InvalidBlockStructure(format!(
                    "variable {v} out of range"
                )));
            }
            if seen[v] {
                return Err(LpError::InvalidBlockStructure(format!(
                    "variable {v} appears in more than one block"
                )));
            }
            seen[v] = true;
        }
    }
    if let Some(missing) = seen.iter().position(|s| !s) {
        return Err(LpError::InvalidBlockStructure(format!(
            "variable {missing} is not covered by any block"
        )));
    }
    Ok(())
}

/// Sparse row: (variable indices, coefficients).
struct SparseRow {
    idx: Vec<usize>,
    val: Vec<f64>,
}

impl SparseRow {
    fn dot(&self, x: &[f64]) -> f64 {
        self.idx
            .iter()
            .zip(self.val.iter())
            .map(|(&j, &a)| a * x[j])
            .sum()
    }

    /// y[idx] += alpha * val
    fn axpy_into(&self, alpha: f64, y: &mut [f64]) {
        for (&j, &a) in self.idx.iter().zip(self.val.iter()) {
            y[j] += alpha * a;
        }
    }
}

struct Prepared {
    n: usize,
    c: Vec<f64>,
    g: Vec<SparseRow>,
    h: Vec<f64>,
    e: Vec<SparseRow>,
    f: Vec<f64>,
    /// block id of every variable
    var_block: Vec<usize>,
    /// local index of every variable inside its block
    var_local: Vec<usize>,
    blocks: Vec<Vec<usize>>,
    /// inequality rows grouped by block
    g_by_block: Vec<Vec<usize>>,
    /// equality rows touching each block (for the Schur assembly)
    eq_by_block: Vec<Vec<usize>>,
}

fn prepare(problem: &LpProblem, blocks: &[Vec<usize>]) -> Result<Prepared, LpError> {
    let n = problem.num_vars();
    if n == 0 {
        return Err(LpError::EmptyProblem);
    }
    let mut var_block = vec![usize::MAX; n];
    let mut var_local = vec![usize::MAX; n];
    for (b, block) in blocks.iter().enumerate() {
        for (local, &v) in block.iter().enumerate() {
            var_block[v] = b;
            var_local[v] = local;
        }
    }

    let mut g = Vec::new();
    let mut h = Vec::new();
    let mut e = Vec::new();
    let mut f = Vec::new();
    for cons in problem.constraints() {
        let (idx, mut val): (Vec<usize>, Vec<f64>) = cons.coeffs.iter().copied().unzip();
        // Row equilibration: scale every constraint row to unit max-absolute
        // coefficient.  The feasible set is unchanged but the Newton systems stay
        // well-conditioned even when coefficients span many orders of magnitude
        // (the Geo-Ind bounds e^{ε·d} easily reach 10⁶ and beyond).
        let max_abs = val.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let scale = if max_abs > 0.0 { 1.0 / max_abs } else { 1.0 };
        for v in val.iter_mut() {
            *v *= scale;
        }
        let rhs = cons.rhs * scale;
        match cons.sense {
            ConstraintSense::Le => {
                g.push(SparseRow { idx, val });
                h.push(rhs);
            }
            ConstraintSense::Ge => {
                let val = val.into_iter().map(|a| -a).collect();
                g.push(SparseRow { idx, val });
                h.push(-rhs);
            }
            ConstraintSense::Eq => {
                e.push(SparseRow { idx, val });
                f.push(rhs);
            }
        }
    }

    // Group inequality rows by block and reject rows spanning blocks.
    let mut g_by_block = vec![Vec::new(); blocks.len()];
    for (ri, row) in g.iter().enumerate() {
        let mut row_block: Option<usize> = None;
        for &j in &row.idx {
            let b = var_block[j];
            match row_block {
                None => row_block = Some(b),
                Some(existing) if existing != b => {
                    return Err(LpError::ConstraintSpansBlocks { constraint: ri });
                }
                _ => {}
            }
        }
        // Rows with no variables are vacuous; attach to block 0.
        g_by_block[row_block.unwrap_or(0)].push(ri);
    }

    // Equality rows touching each block.
    let mut eq_by_block = vec![Vec::new(); blocks.len()];
    for (ri, row) in e.iter().enumerate() {
        let mut touched = vec![false; blocks.len()];
        for &j in &row.idx {
            touched[var_block[j]] = true;
        }
        for (b, t) in touched.iter().enumerate() {
            if *t {
                eq_by_block[b].push(ri);
            }
        }
    }

    Ok(Prepared {
        n,
        c: problem.objective().to_vec(),
        g,
        h,
        e,
        f,
        var_block,
        var_local,
        blocks: blocks.to_vec(),
        g_by_block,
        eq_by_block,
    })
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Solve the Newton system for a given right-hand side configuration.
///
/// Returns `(dx, dmu)`.
#[allow(clippy::too_many_arguments)]
fn newton_solve(
    prep: &Prepared,
    block_factors: &[DenseMatrix],
    schur_factor: &Option<DenseMatrix>,
    block_ez: &[DenseMatrix],
    rhs1: &[f64],
    r_p2: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let m_eq = prep.e.len();
    // t = M⁻¹ rhs1, blockwise.
    let mut t = vec![0.0; prep.n];
    for (b, block) in prep.blocks.iter().enumerate() {
        let local_rhs: Vec<f64> = block.iter().map(|&v| rhs1[v]).collect();
        let local_sol = block_factors[b].cholesky_solve(&local_rhs);
        for (local, &v) in block.iter().enumerate() {
            t[v] = local_sol[local];
        }
    }
    if m_eq == 0 {
        return (t, Vec::new());
    }
    // rhs_schur = E t − r_p2
    let mut rhs_schur = vec![0.0; m_eq];
    for (ri, row) in prep.e.iter().enumerate() {
        rhs_schur[ri] = row.dot(&t) - r_p2[ri];
    }
    let dmu = schur_factor
        .as_ref()
        .expect("Schur factor exists when equality rows are present")
        .cholesky_solve(&rhs_schur);
    // dx = M⁻¹ (rhs1 − Eᵀ dmu), blockwise, reusing the precomputed M_b⁻¹ E_bᵀ.
    let mut dx = vec![0.0; prep.n];
    for (b, block) in prep.blocks.iter().enumerate() {
        let active = &prep.eq_by_block[b];
        let ez = &block_ez[b]; // n_b × |active|: M_b⁻¹ E_bᵀ
        for (local, &v) in block.iter().enumerate() {
            let mut correction = 0.0;
            for (a_pos, &eq_row) in active.iter().enumerate() {
                correction += ez[(local, a_pos)] * dmu[eq_row];
            }
            dx[v] = t[v] - correction;
        }
    }
    (dx, dmu)
}

fn solve_ipm(
    problem: &LpProblem,
    blocks: &[Vec<usize>],
    opts: &InteriorPointOptions,
    solver_name: &'static str,
) -> Result<LpSolution, LpError> {
    let prep = prepare(problem, blocks)?;
    let n = prep.n;
    let m_in = prep.g.len();
    let m_eq = prep.e.len();

    // Primal and dual iterates, all strictly positive where required.
    let mut x = vec![1.0; n];
    let mut w = vec![1.0; m_in];
    let mut lam = vec![1.0; m_in];
    let mut s = vec![1.0; n];
    let mut mu_eq = vec![0.0; m_eq];

    let scale = 1.0
        + inf_norm(&prep.c)
            .max(inf_norm(&prep.h))
            .max(inf_norm(&prep.f));

    let mut iterations = 0usize;
    let mut status = SolveStatus::IterationLimit;
    // Track the best iterate seen so far (by a simple merit of residuals + gap);
    // if the path-following stalls or diverges later, return this point instead
    // of the last iterate.
    let mut best_x = x.clone();
    let mut best_merit = f64::INFINITY;

    for iter in 0..opts.max_iterations {
        iterations = iter + 1;

        // Residuals.
        let mut r_p1 = vec![0.0; m_in]; // h − Gx − w
        for (ri, row) in prep.g.iter().enumerate() {
            r_p1[ri] = prep.h[ri] - row.dot(&x) - w[ri];
        }
        let mut r_p2 = vec![0.0; m_eq]; // f − Ex
        for (ri, row) in prep.e.iter().enumerate() {
            r_p2[ri] = prep.f[ri] - row.dot(&x);
        }
        // resid_dual = c + Gᵀλ + Eᵀμ − s
        let mut resid_dual = prep.c.clone();
        for (ri, row) in prep.g.iter().enumerate() {
            row.axpy_into(lam[ri], &mut resid_dual);
        }
        for (ri, row) in prep.e.iter().enumerate() {
            row.axpy_into(mu_eq[ri], &mut resid_dual);
        }
        for j in 0..n {
            resid_dual[j] -= s[j];
        }

        let gap_terms = x.iter().zip(s.iter()).map(|(a, b)| a * b).sum::<f64>()
            + w.iter().zip(lam.iter()).map(|(a, b)| a * b).sum::<f64>();
        let denom = (n + m_in) as f64;
        let mu_gap = gap_terms / denom;

        let primal_err = inf_norm(&r_p1).max(inf_norm(&r_p2));
        let dual_err = inf_norm(&resid_dual);
        let merit = primal_err + dual_err + mu_gap;
        if merit.is_finite() && merit < best_merit {
            best_merit = merit;
            best_x.copy_from_slice(&x);
        }
        if primal_err <= opts.tolerance * scale
            && dual_err <= opts.tolerance * scale
            && mu_gap <= opts.tolerance * scale
        {
            status = SolveStatus::Optimal;
            break;
        }
        // Divergence guard: infeasible-start path following is not guaranteed to
        // converge on problems without a strictly feasible interior.  Stop and
        // report the iteration limit instead of looping; callers can check the
        // returned point's feasibility (or fall back to the simplex).
        if !mu_gap.is_finite() || mu_gap > 1e14 || primal_err > 1e14 || dual_err > 1e14 {
            status = SolveStatus::IterationLimit;
            break;
        }

        // Assemble and factor the block-diagonal Newton matrix
        // M_b = G_bᵀ diag(λ/w) G_b + diag(s/x).
        let mut block_factors = Vec::with_capacity(prep.blocks.len());
        for (b, block) in prep.blocks.iter().enumerate() {
            let nb = block.len();
            let mut mb = DenseMatrix::zeros(nb, nb);
            for &ri in &prep.g_by_block[b] {
                let row = &prep.g[ri];
                // Cap the barrier weights: near convergence the slack of an active
                // constraint underflows and λ/w would overflow to infinity, which
                // would poison the Cholesky factorization.  The cap acts as an
                // implicit proximal regularization and does not change the limit.
                let weight = (lam[ri] / w[ri]).min(1e10);
                let local_idx: Vec<usize> =
                    row.idx.iter().map(|&v| prep.var_local[v]).collect();
                mb.add_scaled_outer_sparse(&local_idx, &row.val, weight);
            }
            for (local, &v) in block.iter().enumerate() {
                mb.add_diagonal(local, (s[v] / x[v]).min(1e10));
            }
            mb.cholesky_in_place(opts.regularization)?;
            block_factors.push(mb);
        }

        // Precompute M_b⁻¹ E_bᵀ and the Schur complement S = E M⁻¹ Eᵀ (+ reg I).
        let mut block_ez = Vec::with_capacity(prep.blocks.len());
        let mut schur_factor = None;
        if m_eq > 0 {
            let mut schur = DenseMatrix::zeros(m_eq, m_eq);
            for (b, block) in prep.blocks.iter().enumerate() {
                let nb = block.len();
                let active = &prep.eq_by_block[b];
                let mut ebt = DenseMatrix::zeros(nb, active.len());
                for (a_pos, &eq_row) in active.iter().enumerate() {
                    let row = &prep.e[eq_row];
                    for (&v, &a) in row.idx.iter().zip(row.val.iter()) {
                        if prep.var_block[v] == b {
                            ebt[(prep.var_local[v], a_pos)] = a;
                        }
                    }
                }
                let z = block_factors[b].cholesky_solve_matrix(&ebt); // n_b × |active|
                // schur[active, active] += E_b · z  (E_b = ebtᵀ)
                for (a_pos, &eq_a) in active.iter().enumerate() {
                    for (b_pos, &eq_b) in active.iter().enumerate() {
                        let mut v = 0.0;
                        for local in 0..nb {
                            v += ebt[(local, a_pos)] * z[(local, b_pos)];
                        }
                        schur[(eq_a, eq_b)] += v;
                    }
                }
                block_ez.push(z);
            }
            for i in 0..m_eq {
                schur.add_diagonal(i, opts.regularization.max(1e-12));
            }
            schur.cholesky_in_place(opts.regularization)?;
            schur_factor = Some(schur);
        } else {
            for block in &prep.blocks {
                block_ez.push(DenseMatrix::zeros(block.len(), 0));
            }
        }

        // rd3 = −resid_dual
        let rd3: Vec<f64> = resid_dual.iter().map(|v| -v).collect();

        // ---- Affine (predictor) direction: σ = 0, no corrector. ----
        let build_rhs1 = |rc1: &[f64], rc2: &[f64]| -> Vec<f64> {
            let mut rhs1 = rd3.clone();
            // + Gᵀ((λ/w)·r_p1 − rc2/w)
            for (ri, row) in prep.g.iter().enumerate() {
                let u = (lam[ri] / w[ri]) * r_p1[ri] - rc2[ri] / w[ri];
                row.axpy_into(u, &mut rhs1);
            }
            // + rc1/x
            for j in 0..n {
                rhs1[j] += rc1[j] / x[j];
            }
            rhs1
        };

        let rc1_aff: Vec<f64> = x.iter().zip(s.iter()).map(|(xi, si)| -xi * si).collect();
        let rc2_aff: Vec<f64> = w.iter().zip(lam.iter()).map(|(wi, li)| -wi * li).collect();
        let rhs1_aff = build_rhs1(&rc1_aff, &rc2_aff);
        let (dx_aff, _) = newton_solve(
            &prep,
            &block_factors,
            &schur_factor,
            &block_ez,
            &rhs1_aff,
            &r_p2,
        );
        let mut dw_aff = vec![0.0; m_in];
        let mut dlam_aff = vec![0.0; m_in];
        for (ri, row) in prep.g.iter().enumerate() {
            dw_aff[ri] = r_p1[ri] - row.dot(&dx_aff);
            dlam_aff[ri] = (rc2_aff[ri] - lam[ri] * dw_aff[ri]) / w[ri];
        }
        let mut ds_aff = vec![0.0; n];
        for j in 0..n {
            ds_aff[j] = (rc1_aff[j] - s[j] * dx_aff[j]) / x[j];
        }

        let step_to_boundary = |v: &[f64], dv: &[f64]| -> f64 {
            let mut alpha = 1.0f64;
            for (vi, di) in v.iter().zip(dv.iter()) {
                if *di < 0.0 {
                    alpha = alpha.min(-vi / di);
                }
            }
            alpha
        };
        let alpha_p_aff = step_to_boundary(&x, &dx_aff).min(step_to_boundary(&w, &dw_aff));
        let alpha_d_aff = step_to_boundary(&s, &ds_aff).min(step_to_boundary(&lam, &dlam_aff));

        // Mehrotra centering parameter.
        let mut gap_aff = 0.0;
        for j in 0..n {
            gap_aff += (x[j] + alpha_p_aff * dx_aff[j]) * (s[j] + alpha_d_aff * ds_aff[j]);
        }
        for ri in 0..m_in {
            gap_aff += (w[ri] + alpha_p_aff * dw_aff[ri]) * (lam[ri] + alpha_d_aff * dlam_aff[ri]);
        }
        let mu_aff = gap_aff / denom;
        let sigma = if mu_gap > 0.0 {
            ((mu_aff / mu_gap).powi(3)).clamp(1e-8, 1.0)
        } else {
            0.0
        };

        // ---- Corrector direction. ----
        let rc1: Vec<f64> = (0..n)
            .map(|j| sigma * mu_gap - x[j] * s[j] - dx_aff[j] * ds_aff[j])
            .collect();
        let rc2: Vec<f64> = (0..m_in)
            .map(|ri| sigma * mu_gap - w[ri] * lam[ri] - dw_aff[ri] * dlam_aff[ri])
            .collect();
        let rhs1 = build_rhs1(&rc1, &rc2);
        let (dx, dmu) = newton_solve(
            &prep,
            &block_factors,
            &schur_factor,
            &block_ez,
            &rhs1,
            &r_p2,
        );
        let mut dw = vec![0.0; m_in];
        let mut dlam = vec![0.0; m_in];
        for (ri, row) in prep.g.iter().enumerate() {
            dw[ri] = r_p1[ri] - row.dot(&dx);
            dlam[ri] = (rc2[ri] - lam[ri] * dw[ri]) / w[ri];
        }
        let mut ds = vec![0.0; n];
        for j in 0..n {
            ds[j] = (rc1[j] - s[j] * dx[j]) / x[j];
        }

        let alpha_p = (opts.step_fraction * step_to_boundary(&x, &dx).min(step_to_boundary(&w, &dw)))
            .min(1.0);
        let alpha_d = (opts.step_fraction
            * step_to_boundary(&s, &ds).min(step_to_boundary(&lam, &dlam)))
        .min(1.0);

        // A tiny positive floor keeps the barrier quantities away from exact zero
        // (which would otherwise produce 0/0 in later iterations once a variable
        // converges to an active bound and underflows).
        const FLOOR: f64 = 1e-30;
        for j in 0..n {
            x[j] = (x[j] + alpha_p * dx[j]).max(FLOOR);
            s[j] = (s[j] + alpha_d * ds[j]).max(FLOOR);
        }
        for ri in 0..m_in {
            w[ri] = (w[ri] + alpha_p * dw[ri]).max(FLOOR);
            lam[ri] = (lam[ri] + alpha_d * dlam[ri]).max(FLOOR);
        }
        for (ri, d) in dmu.iter().enumerate() {
            mu_eq[ri] += alpha_d * d;
        }
        if x.iter().any(|v| !v.is_finite()) {
            // Numerical breakdown: stop and fall back to the best iterate.
            status = SolveStatus::IterationLimit;
            break;
        }
    }

    let x = if status == SolveStatus::Optimal { x } else { best_x };
    let objective = problem.objective_value(&x);
    Ok(LpSolution {
        status,
        objective,
        x,
        iterations,
        solver: solver_name.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimplexSolver;

    fn ipm() -> InteriorPointSolver {
        InteriorPointSolver::default()
    }

    #[test]
    fn matches_simplex_on_small_inequality_problem() {
        // max 3x + 5y (as min of the negation) from the simplex tests.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![-3.0, -5.0]).unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Le, 4.0).unwrap();
        p.add_constraint(vec![(1, 2.0)], ConstraintSense::Le, 12.0).unwrap();
        p.add_constraint(vec![(0, 3.0), (1, 2.0)], ConstraintSense::Le, 18.0).unwrap();
        let s = ipm().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective + 36.0).abs() < 1e-5, "objective {}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-4);
        assert!((s.x[1] - 6.0).abs() < 1e-4);
    }

    #[test]
    fn handles_equality_constraints() {
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![1.0, 2.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 10.0).unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 3.0).unwrap();
        let s = ipm().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-5);
        assert!(p.is_feasible(&s.x, 1e-5));
    }

    #[test]
    fn transportation_problem_matches_simplex() {
        let mut p = LpProblem::new(4);
        p.set_objective_vector(vec![1.0, 3.0, 2.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 3.0).unwrap();
        p.add_constraint(vec![(2, 1.0), (3, 1.0)], ConstraintSense::Eq, 4.0).unwrap();
        p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, 2.0).unwrap();
        p.add_constraint(vec![(1, 1.0), (3, 1.0)], ConstraintSense::Eq, 5.0).unwrap();
        let ipm_sol = ipm().solve(&p).unwrap();
        let spx_sol = SimplexSolver::new().solve(&p).unwrap();
        assert_eq!(ipm_sol.status, SolveStatus::Optimal);
        assert!((ipm_sol.objective - spx_sol.objective).abs() < 1e-5);
        assert!(p.is_feasible(&ipm_sol.x, 1e-5));
    }

    #[test]
    fn block_solver_matches_general_solver() {
        // Two independent 2-variable blocks coupled by one equality.
        // min x0 + 2x1 + 3x2 + x3
        //  s.t. x0 + x1 ≤ 4        (block 0)
        //       x2 + 2x3 ≤ 6       (block 1)
        //       x0 + x2 = 3        (coupling)
        //       x1 + x3 ≥ 1 … as −x1 − x3 ≤ −1 spans blocks, so keep it equality-free:
        //       use x1 = 1 instead (equality, couples nothing extra).
        let build = || {
            let mut p = LpProblem::new(4);
            p.set_objective_vector(vec![1.0, 2.0, 3.0, 1.0]).unwrap();
            p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 4.0).unwrap();
            p.add_constraint(vec![(2, 1.0), (3, 2.0)], ConstraintSense::Le, 6.0).unwrap();
            p.add_constraint(vec![(0, 1.0), (2, 1.0)], ConstraintSense::Eq, 3.0).unwrap();
            p.add_constraint(vec![(1, 1.0)], ConstraintSense::Eq, 1.0).unwrap();
            p
        };
        let p = build();
        let general = ipm().solve(&p).unwrap();
        let block = BlockAngularSolver::new(
            vec![vec![0, 1], vec![2, 3]],
            InteriorPointOptions::default(),
        )
        .solve(&p)
        .unwrap();
        let spx = SimplexSolver::new().solve(&p).unwrap();
        assert_eq!(block.status, SolveStatus::Optimal);
        assert!((general.objective - spx.objective).abs() < 1e-5);
        assert!((block.objective - spx.objective).abs() < 1e-5);
        assert!(p.is_feasible(&block.x, 1e-5));
    }

    #[test]
    fn block_solver_rejects_spanning_inequality() {
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![1.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Le, 1.0).unwrap();
        let solver =
            BlockAngularSolver::new(vec![vec![0], vec![1]], InteriorPointOptions::default());
        assert!(matches!(
            solver.solve(&p),
            Err(LpError::ConstraintSpansBlocks { constraint: 0 })
        ));
    }

    #[test]
    fn block_structure_validation() {
        let mut p = LpProblem::new(3);
        p.set_objective_vector(vec![1.0; 3]).unwrap();
        p.add_constraint(vec![(0, 1.0)], ConstraintSense::Ge, 1.0).unwrap();
        // Missing variable 2.
        let solver =
            BlockAngularSolver::new(vec![vec![0], vec![1]], InteriorPointOptions::default());
        assert!(matches!(
            solver.solve(&p),
            Err(LpError::InvalidBlockStructure(_))
        ));
        // Duplicate variable.
        let solver =
            BlockAngularSolver::new(vec![vec![0, 1], vec![1, 2]], InteriorPointOptions::default());
        assert!(matches!(
            solver.solve(&p),
            Err(LpError::InvalidBlockStructure(_))
        ));
    }

    #[test]
    fn empty_problem_rejected() {
        let p = LpProblem::new(0);
        assert!(matches!(ipm().solve(&p), Err(LpError::EmptyProblem)));
    }

    #[test]
    fn pure_equality_problem() {
        // min x + y s.t. x + y = 2, x − y = 0 ⇒ x = y = 1.
        let mut p = LpProblem::new(2);
        p.set_objective_vector(vec![1.0, 1.0]).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintSense::Eq, 2.0).unwrap();
        p.add_constraint(vec![(0, 1.0), (1, -1.0)], ConstraintSense::Eq, 0.0).unwrap();
        let s = ipm().solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.x[0] - 1.0).abs() < 1e-5);
        assert!((s.x[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn stochastic_row_problem_like_obfuscation_lp() {
        // A miniature of the paper's LP: a 3×3 row-stochastic matrix (9 variables),
        // minimize a cost, subject to per-column ratio constraints and row sums = 1.
        let k = 3usize;
        let var = |i: usize, j: usize| i * k + j;
        let mut p = LpProblem::new(k * k);
        // Cost: moving probability mass away from the diagonal is expensive.
        for i in 0..k {
            for j in 0..k {
                let cost = (i as f64 - j as f64).abs();
                p.set_objective(var(i, j), cost).unwrap();
            }
        }
        // Row sums = 1.
        for i in 0..k {
            let coeffs = (0..k).map(|j| (var(i, j), 1.0)).collect();
            p.add_constraint(coeffs, ConstraintSense::Eq, 1.0).unwrap();
        }
        // Geo-Ind-like ratio constraints within each column: z_ij ≤ e^(0.5)·z_lj.
        let factor = 0.5f64.exp();
        for j in 0..k {
            for i in 0..k {
                for l in 0..k {
                    if i != l {
                        p.add_constraint(
                            vec![(var(i, j), 1.0), (var(l, j), -factor)],
                            ConstraintSense::Le,
                            0.0,
                        )
                        .unwrap();
                    }
                }
            }
        }
        let spx = SimplexSolver::new().solve(&p).unwrap();
        let general = ipm().solve(&p).unwrap();
        let blocks: Vec<Vec<usize>> = (0..k).map(|j| (0..k).map(|i| var(i, j)).collect()).collect();
        let block = BlockAngularSolver::new(blocks, InteriorPointOptions::default())
            .solve(&p)
            .unwrap();
        assert_eq!(spx.status, SolveStatus::Optimal);
        assert_eq!(general.status, SolveStatus::Optimal);
        assert_eq!(block.status, SolveStatus::Optimal);
        assert!((general.objective - spx.objective).abs() < 1e-4,
            "ipm {} vs simplex {}", general.objective, spx.objective);
        assert!((block.objective - spx.objective).abs() < 1e-4,
            "block {} vs simplex {}", block.objective, spx.objective);
        assert!(p.is_feasible(&block.x, 1e-5));
    }
}
