//! The serving stack: [`MatrixService`] and its layered implementations.
//!
//! The paper's deployment (Section 5, Fig. 1) is one untrusted server producing
//! privacy forests for many users, so the serving API is an abstract trait with
//! three compositional layers:
//!
//! * [`ForestGenerator`] — the raw compute path of Algorithm 3; the K
//!   independent per-subtree LP solves fan out across a fixed-size
//!   [`ThreadPool`](crate::ThreadPool);
//! * [`CachingService`] — a sharded, capacity-bounded LRU keyed by
//!   `(privacy_level, δ)` with single-flight deduplication, so N concurrent
//!   requests for the same key trigger exactly one generation;
//! * [`InstrumentedService`] — per-request latency and error counters surfaced
//!   as a [`ServiceStats`] snapshot.
//!
//! A production stack composes them inside an `Arc<dyn MatrixService>`:
//! `InstrumentedService<CachingService<ForestGenerator>>`.

use crate::messages::{
    ForestEntry, MatrixRequest, PrivacyForestResponse, RequestEnvelope, ResponseEnvelope,
    ServiceError, PROTOCOL_VERSION,
};
use crate::pool::ThreadPool;
use crate::server::ServerConfig;
use corgi_core::{
    generate_robust_matrix_warm, CorgiError, LocationTree, ObfuscationProblem, RobustConfig,
    SolverKind, Subtree, WarmStart,
};
use corgi_datagen::PriorDistribution;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The abstract serving boundary of the CORGI server (step ④/⑤ of Fig. 1).
///
/// Implementations are layered by composition; callers hold the stack as an
/// `Arc<dyn MatrixService>` and stay agnostic of caching, instrumentation or
/// the compute path behind it.
///
/// ```
/// use corgi_framework::messages::{MatrixRequest, RequestEnvelope};
/// use corgi_framework::{CachingService, ForestGenerator, MatrixService, ServerConfig};
/// use corgi_core::LocationTree;
/// use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
/// use corgi_hexgrid::{HexGrid, HexGridConfig};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = HexGrid::new(HexGridConfig::san_francisco())?;
/// let (dataset, _) =
///     GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
/// let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
/// let config = ServerConfig::builder().epsilon(15.0).targets_per_subtree(5).build();
///
/// // Compose the serving stack behind the trait object.
/// let service: Arc<dyn MatrixService> = Arc::new(CachingService::with_defaults(
///     ForestGenerator::new(LocationTree::new(grid), prior, config),
/// ));
///
/// // Wire-level entry point: versioned envelope in, versioned envelope out.
/// let request = MatrixRequest { privacy_level: 1, delta: 0 };
/// let reply = service.handle_envelope(&RequestEnvelope::new(7, request));
/// assert_eq!(reply.request_id, 7);
/// let forest = reply.into_result()?;
/// assert_eq!(forest.entries.len(), 49); // one matrix per level-1 subtree
/// # Ok(())
/// # }
/// ```
pub trait MatrixService: Send + Sync {
    /// Serve a privacy-forest request (Algorithm 3).
    ///
    /// The response is shared (`Arc`) so caching layers can hand the same
    /// generated forest to any number of concurrent callers.
    fn privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError>;

    /// The public location tree shared with clients (step ② of Fig. 1).
    fn tree(&self) -> Arc<LocationTree>;

    /// The public prior distribution over leaf cells.
    fn prior(&self) -> Arc<PriorDistribution>;

    /// Wire-level entry point: checks protocol compatibility, dispatches to
    /// [`MatrixService::privacy_forest`] and wraps the outcome in a versioned
    /// [`ResponseEnvelope`] echoing the request id.
    fn handle_envelope(&self, envelope: &RequestEnvelope) -> ResponseEnvelope {
        if !PROTOCOL_VERSION.is_compatible_with(&envelope.version) {
            return ResponseEnvelope::error(
                envelope.request_id,
                ServiceError::unsupported_version(envelope.version),
            );
        }
        match self.privacy_forest(envelope.request) {
            Ok(forest) => ResponseEnvelope::forest(envelope.request_id, forest),
            Err(error) => ResponseEnvelope::error(envelope.request_id, error),
        }
    }

    /// Offer an already-solved forest (replicated from a cluster peer) to this
    /// service's cache without running a generation.
    ///
    /// The default declines ([`WarmInsertOutcome::Unsupported`]) — only a
    /// caching layer can retain the forest; wrappers forward to their inner
    /// service.
    fn warm_insert(&self, forest: Arc<PrivacyForestResponse>) -> WarmInsertOutcome {
        let _ = forest;
        WarmInsertOutcome::Unsupported
    }

    /// A snapshot of the cache counters of the stack, if any layer caches.
    ///
    /// This is what a server reports in a wire `StatsReply`; the default
    /// (`None`) marks a stack without a caching layer.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// The `(privacy_level, δ)` keys currently resident in the stack's cache,
    /// in no particular order.
    ///
    /// This is the anti-entropy digest source (protocol 1.5): a recovering
    /// peer compares a healthy shard's resident keys against its own and pulls
    /// the diff.  The default (empty) marks a stack without a caching layer.
    fn resident_keys(&self) -> Vec<MatrixRequest> {
        Vec::new()
    }

    /// The cached forest for `request`, if resident — a pure peek: no
    /// generation, no hit/miss accounting, no LRU touch.
    ///
    /// Digest pulls use this so serving anti-entropy traffic never perturbs
    /// the cache counters or recency order.  The default (`None`) marks a
    /// stack without a caching layer.
    fn resident(&self, request: MatrixRequest) -> Option<Arc<PrivacyForestResponse>> {
        let _ = request;
        None
    }

    /// A monotonic generation counter bumped on every cache insert, tagging
    /// digest replies so a puller can tell whether a peer's summary is stale.
    ///
    /// The default (0) marks a stack without a caching layer.
    fn cache_generation(&self) -> u64 {
        0
    }
}

/// Outcome of [`MatrixService::warm_insert`]: what a service did with a forest
/// replicated from a cluster peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmInsertOutcome {
    /// The forest is now resident; a future request for its key is a hit.
    Inserted,
    /// The key was already cached — the push deduplicated.
    AlreadyResident,
    /// No layer of the stack caches; the forest was dropped.
    Unsupported,
}

impl<S: MatrixService + ?Sized> MatrixService for Arc<S> {
    fn privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        (**self).privacy_forest(request)
    }

    fn tree(&self) -> Arc<LocationTree> {
        (**self).tree()
    }

    fn prior(&self) -> Arc<PriorDistribution> {
        (**self).prior()
    }

    fn handle_envelope(&self, envelope: &RequestEnvelope) -> ResponseEnvelope {
        (**self).handle_envelope(envelope)
    }

    fn warm_insert(&self, forest: Arc<PrivacyForestResponse>) -> WarmInsertOutcome {
        (**self).warm_insert(forest)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        (**self).cache_stats()
    }

    fn resident_keys(&self) -> Vec<MatrixRequest> {
        (**self).resident_keys()
    }

    fn resident(&self, request: MatrixRequest) -> Option<Arc<PrivacyForestResponse>> {
        (**self).resident(request)
    }

    fn cache_generation(&self) -> u64 {
        (**self).cache_generation()
    }
}

// ---------------------------------------------------------------------------
// ForestGenerator — the raw compute path
// ---------------------------------------------------------------------------

/// The raw compute path of Algorithm 3: owns the location tree, the public
/// prior and the server configuration, and generates one robust matrix per
/// subtree of the requested privacy forest.
///
/// The K subtree LPs are independent, so they fan out across a fixed-size
/// worker pool sized by [`ServerConfig::worker_threads`] (0 = one worker per
/// available core).  Generation is deterministic: the per-subtree target seed
/// is derived from `target_seed ^ subtree_root`, so the same configuration
/// yields bit-identical forests on any pool size, including the serial path.
pub struct ForestGenerator {
    tree: Arc<LocationTree>,
    prior: Arc<PriorDistribution>,
    config: ServerConfig,
    pool: ThreadPool,
    seeds: Arc<WarmSeedStore>,
}

impl ForestGenerator {
    /// Create a generator over a location tree with a public prior distribution.
    pub fn new(tree: LocationTree, prior: PriorDistribution, config: ServerConfig) -> Self {
        Self {
            pool: ThreadPool::new(config.worker_threads),
            tree: Arc::new(tree),
            prior: Arc::new(prior),
            config,
            seeds: Arc::new(WarmSeedStore::default()),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of worker threads solving subtree LPs.
    pub fn worker_threads(&self) -> usize {
        self.pool.threads()
    }

    /// Warm-start statistics of the generator's seed store: how many subtree
    /// solves were seeded from a neighbouring `(privacy_level, δ)` iterate vs
    /// started cold.
    pub fn warm_stats(&self) -> WarmSeedStats {
        self.seeds.stats()
    }

    /// Generate the privacy forest for a request, fanning the per-subtree LP
    /// solves out across the worker pool.
    pub fn generate(&self, request: MatrixRequest) -> Result<PrivacyForestResponse, CorgiError> {
        let forest = self.tree.privacy_forest(request.privacy_level)?;
        let tasks: Vec<_> = forest
            .into_iter()
            .map(|subtree| {
                let tree = Arc::clone(&self.tree);
                let prior = Arc::clone(&self.prior);
                let config = self.config;
                let seeds = Arc::clone(&self.seeds);
                move || solve_subtree(&tree, &prior, &config, &seeds, &subtree, request)
            })
            .collect();
        let entries = self
            .pool
            .try_run_ordered(tasks)
            .into_iter()
            // A panicking subtree solve becomes a structured solver error (and
            // the worker survives) instead of unwinding through a long-lived
            // serving thread.
            .map(|outcome| {
                outcome.unwrap_or_else(|panic| Err(CorgiError::Solver(panic.to_string())))
            })
            .collect::<Result<Vec<ForestEntry>, CorgiError>>()?;
        Ok(PrivacyForestResponse {
            request,
            epsilon: self.config.epsilon,
            entries,
        })
    }

    /// Generate the privacy forest on the calling thread, one subtree at a
    /// time.  Produces bit-identical output to [`ForestGenerator::generate`]
    /// given the same warm-seed history (the subtrees of one request have
    /// distinct roots, so the per-subtree seed lookups never observe the same
    /// request's own inserts on either path); kept as the baseline for the
    /// concurrent-vs-serial benchmark.
    pub fn generate_serial(
        &self,
        request: MatrixRequest,
    ) -> Result<PrivacyForestResponse, CorgiError> {
        let forest = self.tree.privacy_forest(request.privacy_level)?;
        let entries = forest
            .iter()
            .map(|subtree| {
                solve_subtree(
                    &self.tree,
                    &self.prior,
                    &self.config,
                    &self.seeds,
                    subtree,
                    request,
                )
            })
            .collect::<Result<Vec<ForestEntry>, CorgiError>>()?;
        Ok(PrivacyForestResponse {
            request,
            epsilon: self.config.epsilon,
            entries,
        })
    }

    /// Build the LP instance for one subtree: restricted prior + randomly chosen
    /// target locations (the paper samples `NR_TARGET` leaf nodes as targets).
    ///
    /// The shuffle seed is derived from `target_seed ^ subtree_root`, so
    /// distinct subtrees pick distinct target index sets while the whole forest
    /// stays deterministic.
    pub fn problem_for_subtree(&self, subtree: &Subtree) -> Result<ObfuscationProblem, CorgiError> {
        problem_for_subtree(&self.tree, &self.prior, &self.config, subtree)
    }
}

impl MatrixService for ForestGenerator {
    fn privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        Ok(Arc::new(self.generate(request)?))
    }

    fn tree(&self) -> Arc<LocationTree> {
        Arc::clone(&self.tree)
    }

    fn prior(&self) -> Arc<PriorDistribution> {
        Arc::clone(&self.prior)
    }
}

fn solve_subtree(
    tree: &LocationTree,
    prior: &PriorDistribution,
    config: &ServerConfig,
    seeds: &WarmSeedStore,
    subtree: &Subtree,
    request: MatrixRequest,
) -> Result<ForestEntry, CorgiError> {
    let problem = problem_for_subtree(tree, prior, config, subtree)?;
    let root = subtree.root();
    let seed = seeds.nearest(request.privacy_level, root.pack(), request.delta);
    let run = generate_robust_matrix_warm(
        &problem,
        &RobustConfig {
            delta: request.delta,
            iterations: if request.delta == 0 {
                0
            } else {
                config.robust_iterations
            },
            solver: SolverKind::Auto,
        },
        seed.as_ref(),
    )?;
    if let Some(warm) = run.warm {
        seeds.insert(request.privacy_level, root.pack(), request.delta, warm);
    }
    Ok(ForestEntry {
        subtree_root: root,
        matrix: run.matrix,
    })
}

fn problem_for_subtree(
    tree: &LocationTree,
    prior: &PriorDistribution,
    config: &ServerConfig,
    subtree: &Subtree,
) -> Result<ObfuscationProblem, CorgiError> {
    let leaves = subtree.leaves();
    let restricted = prior
        .restricted_to(tree.grid(), leaves)
        .unwrap_or_else(|| vec![1.0 / leaves.len() as f64; leaves.len()]);
    // XOR-ing in the packed root makes the seed unique per subtree; the old
    // shared seed made all same-sized subtrees pick identical target index sets.
    let mut rng = StdRng::seed_from_u64(config.target_seed ^ subtree.root().pack());
    let mut indices: Vec<usize> = (0..leaves.len()).collect();
    indices.shuffle(&mut rng);
    let n_targets = config.targets_per_subtree.clamp(1, leaves.len());
    let targets: Vec<usize> = indices.into_iter().take(n_targets).collect();
    ObfuscationProblem::new(
        tree,
        subtree,
        &restricted,
        &targets,
        config.epsilon,
        config.graph_approximation,
    )
}

// ---------------------------------------------------------------------------
// WarmSeedStore — neighbour warm-start seeds for the subtree LPs
// ---------------------------------------------------------------------------

/// Upper bound on stored iterates per `(privacy_level, subtree_root)` key:
/// enough to keep a few δ-neighbours around without the store growing with
/// every δ ever requested.
const MAX_SEEDS_PER_KEY: usize = 4;

/// Stored iterates per `(privacy_level, subtree)` key, each tagged with the
/// δ it converged at.
type SeedsByDelta = Mutex<HashMap<(u8, u64), Vec<(usize, WarmStart)>>>;

/// Cross-request store of converged interior-point iterates, keyed by
/// `(privacy_level, packed subtree root)` and tagged with the δ they solved.
///
/// Grid-adjacent `(privacy_level, δ)` requests solve the *same* subtree LPs
/// under slightly different reserved-budget tightenings, so each subtree solve
/// seeds from the stored iterate of the nearest already-solved δ for that
/// subtree — turning a whole-grid warm-up into one cold solve plus cheap
/// refinements per subtree, and letting an online cold miss start from its
/// nearest cached neighbour.  Lookups take the minimum `|Δδ|` (ties: the
/// smaller δ, making the sweep order deterministic); inserts replace the
/// same-δ entry or evict the entry farthest from the new δ once the per-key
/// bound is reached.
#[derive(Default)]
struct WarmSeedStore {
    seeds: SeedsByDelta,
    warm_started: AtomicU64,
    cold: AtomicU64,
}

/// Counters of [`ForestGenerator::warm_stats`]: subtree solves seeded from a
/// stored neighbour iterate vs started cold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmSeedStats {
    /// Subtree solves that started from a neighbouring `(privacy_level, δ)`
    /// converged iterate.
    pub warm_started: u64,
    /// Subtree solves with no usable neighbour seed (cold interior point).
    pub cold: u64,
}

impl WarmSeedStore {
    /// The stored iterate nearest (by `|Δδ|`) to `delta` for this subtree,
    /// counting the outcome in the warm/cold counters.
    fn nearest(&self, level: u8, root: u64, delta: usize) -> Option<WarmStart> {
        let seeds = self.seeds.lock().expect("warm seed store poisoned");
        let found = seeds.get(&(level, root)).and_then(|entries| {
            entries
                .iter()
                .min_by_key(|(d, _)| (d.abs_diff(delta), *d))
                .map(|(_, warm)| warm.clone())
        });
        drop(seeds);
        if found.is_some() {
            self.warm_started.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cold.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn insert(&self, level: u8, root: u64, delta: usize, warm: WarmStart) {
        let mut seeds = self.seeds.lock().expect("warm seed store poisoned");
        let entries = seeds.entry((level, root)).or_default();
        if let Some(slot) = entries.iter_mut().find(|(d, _)| *d == delta) {
            slot.1 = warm;
            return;
        }
        entries.push((delta, warm));
        if entries.len() > MAX_SEEDS_PER_KEY {
            // Evict the entry farthest from the δ just inserted (ties: the
            // larger δ goes), keeping the closest neighbourhood around.
            if let Some(pos) = entries
                .iter()
                .enumerate()
                .max_by_key(|(_, (d, _))| (d.abs_diff(delta), *d))
                .map(|(pos, _)| pos)
            {
                entries.swap_remove(pos);
            }
        }
    }

    fn stats(&self) -> WarmSeedStats {
        WarmSeedStats {
            warm_started: self.warm_started.load(Ordering::Relaxed),
            cold: self.cold.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// CachingService — sharded bounded LRU + single-flight
// ---------------------------------------------------------------------------

type CacheKey = (u8, usize);

/// Configuration of a [`CachingService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached forests across all shards (≥ 1); the capacity
    /// is split exactly over the shards, so total residency never exceeds it.
    pub capacity: usize,
    /// Number of independent shards the key space is hashed over (≥ 1; clamped
    /// to `capacity` so no shard ends up with zero slots).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            shards: 8,
        }
    }
}

/// Counters describing cache behaviour since construction.
///
/// Serializable since protocol 1.4: a server reports its caching layer's
/// counters inside a wire `StatsReply` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to generate (or wait for) a fresh forest.
    pub misses: u64,
    /// Misses that piggybacked on an identical in-flight generation.
    pub coalesced: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct CacheShard {
    entries: HashMap<CacheKey, (Arc<PrivacyForestResponse>, u64)>,
    tick: u64,
    capacity: usize,
}

/// State of one in-flight generation, shared between the leader computing it
/// and any followers waiting for the same key.
struct Flight {
    slot: Mutex<Option<Result<Arc<PrivacyForestResponse>, ServiceError>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<Arc<PrivacyForestResponse>, ServiceError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A sharded, capacity-bounded LRU cache over `(privacy_level, δ)` keys with
/// single-flight deduplication.
///
/// * **Sharding** — keys hash onto independent shards so concurrent requests
///   for different keys never contend on one lock.
/// * **Bounded** — the capacity is split exactly across the shards (remainder
///   slots go to the first shards); each shard evicts its least-recently-used
///   entry beyond its share, so total residency never exceeds the capacity.
/// * **Single-flight** — concurrent requests for the same uncached key elect
///   one leader to run the inner generation; followers block on the shared
///   flight record and receive the *same* `Arc` the leader produced.  Errors
///   are delivered to all waiters but never cached.
pub struct CachingService<S> {
    inner: S,
    shards: Vec<Mutex<CacheShard>>,
    inflight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    /// Bumped on every cache insert; tags anti-entropy digests (1.5).
    generation: AtomicU64,
}

impl<S: MatrixService> CachingService<S> {
    /// Wrap a service in a bounded cache.
    pub fn new(inner: S, config: CacheConfig) -> Self {
        let capacity = config.capacity.max(1);
        let shards = config.shards.clamp(1, capacity);
        let (base, remainder) = (capacity / shards, capacity % shards);
        Self {
            inner,
            shards: (0..shards)
                .map(|i| {
                    Mutex::new(CacheShard {
                        entries: HashMap::new(),
                        tick: 0,
                        capacity: base + usize::from(i < remainder),
                    })
                })
                .collect(),
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Wrap a service with the default [`CacheConfig`].
    pub fn with_defaults(inner: S) -> Self {
        Self::new(inner, CacheConfig::default())
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of forests currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// Whether the cache holds no forests.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<CacheShard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    fn cache_get(&self, key: &CacheKey) -> Option<Arc<PrivacyForestResponse>> {
        let mut shard = self
            .shard_for(key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        let (response, last_used) = shard.entries.get_mut(key)?;
        *last_used = tick;
        Some(Arc::clone(response))
    }

    fn cache_insert(&self, key: CacheKey, response: Arc<PrivacyForestResponse>) {
        self.generation.fetch_add(1, Ordering::Relaxed);
        let mut shard = self
            .shard_for(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        shard.entries.insert(key, (response, tick));
        while shard.entries.len() > shard.capacity {
            let lru = shard
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
                .expect("non-empty shard has an LRU entry");
            shard.entries.remove(&lru);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<S: MatrixService> MatrixService for CachingService<S> {
    fn privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        let key = (request.privacy_level, request.delta);
        if let Some(hit) = self.cache_get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }

        // Join or start the single flight for this key.
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match inflight.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    // Re-check the cache under the in-flight lock: a leader may
                    // have published and retired its flight between our miss
                    // above and now; electing a second leader here would redo
                    // the whole generation and break the Arc-sharing guarantee.
                    if let Some(hit) = self.cache_get(&key) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(hit);
                    }
                    let flight = Arc::new(Flight::new());
                    inflight.insert(key, Arc::clone(&flight));
                    (flight, true)
                }
            }
        };
        self.misses.fetch_add(1, Ordering::Relaxed);
        if !leader {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return flight.wait();
        }

        // Contain a panicking inner service: without this, the leader would
        // unwind past the flight record, leaving every future caller of this
        // key blocked on a generation that no longer exists.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.inner.privacy_forest(request)
        }))
        .unwrap_or_else(|payload| {
            Err(ServiceError::new(
                crate::messages::ServiceErrorKind::Internal,
                format!(
                    "forest generation panicked: {}",
                    crate::pool::panic_message(payload.as_ref())
                ),
            ))
        });
        if let Ok(response) = &result {
            // Publish to the cache *before* retiring the flight so late callers
            // always find either the cache entry or the in-flight generation.
            self.cache_insert(key, Arc::clone(response));
        }
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        flight.complete(result.clone());
        result
    }

    fn tree(&self) -> Arc<LocationTree> {
        self.inner.tree()
    }

    fn prior(&self) -> Arc<PriorDistribution> {
        self.inner.prior()
    }

    fn warm_insert(&self, forest: Arc<PrivacyForestResponse>) -> WarmInsertOutcome {
        let key = (forest.request.privacy_level, forest.request.delta);
        {
            let shard = self
                .shard_for(&key)
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if shard.entries.contains_key(&key) {
                return WarmInsertOutcome::AlreadyResident;
            }
        }
        // Benign race with a concurrent flight for the same key: both produce
        // a valid forest, the later insert simply replaces the earlier one.
        self.cache_insert(key, forest);
        WarmInsertOutcome::Inserted
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(CachingService::cache_stats(self))
    }

    fn resident_keys(&self) -> Vec<MatrixRequest> {
        self.shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .entries
                    .keys()
                    .map(|&(privacy_level, delta)| MatrixRequest {
                        privacy_level,
                        delta,
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn resident(&self, request: MatrixRequest) -> Option<Arc<PrivacyForestResponse>> {
        let key = (request.privacy_level, request.delta);
        let shard = self
            .shard_for(&key)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // A peek, not a get: no tick bump, no hit/miss accounting, so serving
        // anti-entropy pulls never perturbs LRU order or the cache counters.
        shard
            .entries
            .get(&key)
            .map(|(forest, _)| Arc::clone(forest))
    }

    fn cache_generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// InstrumentedService — per-request latency / error counters
// ---------------------------------------------------------------------------

/// A point-in-time snapshot of an [`InstrumentedService`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Total requests served (successes and failures).
    pub requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Cumulative latency across all requests.
    pub total_latency: Duration,
    /// Latency of the slowest request seen.
    pub max_latency: Duration,
}

impl ServiceStats {
    /// Mean per-request latency (zero when no requests were served).
    pub fn mean_latency(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            self.total_latency / u32::try_from(self.requests).unwrap_or(u32::MAX)
        }
    }
}

/// Decorates any [`MatrixService`] with request, error and latency counters.
pub struct InstrumentedService<S> {
    inner: S,
    requests: AtomicU64,
    errors: AtomicU64,
    total_latency_nanos: AtomicU64,
    max_latency_nanos: AtomicU64,
}

impl<S: MatrixService> InstrumentedService<S> {
    /// Wrap a service with fresh counters.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            total_latency_nanos: AtomicU64::new(0),
            max_latency_nanos: AtomicU64::new(0),
        }
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            total_latency: Duration::from_nanos(self.total_latency_nanos.load(Ordering::Relaxed)),
            max_latency: Duration::from_nanos(self.max_latency_nanos.load(Ordering::Relaxed)),
        }
    }
}

impl<S: MatrixService> MatrixService for InstrumentedService<S> {
    fn privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        let start = Instant::now();
        let result = self.inner.privacy_forest(request);
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.requests.fetch_add(1, Ordering::Relaxed);
        if result.is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_latency_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_latency_nanos.fetch_max(nanos, Ordering::Relaxed);
        result
    }

    fn tree(&self) -> Arc<LocationTree> {
        self.inner.tree()
    }

    fn prior(&self) -> Arc<PriorDistribution> {
        self.inner.prior()
    }

    fn warm_insert(&self, forest: Arc<PrivacyForestResponse>) -> WarmInsertOutcome {
        self.inner.warm_insert(forest)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache_stats()
    }

    fn resident_keys(&self) -> Vec<MatrixRequest> {
        self.inner.resident_keys()
    }

    fn resident(&self, request: MatrixRequest) -> Option<Arc<PrivacyForestResponse>> {
        self.inner.resident(request)
    }

    fn cache_generation(&self) -> u64 {
        self.inner.cache_generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator};
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    fn generator() -> ForestGenerator {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let (dataset, _) =
            GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
        let config = ServerConfig::builder()
            .robust_iterations(2)
            .targets_per_subtree(5)
            .worker_threads(3)
            .build();
        ForestGenerator::new(LocationTree::new(grid), prior, config)
    }

    fn request(privacy_level: u8, delta: usize) -> MatrixRequest {
        MatrixRequest {
            privacy_level,
            delta,
        }
    }

    #[test]
    fn pooled_and_serial_paths_agree_exactly() {
        // Fresh generators per side: both start from an empty warm-seed store,
        // so the per-subtree solves see identical seed histories.
        let pooled = generator().generate(request(1, 1)).unwrap();
        let serial = generator().generate_serial(request(1, 1)).unwrap();
        assert_eq!(pooled, serial, "pool size must not change the output");
        assert_eq!(pooled.entries.len(), 49);
    }

    #[test]
    fn neighbour_requests_warm_start_from_the_seed_store() {
        let generator = generator();
        generator.generate(request(1, 0)).unwrap();
        let after_first = generator.warm_stats();
        assert_eq!(
            after_first.warm_started, 0,
            "the first request has no neighbours to seed from"
        );
        assert_eq!(after_first.cold, 49);
        generator.generate(request(1, 1)).unwrap();
        let after_second = generator.warm_stats();
        assert!(
            after_second.warm_started > 0,
            "δ=1 subtree solves must seed from their δ=0 neighbours"
        );
        assert_eq!(after_second.warm_started + after_second.cold, 98);
        // The warm-started path must still produce a valid, reproducible
        // forest: a fresh generator (empty store) agrees bit-for-bit only on
        // the first request, so just check structural validity here.
        let again = generator.generate(request(1, 1)).unwrap();
        assert_eq!(again.entries.len(), 49);
    }

    #[test]
    fn same_sized_subtrees_get_distinct_targets() {
        // Regression: the old server seeded every shuffle with the same
        // target_seed, so all same-sized subtrees picked identical target sets.
        let generator = generator();
        let forest = generator.tree().privacy_forest(1).unwrap();
        let a = generator.problem_for_subtree(&forest[0]).unwrap();
        let b = generator.problem_for_subtree(&forest[1]).unwrap();
        assert_eq!(a.targets().len(), b.targets().len());
        assert_ne!(
            a.targets(),
            b.targets(),
            "distinct subtrees must draw distinct target index sets"
        );
        // Determinism: the same subtree always gets the same targets.
        let a_again = generator.problem_for_subtree(&forest[0]).unwrap();
        assert_eq!(a.targets(), a_again.targets());
    }

    #[test]
    fn caching_service_hits_and_shares_responses() {
        let service = CachingService::with_defaults(generator());
        let a = service.privacy_forest(request(1, 0)).unwrap();
        let b = service.privacy_forest(request(1, 0)).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn cache_evicts_least_recently_used_beyond_capacity() {
        let service = CachingService::new(
            generator(),
            CacheConfig {
                capacity: 2,
                shards: 1,
            },
        );
        let first = service.privacy_forest(request(1, 0)).unwrap();
        service.privacy_forest(request(1, 1)).unwrap();
        // Touch the first key so (1, 1) is the LRU when the third key lands.
        assert!(Arc::ptr_eq(
            &first,
            &service.privacy_forest(request(1, 0)).unwrap()
        ));
        service.privacy_forest(request(1, 2)).unwrap();
        let stats = service.cache_stats();
        assert_eq!(stats.entries, 2, "capacity bound must hold");
        assert_eq!(stats.evictions, 1);
        // The touched key survived; the untouched one was evicted.
        assert!(Arc::ptr_eq(
            &first,
            &service.privacy_forest(request(1, 0)).unwrap()
        ));
        assert_eq!(service.cache_stats().misses, 3);
    }

    #[test]
    fn errors_propagate_and_are_not_cached() {
        let service = CachingService::with_defaults(generator());
        let err = service.privacy_forest(request(9, 0)).unwrap_err();
        assert_eq!(err.kind, crate::messages::ServiceErrorKind::InvalidRequest);
        assert_eq!(service.cache_stats().entries, 0);
        // A second attempt re-runs the inner service (the error was not cached).
        service.privacy_forest(request(9, 0)).unwrap_err();
        assert_eq!(service.cache_stats().misses, 2);
    }

    #[test]
    fn panicking_inner_service_does_not_wedge_the_single_flight() {
        // Regression: a leader unwinding out of the inner service used to
        // leave its flight record in the in-flight table forever, so every
        // later request for the key would block on a dead generation.
        struct PanickingService {
            inner: ForestGenerator,
        }
        impl MatrixService for PanickingService {
            fn privacy_forest(
                &self,
                _request: MatrixRequest,
            ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
                panic!("solver bug");
            }
            fn tree(&self) -> Arc<LocationTree> {
                self.inner.tree()
            }
            fn prior(&self) -> Arc<PriorDistribution> {
                self.inner.prior()
            }
        }
        let service = CachingService::with_defaults(PanickingService { inner: generator() });
        for _ in 0..2 {
            // Both calls return (no hang) with a structured internal error.
            let err = service.privacy_forest(request(1, 0)).unwrap_err();
            assert_eq!(err.kind, crate::messages::ServiceErrorKind::Internal);
            assert!(err.message.contains("solver bug"), "{}", err.message);
        }
        assert_eq!(service.cache_stats().entries, 0, "panics are not cached");
    }

    #[test]
    fn warm_insert_populates_without_a_solve_and_dedups() {
        let origin = CachingService::with_defaults(generator());
        let forest = origin.privacy_forest(request(1, 0)).unwrap();

        // A peer receiving the replicated forest serves it without a miss.
        let peer = CachingService::with_defaults(generator());
        assert_eq!(
            peer.warm_insert(Arc::clone(&forest)),
            WarmInsertOutcome::Inserted
        );
        assert_eq!(
            peer.warm_insert(Arc::clone(&forest)),
            WarmInsertOutcome::AlreadyResident
        );
        let served = peer.privacy_forest(request(1, 0)).unwrap();
        assert!(Arc::ptr_eq(&served, &forest), "shared, not re-generated");
        let stats = MatrixService::cache_stats(&peer).unwrap();
        assert_eq!(stats.misses, 0, "replication must not cost a solve");
        assert_eq!(stats.hits, 1);

        // A bare generator has nowhere to retain the forest.
        assert_eq!(
            generator().warm_insert(forest),
            WarmInsertOutcome::Unsupported
        );
        assert!(MatrixService::cache_stats(&generator()).is_none());
    }

    #[test]
    fn resident_peek_is_counter_neutral_and_generation_tags_inserts() {
        let service = CachingService::with_defaults(generator());
        assert_eq!(service.cache_generation(), 0);
        assert!(service.resident_keys().is_empty());
        assert!(MatrixService::resident(&service, request(1, 0)).is_none());

        let forest = service.privacy_forest(request(1, 0)).unwrap();
        assert_eq!(service.cache_generation(), 1, "insert bumps the generation");
        assert_eq!(service.resident_keys(), vec![request(1, 0)]);
        let peeked = MatrixService::resident(&service, request(1, 0)).unwrap();
        assert!(Arc::ptr_eq(&peeked, &forest), "peek shares the cached Arc");

        // Peeks are invisible to the counters — still 0 hits, 1 miss.
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));

        // A bare generator reports the no-cache defaults.
        let bare = generator();
        assert!(bare.resident_keys().is_empty());
        assert_eq!(bare.cache_generation(), 0);
    }

    #[test]
    fn instrumented_service_counts_requests_and_errors() {
        let service = InstrumentedService::new(generator());
        service.privacy_forest(request(1, 0)).unwrap();
        service.privacy_forest(request(9, 0)).unwrap_err();
        let stats = service.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 1);
        assert!(stats.total_latency > Duration::ZERO);
        assert!(stats.max_latency <= stats.total_latency);
        assert!(stats.mean_latency() <= stats.max_latency);
    }

    #[test]
    fn envelope_round_trip_through_the_stack() {
        let service: Arc<dyn MatrixService> = Arc::new(CachingService::with_defaults(generator()));
        let reply = service.handle_envelope(&RequestEnvelope::new(11, request(1, 0)));
        assert_eq!(reply.request_id, 11);
        assert_eq!(reply.into_result().unwrap().entries.len(), 49);

        // A future major version is refused with a structured error.
        let mut envelope = RequestEnvelope::new(12, request(1, 0));
        envelope.version.major += 1;
        let reply = service.handle_envelope(&envelope);
        let err = reply.into_result().unwrap_err();
        assert_eq!(
            err.kind,
            crate::messages::ServiceErrorKind::UnsupportedVersion
        );
    }
}
