//! A hand-rolled single-threaded async executor for the event-driven serving
//! core.
//!
//! The offline build environment has no tokio (and no crates.io access at
//! all), so the reactor in [`crate::transport`] is driven by this minimal
//! executor built from `std` primitives only:
//!
//! * **Tasks** — each spawned future becomes a task behind an
//!   `Arc`; the task *is* its own waker (`std::task::Wake`), and an atomic
//!   state machine (idle → scheduled → running → rescheduled) makes wakes
//!   from any thread race-free without ever double-queueing a task.
//! * **Timer wheel** — a coarse hashed wheel ([`TimerWheel`]) backs the
//!   [`sleep_until`](Handle::sleep_until) future used for handshake and read
//!   timeouts; the run loop advances it from a monotonic clock.
//! * **Readiness backends** — the reactor blocks in one of two ways,
//!   selected by [`ReactorBackend`]:
//!   [`Epoll`](ReactorBackend::Epoll) parks the run loop in `epoll_pwait`
//!   (via the raw bindings in [`crate::sys`]) with per-fd interest registered
//!   through [`Handle::park_socket`], cross-thread wakes delivered over an
//!   eventfd and the timer wheel's next deadline as the wait timeout — idle
//!   connections cost nothing and a readable socket wakes its future in
//!   microseconds; [`Tick`](ReactorBackend::Tick) is the portable fallback
//!   where futures blocked on non-blocking sockets register their waker in a
//!   poll set ([`Handle::park_io`]) and the run loop re-wakes the whole set
//!   once per *tick* (the configured poll interval).
//! * **Oneshot channels** — [`oneshot`] lets CPU-bound work on the
//!   [`crate::ThreadPool`] complete a future back inside the event loop: the
//!   pool thread calls [`oneshot::Sender::send`], which wakes the awaiting
//!   task immediately (no tick latency on the completion path).
//!
//! The executor is single-threaded by design: one reactor thread runs
//! [`Executor::run`], all tasks are polled there, and cross-thread interaction
//! is confined to wakes (queue push + condvar notify or eventfd write) and
//! oneshot completions.  Multi-core serving shards *connections* across
//! several executors (see `transport`), never tasks across threads.

use crate::sys;
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

#[cfg(unix)]
use std::os::fd::RawFd;
#[cfg(not(unix))]
/// Raw socket descriptor on non-unix targets (the epoll backend never
/// constructs there, so the alias only keeps signatures compiling).
type RawFd = i32;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// How the reactor's run loop blocks between bursts of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorBackend {
    /// Block in `epoll_pwait` on real kernel readiness: per-fd interest via
    /// [`Handle::park_socket`], cross-thread wakes via eventfd, timer-wheel
    /// deadlines as the wait timeout.  Linux x86-64/aarch64 only.
    Epoll,
    /// The portable timed re-poll: sleep at most one `io_poll_interval`, then
    /// re-wake every parked I/O future so it retries its socket.
    Tick,
}

impl ReactorBackend {
    /// The backend requested by the `CORGI_REACTOR_BACKEND` environment
    /// variable (`"epoll"` or `"tick"`, case-insensitive).  Unset or
    /// unrecognized values request [`Epoll`](Self::Epoll), which
    /// [`resolve`](Self::resolve) degrades to [`Tick`](Self::Tick) wherever
    /// the syscalls are unavailable.
    pub fn from_env() -> Self {
        match std::env::var("CORGI_REACTOR_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("tick") => Self::Tick,
            _ => Self::Epoll,
        }
    }

    /// Degrade [`Epoll`](Self::Epoll) to [`Tick`](Self::Tick) when the
    /// readiness syscalls are compiled out (non-Linux) or refused at runtime
    /// (seccomp); see [`sys::readiness_available`].
    pub fn resolve(self) -> Self {
        match self {
            Self::Epoll if sys::readiness_available() => Self::Epoll,
            _ => Self::Tick,
        }
    }

    /// Stable lowercase name, used in bench IDs and reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::Epoll => "epoll",
            Self::Tick => "tick",
        }
    }
}

/// A waker parked on socket readiness, with the interest bits currently armed
/// in the epoll set (0 = disarmed, waiting for its future to re-park).
struct FdWaiter {
    interest: u32,
    waker: Waker,
}

/// The epoll backend's kernel state: one poll set, the eventfd that external
/// threads write to interrupt `epoll_pwait`, and the fd → waker registry.
struct Poller {
    epoll: sys::Epoll,
    wakeup: sys::EventFd,
    waiters: Mutex<HashMap<RawFd, FdWaiter>>,
}

impl Poller {
    fn new() -> std::io::Result<Self> {
        let epoll = sys::Epoll::new()?;
        let wakeup = sys::EventFd::new()?;
        epoll.add(wakeup.as_raw_fd(), sys::EPOLLIN)?;
        Ok(Self {
            epoll,
            wakeup,
            waiters: Mutex::new(HashMap::new()),
        })
    }
}

// Task scheduling states; transitions are CAS-driven so concurrent wakes from
// pool threads and the reactor thread never lose a wakeup or enqueue twice.
const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;
const RUNNING: u8 = 2;
const RESCHEDULED: u8 = 3;

struct Task {
    future: Mutex<Option<BoxFuture>>,
    state: AtomicU8,
    shared: Arc<Shared>,
}

impl Task {
    /// Move the task to `SCHEDULED` and enqueue it, unless it is already
    /// queued (or running, in which case the run loop re-queues it afterwards).
    fn schedule(self: &Arc<Self>) {
        // After shutdown the run loop is gone and `purge` has drained (or is
        // about to drain) every registry: enqueueing would park this task in
        // a dead queue forever, leaking its future (and any socket it owns)
        // through the ready → task → handle → shared cycle.  Dropping the
        // wake is the release path: the caller's waker clone was this task's
        // last reference.
        if self.shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.shared.push_ready(Arc::clone(self));
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, RESCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued (or already marked for re-queueing).
                _ => return,
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

/// State shared between the run loop, task wakers and [`Handle`]s.
struct Shared {
    ready: Mutex<VecDeque<Arc<Task>>>,
    wakeup: Condvar,
    io_parked: Mutex<Vec<Waker>>,
    timer: TimerWheel,
    shutdown: AtomicBool,
    live_tasks: AtomicUsize,
    /// `Some` on the epoll backend, `None` on tick.
    poller: Option<Poller>,
    /// The thread currently inside [`Executor::run`], so same-thread wakes
    /// (a task polled on the reactor scheduling another) skip the eventfd
    /// write — the run loop re-checks the ready queue before blocking.
    reactor_thread: Mutex<Option<std::thread::ThreadId>>,
}

impl Shared {
    fn push_ready(&self, task: Arc<Task>) {
        self.ready
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
        self.notify();
    }

    /// Interrupt a (possibly) blocked run loop.  On epoll, every cross-thread
    /// wake writes the eventfd unconditionally: the reactor drains it each
    /// wakeup, and level-triggered readability means a write landing between
    /// that drain and the next `epoll_pwait` still returns it immediately —
    /// no lost-wakeup window, unlike any "already signaled" flag scheme.
    fn notify(&self) {
        match &self.poller {
            Some(poller) => {
                let on_reactor = *self
                    .reactor_thread
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    == Some(std::thread::current().id());
                if !on_reactor {
                    poller.wakeup.notify();
                }
            }
            None => {
                self.wakeup.notify_one();
            }
        }
    }

    fn pop_ready(&self) -> Option<Arc<Task>> {
        self.ready
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }
}

/// A cloneable handle into a running (or about to run) [`Executor`]: spawn
/// tasks, create timers, park on I/O, request shutdown.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// Spawn a future onto the executor.  Safe to call from any thread,
    /// including from inside a task.
    pub fn spawn(&self, future: impl Future<Output = ()> + Send + 'static) {
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            state: AtomicU8::new(IDLE),
            shared: Arc::clone(&self.shared),
        });
        self.shared.live_tasks.fetch_add(1, Ordering::AcqRel);
        task.schedule();
    }

    /// Register a waker to be re-woken on the next reactor tick.  I/O futures
    /// call this after a `WouldBlock` so their socket is re-polled at the
    /// configured poll interval.
    ///
    /// Works on both backends: the epoll run loop bounds its wait by the poll
    /// interval whenever this set is non-empty and re-wakes it after every
    /// wakeup, so a future with no single fd to watch is never stranded.
    pub fn park_io(&self, waker: &Waker) {
        self.shared
            .io_parked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(waker.clone());
    }

    /// Park a future on kernel readiness for `fd`: wake it when the socket
    /// becomes readable (`readable`, which includes peer hangup) and/or
    /// writable (`writable`).  The interest is **one-shot by disarm**: the
    /// run loop disarms the fd when it delivers a wake, and the future
    /// re-declares its *current* interest by calling this again on its next
    /// `Pending` — so interest always tracks what the future actually awaits.
    ///
    /// On the tick backend this degrades to [`park_io`](Self::park_io)
    /// (re-poll next tick).  Callers must call
    /// [`deregister_socket`](Self::deregister_socket) before closing the fd.
    pub fn park_socket(&self, fd: RawFd, readable: bool, writable: bool, waker: &Waker) {
        let Some(poller) = &self.shared.poller else {
            self.park_io(waker);
            return;
        };
        let mut want = 0u32;
        if readable {
            want |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if writable {
            want |= sys::EPOLLOUT;
        }
        // Declared before the guard so a waker displaced here drops *after*
        // the lock is released: a dropped waker can run a task destructor
        // that re-enters this lock via `deregister_socket`.
        let mut stale_waker: Option<Waker> = None;
        let mut waiters = poller.waiters.lock().unwrap_or_else(|e| e.into_inner());
        match waiters.entry(fd) {
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                let entry = occupied.get_mut();
                if entry.interest != want
                    && poller.epoll.modify(fd, want).is_err()
                    && poller.epoll.add(fd, want).is_err()
                {
                    // Kernel refused both ops (fd in a weird state): fall back
                    // to tick service rather than stranding the future.  The
                    // removed entry drops only after the guard for the same
                    // re-entrancy reason as `stale_waker`.
                    let removed = occupied.remove();
                    drop(waiters);
                    drop(removed);
                    self.park_io(waker);
                    return;
                }
                entry.interest = want;
                if !entry.waker.will_wake(waker) {
                    stale_waker = Some(std::mem::replace(&mut entry.waker, waker.clone()));
                }
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                if poller.epoll.add(fd, want).is_err() && poller.epoll.modify(fd, want).is_err() {
                    drop(waiters);
                    self.park_io(waker);
                    return;
                }
                vacant.insert(FdWaiter {
                    interest: want,
                    waker: waker.clone(),
                });
            }
        }
        drop(waiters);
        drop(stale_waker);
    }

    /// Drop any readiness registration for `fd`.  Must be called before the
    /// owning future closes the descriptor; harmless on the tick backend or
    /// for fds that were never parked.
    pub fn deregister_socket(&self, fd: RawFd) {
        if let Some(poller) = &self.shared.poller {
            // Hold the removed entry past the guard: dropping its waker can
            // run a task destructor that re-enters this same lock.
            let removed = poller
                .waiters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&fd);
            let _ = poller.epoll.delete(fd);
            drop(removed);
        }
    }

    /// The readiness backend this executor actually runs (after fallback).
    pub fn backend(&self) -> ReactorBackend {
        if self.shared.poller.is_some() {
            ReactorBackend::Epoll
        } else {
            ReactorBackend::Tick
        }
    }

    /// A future that resolves once the monotonic clock reaches `deadline`.
    pub fn sleep_until(&self, deadline: Instant) -> Sleep {
        Sleep {
            deadline,
            shared: Arc::clone(&self.shared),
            registered: false,
        }
    }

    /// A future that resolves after `duration` has elapsed.
    pub fn sleep(&self, duration: Duration) -> Sleep {
        self.sleep_until(Instant::now() + duration)
    }

    /// Ask the run loop to exit; pending tasks are dropped.  Idempotent and
    /// safe from any thread.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wakeup.notify_all();
        if let Some(poller) = &self.shared.poller {
            poller.wakeup.notify();
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Number of spawned tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.shared.live_tasks.load(Ordering::Acquire)
    }
}

/// The single-threaded future runner driving the serving reactor.
pub struct Executor {
    shared: Arc<Shared>,
    io_poll_interval: Duration,
}

impl Executor {
    /// Create a tick-backend executor whose I/O poll set is re-woken every
    /// `io_poll_interval` (the reactor *tick*).
    pub fn new(io_poll_interval: Duration) -> Self {
        Self::with_backend(ReactorBackend::Tick, io_poll_interval)
    }

    /// Create an executor on the given backend (after
    /// [`ReactorBackend::resolve`]-style fallback: an epoll request silently
    /// degrades to tick if the poll set cannot be created).  On epoll,
    /// `io_poll_interval` only bounds the wait while legacy
    /// [`park_io`](Handle::park_io) waiters exist.
    pub fn with_backend(backend: ReactorBackend, io_poll_interval: Duration) -> Self {
        let poller = match backend.resolve() {
            ReactorBackend::Epoll => Poller::new().ok(),
            ReactorBackend::Tick => None,
        };
        Self {
            shared: Arc::new(Shared {
                ready: Mutex::new(VecDeque::new()),
                wakeup: Condvar::new(),
                io_parked: Mutex::new(Vec::new()),
                timer: TimerWheel::new(Duration::from_millis(1), 256),
                shutdown: AtomicBool::new(false),
                live_tasks: AtomicUsize::new(0),
                poller,
                reactor_thread: Mutex::new(None),
            }),
            io_poll_interval: io_poll_interval.max(Duration::from_micros(50)),
        }
    }

    /// The readiness backend this executor actually runs (after fallback).
    pub fn backend(&self) -> ReactorBackend {
        self.handle().backend()
    }

    /// A handle for spawning and shutdown, cloneable across threads.
    pub fn handle(&self) -> Handle {
        Handle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Drive all tasks until [`Handle::shutdown`] is called.
    ///
    /// Each iteration: expire due timers, poll every scheduled task to
    /// quiescence, then block until something can change — in `epoll_pwait`
    /// on fd readiness/eventfd with the next timer deadline as timeout
    /// (epoll backend), or on the condvar until the earliest of (next timer,
    /// next I/O tick, an external wake) and then re-wake the whole I/O poll
    /// set (tick backend).
    pub fn run(&self) {
        *self
            .shared
            .reactor_thread
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(std::thread::current().id());
        match &self.shared.poller {
            Some(poller) => self.run_epoll(poller),
            None => self.run_inner(),
        }
        *self
            .shared
            .reactor_thread
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = None;
        self.purge();
    }

    /// Break the `Shared` → `Task` → future → `Handle` → `Shared` reference
    /// cycle on shutdown by draining every waker registry.  Dropping the task
    /// `Arc`s drops their futures — and with them the listener and connection
    /// sockets they own — so peers see EOF instead of a dead, half-open
    /// server.  Tasks parked on an in-flight oneshot are released when its
    /// sender completes (the dispatch pool drains before the server drops).
    fn purge(&self) {
        loop {
            let Some(task) = self.shared.pop_ready() else {
                break;
            };
            drop(task);
        }
        // Every registry is emptied with take-then-drop: dropping a waker here
        // can drop the last `Arc<Task>` and run its future's destructor, and
        // `ConnectionTask::drop` re-enters `deregister_socket` (the waiters
        // lock).  Dropping inside the guard scope would self-deadlock.
        let parked = std::mem::take(
            &mut *self
                .shared
                .io_parked
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        drop(parked);
        self.shared.timer.clear();
        if let Some(poller) = &self.shared.poller {
            let waiters =
                std::mem::take(&mut *poller.waiters.lock().unwrap_or_else(|e| e.into_inner()));
            drop(waiters);
        }
    }

    /// The epoll run loop: identical task scheduling to the tick loop, but
    /// the idle wait is a real readiness wait instead of a timed re-poll.
    fn run_epoll(&self, poller: &Poller) {
        let mut events = vec![sys::EpollEvent::default(); 128];
        let wakeup_fd = poller.wakeup.as_raw_fd();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            self.shared.timer.advance(Instant::now());

            while let Some(task) = self.shared.pop_ready() {
                self.poll_task(&task);
                if self.shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }

            // Nothing runnable: block on readiness.  A cross-thread push
            // landing after the drain above has already written the eventfd,
            // whose level-triggered readability makes the wait below return
            // immediately — same-thread pushes cannot happen here (the loop
            // above ran them to quiescence).
            let now = Instant::now();
            let has_legacy = !self
                .shared
                .io_parked
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty();
            let until_timer = self
                .shared
                .timer
                .next_deadline()
                .map(|d| d.saturating_duration_since(now));
            let wait = match (has_legacy, until_timer) {
                (true, Some(t)) => t.min(self.io_poll_interval),
                (true, None) => self.io_poll_interval,
                (false, Some(t)) => t,
                // Fully readiness-driven: the cap only bounds how long a
                // hypothetically missed eventfd write could ever stall us.
                (false, None) => Duration::from_millis(100),
            };
            // Ceil to whole milliseconds so a sub-ms timer wait does not
            // degenerate into a timeout-0 busy spin.
            let timeout_ms = wait.as_nanos().div_ceil(1_000_000).min(60_000) as i32;
            let n = poller.epoll.wait(&mut events, timeout_ms).unwrap_or(0);

            let mut fired = Vec::new();
            {
                let mut waiters = poller.waiters.lock().unwrap_or_else(|e| e.into_inner());
                for event in &events[..n] {
                    let fd = event.tag() as RawFd;
                    if fd == wakeup_fd {
                        poller.wakeup.drain();
                        continue;
                    }
                    if let Some(entry) = waiters.get_mut(&fd) {
                        // Disarm before waking: level-triggered readiness
                        // must not be re-delivered to a future that has
                        // stopped consuming it (backpressure, inflight cap);
                        // the future re-arms its current interest on its
                        // next park_socket.
                        if entry.interest != 0 {
                            let _ = poller.epoll.modify(fd, 0);
                            entry.interest = 0;
                        }
                        fired.push(entry.waker.clone());
                    }
                }
            }
            for waker in fired {
                waker.wake();
            }

            // Legacy park_io futures still get tick service (the wait above
            // was bounded by io_poll_interval whenever any were parked).
            let parked: Vec<Waker> = std::mem::take(
                &mut *self
                    .shared
                    .io_parked
                    .lock()
                    .unwrap_or_else(|e| e.into_inner()),
            );
            for waker in parked {
                waker.wake();
            }
        }
    }

    fn run_inner(&self) {
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            self.shared.timer.advance(Instant::now());

            while let Some(task) = self.shared.pop_ready() {
                self.poll_task(&task);
                if self.shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }

            // Nothing runnable: sleep until something can change.
            let now = Instant::now();
            let has_io = !self
                .shared
                .io_parked
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty();
            let until_timer = self
                .shared
                .timer
                .next_deadline()
                .map(|d| d.saturating_duration_since(now));
            let mut wait = match (has_io, until_timer) {
                (true, Some(t)) => t.min(self.io_poll_interval),
                (true, None) => self.io_poll_interval,
                (false, Some(t)) => t,
                // Fully quiescent: only an external wake (spawn, oneshot
                // completion, shutdown) can change anything; the cap just
                // bounds how long a missed notify could ever stall us.
                (false, None) => Duration::from_millis(100),
            };
            wait = wait.max(Duration::from_micros(10));
            {
                let ready = self.shared.ready.lock().unwrap_or_else(|e| e.into_inner());
                if ready.is_empty() && !self.shared.shutdown.load(Ordering::Acquire) {
                    let _ = self
                        .shared
                        .wakeup
                        .wait_timeout(ready, wait)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }

            // Tick: give every I/O-parked future another shot at its socket.
            let parked: Vec<Waker> = std::mem::take(
                &mut *self
                    .shared
                    .io_parked
                    .lock()
                    .unwrap_or_else(|e| e.into_inner()),
            );
            for waker in parked {
                waker.wake();
            }
        }
    }

    fn poll_task(&self, task: &Arc<Task>) {
        task.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::clone(task));
        let mut cx = Context::from_waker(&waker);
        let mut slot = task.future.lock().unwrap_or_else(|e| e.into_inner());
        let Some(future) = slot.as_mut() else {
            return; // completed earlier; a stale waker re-queued it
        };
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                *slot = None;
                self.shared.live_tasks.fetch_sub(1, Ordering::AcqRel);
                task.state.store(IDLE, Ordering::Release);
            }
            Poll::Pending => {
                drop(slot);
                // If a wake arrived while we were polling, requeue; otherwise
                // go idle and wait for the waker.
                if task
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    task.state.store(SCHEDULED, Ordering::Release);
                    self.shared.push_ready(Arc::clone(task));
                }
            }
        }
    }
}

/// Run a single future to completion on the calling thread, parking it between
/// polls.  Used by tests and small tools; the serving reactor uses
/// [`Executor::run`] instead.
pub fn block_on<F: Future>(mut future: F) -> F::Output {
    struct ThreadWaker {
        thread: std::thread::Thread,
        notified: AtomicBool,
    }
    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.notified.store(true, Ordering::Release);
            self.thread.unpark();
        }
    }

    // SAFETY-free pinning: the future lives on this stack frame for the whole
    // call and is never moved after the first poll.
    let mut future = unsafe { Pin::new_unchecked(&mut future) };
    let thread_waker = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&thread_waker));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => {
                // Bounded park, then re-poll even without a wake: a `Sleep`
                // polled outside an `Executor` has no wheel-advancing run
                // loop, so only a periodic re-poll can observe its deadline.
                if !thread_waker.notified.swap(false, Ordering::AcqRel) {
                    std::thread::park_timeout(Duration::from_millis(1));
                    thread_waker.notified.store(false, Ordering::Release);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

struct TimerEntry {
    expires_tick: u64,
    waker: Waker,
}

struct WheelInner {
    slots: Vec<Vec<TimerEntry>>,
    current_tick: u64,
}

/// A coarse hashed timer wheel: deadlines are quantized to a tick granularity
/// and hashed into `slots.len()` buckets by tick index, so registering and
/// expiring timers is O(1) amortized regardless of how far out they are.
///
/// Firing is strictly *not early*: a waker registered for tick `t` is only
/// woken once the wheel has advanced past `t`, and at most `granularity` late
/// plus the run loop's sleep quantum.
pub struct TimerWheel {
    inner: Mutex<WheelInner>,
    granularity: Duration,
    epoch: Instant,
}

impl TimerWheel {
    fn new(granularity: Duration, slots: usize) -> Self {
        Self {
            inner: Mutex::new(WheelInner {
                slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
                current_tick: 0,
            }),
            granularity: granularity.max(Duration::from_micros(100)),
            epoch: Instant::now(),
        }
    }

    fn tick_of(&self, deadline: Instant) -> u64 {
        let since = deadline.saturating_duration_since(self.epoch);
        // Round up: never fire before the deadline.
        (since.as_nanos() / self.granularity.as_nanos()) as u64 + 1
    }

    fn register(&self, deadline: Instant, waker: Waker) {
        let expires_tick = self.tick_of(deadline);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let slot = (expires_tick % inner.slots.len() as u64) as usize;
        inner.slots[slot].push(TimerEntry {
            expires_tick,
            waker,
        });
    }

    /// Advance the wheel to `now`, waking every timer whose tick has passed.
    fn advance(&self, now: Instant) {
        let now_tick = (now.saturating_duration_since(self.epoch).as_nanos()
            / self.granularity.as_nanos()) as u64;
        // Due entries are *moved out* of the wheel and woken (and dropped)
        // only after the lock is released: waker destructors can run task
        // teardown code that takes other reactor locks.
        let mut fired: Vec<TimerEntry> = Vec::new();
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if now_tick <= inner.current_tick {
                return;
            }
            let span = now_tick - inner.current_tick;
            let slot_count = inner.slots.len() as u64;
            let expire_slot = |slot: &mut Vec<TimerEntry>, fired: &mut Vec<TimerEntry>| {
                let mut index = 0;
                while index < slot.len() {
                    if slot[index].expires_tick <= now_tick {
                        fired.push(slot.swap_remove(index));
                    } else {
                        index += 1;
                    }
                }
            };
            if span >= slot_count {
                // Swept the whole wheel: expire everything due, slot by slot.
                for slot in inner.slots.iter_mut() {
                    expire_slot(slot, &mut fired);
                }
            } else {
                for tick in (inner.current_tick + 1)..=now_tick {
                    let slot = (tick % slot_count) as usize;
                    expire_slot(&mut inner.slots[slot], &mut fired);
                }
            }
            inner.current_tick = now_tick;
        }
        for entry in fired {
            entry.waker.wake();
        }
    }

    /// Drop every registered entry (and the task wakers they hold).  Entries
    /// are moved out before dropping: waker destructors can run arbitrary
    /// task-teardown code and must not run under the wheel's lock.
    fn clear(&self) {
        let mut drained: Vec<Vec<TimerEntry>> = Vec::new();
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            for slot in inner.slots.iter_mut() {
                drained.push(std::mem::take(slot));
            }
        }
        drop(drained);
    }

    /// Earliest registered deadline, if any (used to size the run loop sleep).
    fn next_deadline(&self) -> Option<Instant> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let min_tick = inner.slots.iter().flatten().map(|e| e.expires_tick).min()?;
        // Full u64 tick math: a u32 cast would wrap after ~49 days of uptime
        // at the 1 ms granularity and park the run loop on a past deadline.
        let offset = Duration::from_nanos(
            u64::try_from(self.granularity.as_nanos())
                .unwrap_or(u64::MAX)
                .saturating_mul(min_tick),
        );
        Some(self.epoch + offset)
    }
}

/// Future returned by [`Handle::sleep_until`] / [`Handle::sleep`].
pub struct Sleep {
    deadline: Instant,
    shared: Arc<Shared>,
    registered: bool,
}

impl Sleep {
    /// The instant this sleep resolves at.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if Instant::now() >= this.deadline {
            Poll::Ready(())
        } else {
            // Register with the wheel once: a task re-polled for other
            // reasons (I/O ticks) must not pile up duplicate entries, and the
            // task's waker is stable so the original entry stays valid.
            if !this.registered {
                this.shared
                    .timer
                    .register(this.deadline, cx.waker().clone());
                this.registered = true;
            }
            Poll::Pending
        }
    }
}

// ---------------------------------------------------------------------------
// Oneshot channel
// ---------------------------------------------------------------------------

/// A single-value channel whose receiving half is a [`Future`]: the bridge by
/// which blocking work on the [`crate::ThreadPool`] re-enters the event loop.
pub mod oneshot {
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Mutex};
    use std::task::{Context, Poll, Waker};

    struct Inner<T> {
        state: Mutex<State<T>>,
    }

    struct State<T> {
        value: Option<T>,
        waker: Option<Waker>,
        closed: bool,
    }

    /// Sending half; consumed by [`Sender::send`].  Dropping it without
    /// sending resolves the receiver with [`Canceled`].
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; a future resolving to the sent value, or [`Canceled`]
    /// if the sender was dropped first (e.g. the producing job panicked).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned when the sending half was dropped without sending.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Canceled;

    impl std::fmt::Display for Canceled {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "oneshot sender dropped without sending")
        }
    }

    impl std::error::Error for Canceled {}

    /// Create a connected sender/receiver pair.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                value: None,
                waker: None,
                closed: false,
            }),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Deliver the value, waking the receiver if it is awaiting.  Returns
        /// the value back if the receiver was already dropped.
        pub fn send(self, value: T) -> Result<(), T> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.closed {
                return Err(value);
            }
            state.value = Some(value);
            let waker = state.waker.take();
            drop(state);
            if let Some(waker) = waker {
                waker.wake();
            }
            // Dropping self now sets `closed`, which is harmless: receivers
            // check for a delivered value before the closed flag.
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.closed = true;
            let waker = state.waker.take();
            drop(state);
            if let Some(waker) = waker {
                waker.wake();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // Lets a later `send` fail fast instead of stashing a dead value.
            self.inner
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .closed = true;
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking probe: `Ok(Some(v))` once sent, `Ok(None)` while
        /// pending, `Err(Canceled)` after the sender dropped without sending.
        pub fn try_recv(&self) -> Result<Option<T>, Canceled> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            match state.value.take() {
                Some(value) => Ok(Some(value)),
                None if state.closed => Err(Canceled),
                None => Ok(None),
            }
        }
    }

    impl<T> Future for Receiver<T> {
        type Output = Result<T, Canceled>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = state.value.take() {
                return Poll::Ready(Ok(value));
            }
            if state.closed {
                return Poll::Ready(Err(Canceled));
            }
            state.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }

    impl<T> Unpin for Receiver<T> {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn block_on_runs_a_future_to_completion() {
        assert_eq!(block_on(async { 6 * 7 }), 42);
    }

    #[test]
    fn block_on_completes_timer_futures_without_a_run_loop() {
        // Regression: block_on used to park until a wake arrived, but a Sleep
        // polled outside Executor::run has no wheel-advancing loop to wake it
        // — only the periodic re-poll can observe the deadline.
        let executor = Executor::new(Duration::from_micros(200));
        let handle = executor.handle();
        let start = Instant::now();
        block_on(handle.sleep(Duration::from_millis(10)));
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn oneshot_delivers_across_threads() {
        let (tx, rx) = oneshot::channel::<u32>();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(99).unwrap();
        });
        assert_eq!(block_on(rx), Ok(99));
    }

    #[test]
    fn oneshot_sender_drop_cancels() {
        let (tx, rx) = oneshot::channel::<u32>();
        drop(tx);
        assert_eq!(block_on(rx), Err(oneshot::Canceled));
    }

    #[test]
    fn oneshot_try_recv_observes_all_states() {
        let (tx, rx) = oneshot::channel::<u32>();
        assert_eq!(rx.try_recv(), Ok(None));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(Some(5)));
        let (tx, rx) = oneshot::channel::<u32>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(oneshot::Canceled));
    }

    #[test]
    fn executor_runs_spawned_tasks_and_shuts_down() {
        let executor = Executor::new(Duration::from_micros(200));
        let handle = executor.handle();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            handle.spawn(async move {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        let stopper = handle.clone();
        let counter_done = Arc::clone(&counter);
        handle.spawn(async move {
            // Wait for the ten increments, then stop the loop from inside.
            while counter_done.load(Ordering::SeqCst) < 10 {
                stopper.sleep(Duration::from_millis(1)).await;
            }
            stopper.shutdown();
        });
        executor.run();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        assert_eq!(handle.live_tasks(), 0);
    }

    #[test]
    fn sleep_respects_its_deadline() {
        let executor = Executor::new(Duration::from_micros(200));
        let handle = executor.handle();
        let start = Instant::now();
        let woke_after = Arc::new(Mutex::new(None));
        let woke = Arc::clone(&woke_after);
        let stopper = handle.clone();
        handle.spawn(async move {
            stopper.sleep(Duration::from_millis(25)).await;
            *woke.lock().unwrap() = Some(start.elapsed());
            stopper.shutdown();
        });
        executor.run();
        let elapsed = woke_after.lock().unwrap().expect("task ran");
        assert!(
            elapsed >= Duration::from_millis(25),
            "sleep fired early after {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_secs(2),
            "sleep fired far too late after {elapsed:?}"
        );
    }

    #[test]
    fn pool_results_reenter_the_event_loop() {
        // The exact shape the transport uses: a blocking pool job completing a
        // oneshot that a task on the executor is awaiting.
        let pool = crate::ThreadPool::new(2);
        let executor = Executor::new(Duration::from_micros(200));
        let handle = executor.handle();
        let total = Arc::new(AtomicUsize::new(0));
        for i in 0..8usize {
            let (tx, rx) = oneshot::channel::<usize>();
            pool.execute(move || {
                let _ = tx.send(i * i);
            });
            let total = Arc::clone(&total);
            handle.spawn(async move {
                let value = rx.await.expect("pool job completes");
                total.fetch_add(value, Ordering::SeqCst);
            });
        }
        let stopper = handle.clone();
        handle.spawn(async move {
            while stopper.live_tasks() > 1 {
                stopper.sleep(Duration::from_millis(1)).await;
            }
            stopper.shutdown();
        });
        executor.run();
        assert_eq!(total.load(Ordering::SeqCst), (0..8).map(|i| i * i).sum());
    }

    #[test]
    fn backend_resolution_prefers_epoll_where_available() {
        let resolved = ReactorBackend::Epoll.resolve();
        if crate::sys::readiness_available() {
            assert_eq!(resolved, ReactorBackend::Epoll);
            assert_eq!(
                Executor::with_backend(ReactorBackend::Epoll, Duration::from_micros(500)).backend(),
                ReactorBackend::Epoll
            );
        } else {
            assert_eq!(resolved, ReactorBackend::Tick);
        }
        assert_eq!(ReactorBackend::Tick.resolve(), ReactorBackend::Tick);
        assert_eq!(
            Executor::new(Duration::from_micros(500)).backend(),
            ReactorBackend::Tick
        );
    }

    #[test]
    fn epoll_backend_runs_tasks_timers_and_oneshots() {
        // The full scheduling surface on the readiness backend: plain tasks,
        // timer-wheel sleeps, and cross-thread oneshot completions.
        let executor = Executor::with_backend(ReactorBackend::Epoll, Duration::from_micros(500));
        if executor.backend() != ReactorBackend::Epoll {
            return; // no readiness syscalls on this target/kernel
        }
        let handle = executor.handle();
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            handle.spawn(async move {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        let (tx, rx) = oneshot::channel::<usize>();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            let _ = tx.send(100);
        });
        let counter_rx = Arc::clone(&counter);
        let sleeper = handle.clone();
        handle.spawn(async move {
            sleeper.sleep(Duration::from_millis(1)).await;
            let value = rx.await.expect("oneshot completes");
            counter_rx.fetch_add(value, Ordering::SeqCst);
            sleeper.shutdown();
        });
        executor.run();
        assert_eq!(counter.load(Ordering::SeqCst), 110);
    }

    #[test]
    fn epoll_backend_wakes_on_socket_readiness_not_on_a_tick() {
        use std::io::{Read, Write};
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        // A deliberately huge poll interval: if the reactor still relied on
        // the tick, the echo below would take ~2 s.  Readiness must deliver
        // it in milliseconds.
        let executor = Executor::with_backend(ReactorBackend::Epoll, Duration::from_secs(2));
        if executor.backend() != ReactorBackend::Epoll {
            return;
        }
        let handle = executor.handle();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let echo = handle.clone();
        handle.spawn(std::future::poll_fn(move |cx| {
            let mut stream = &server;
            let mut buf = [0u8; 16];
            match stream.read(&mut buf) {
                Ok(n) if n > 0 => {
                    stream.write_all(&buf[..n]).unwrap();
                    echo.deregister_socket(server.as_raw_fd());
                    echo.shutdown();
                    Poll::Ready(())
                }
                Ok(_) => Poll::Ready(()),
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    echo.park_socket(server.as_raw_fd(), true, false, cx.waker());
                    Poll::Pending
                }
                Err(e) => panic!("echo read failed: {e}"),
            }
        }));

        let reactor = std::thread::spawn(move || executor.run());
        // Let the reactor park on readiness first, then measure the wake.
        std::thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        client.write_all(b"ping").unwrap();
        let mut reply = [0u8; 4];
        client.read_exact(&mut reply).unwrap();
        let elapsed = start.elapsed();
        reactor.join().unwrap();
        assert_eq!(&reply, b"ping");
        assert!(
            elapsed < Duration::from_millis(500),
            "readiness wake took {elapsed:?}; reactor fell back to the tick"
        );
    }

    #[test]
    fn io_parked_wakers_are_rewoken_each_tick() {
        let executor = Executor::new(Duration::from_micros(200));
        let handle = executor.handle();
        let polls = Arc::new(AtomicUsize::new(0));
        let polls_in = Arc::clone(&polls);
        let parker = handle.clone();
        handle.spawn(std::future::poll_fn(move |cx| {
            let n = polls_in.fetch_add(1, Ordering::SeqCst) + 1;
            if n >= 5 {
                parker.shutdown();
                Poll::Ready(())
            } else {
                parker.park_io(cx.waker());
                Poll::Pending
            }
        }));
        executor.run();
        assert!(polls.load(Ordering::SeqCst) >= 5);
    }
}
