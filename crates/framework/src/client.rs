//! The user-side middleware (Algorithm 4, Fig. 8).

use crate::messages::{LocationReport, MatrixRequest};
use crate::service::MatrixService;
use corgi_core::{
    precision_reduction, prune_matrix, AttributeProvider, CorgiError, LocationTree,
    ObfuscationMatrix, Policy,
};
use corgi_geo::LatLng;
use corgi_hexgrid::CellId;
use rand::Rng;
use std::sync::Arc;

/// Everything the user-side flow produced for one location report; useful for
/// inspection, tests and the experiment harness.
#[derive(Debug, Clone)]
pub struct ObfuscationOutcome {
    /// The report handed to the third-party service.
    pub report: LocationReport,
    /// The leaf cell actually containing the user.
    pub real_leaf: CellId,
    /// Cells pruned by the preference evaluation (never shared with the server).
    pub pruned_cells: Vec<CellId>,
    /// The customized (pruned, precision-reduced) matrix the report was sampled from.
    pub customized_matrix: ObfuscationMatrix,
}

/// The CORGI client running on the user device (or a trusted edge server).
///
/// The client talks to any [`MatrixService`] through the trait object, so the
/// same client code runs against a bare [`crate::ForestGenerator`], a cached
/// or instrumented stack — or across a process boundary over a
/// [`crate::TcpTransport`], which mirrors the server's tree and prior through
/// the connection handshake.
pub struct CorgiClient<P: AttributeProvider> {
    service: Arc<dyn MatrixService>,
    tree: Arc<LocationTree>,
    policy: Policy,
    attribute_provider: P,
}

impl<P: AttributeProvider> CorgiClient<P> {
    /// Create a client bound to a serving stack, a customization policy, and the
    /// user's private attribute provider.
    pub fn new(
        service: Arc<dyn MatrixService>,
        policy: Policy,
        attribute_provider: P,
    ) -> Result<Self, CorgiError> {
        let tree = service.tree();
        policy.validate_for_height(tree.height())?;
        Ok(Self {
            service,
            tree,
            policy,
            attribute_provider,
        })
    }

    /// The client's policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Algorithm 4: generate an obfuscated location report for the user's real
    /// position.
    ///
    /// 1. find the privacy-forest subtree containing the real location;
    /// 2. evaluate the user preferences on its leaves → prune set `S`;
    /// 3. ask the server for the privacy forest, revealing only `(privacy_l, |S|)`;
    /// 4. select the matrix of the own subtree, prune it, reduce precision;
    /// 5. sample the obfuscated cell from the row of the real location's ancestor.
    pub fn generate_obfuscated_location<R: Rng>(
        &self,
        real_location: &LatLng,
        rng: &mut R,
    ) -> Result<ObfuscationOutcome, CorgiError> {
        let real_leaf = self.tree.leaf_containing(real_location)?;
        let subtree = self
            .tree
            .subtree_containing(&real_leaf, self.policy.privacy_level)?;

        // Step 2: private preference evaluation.  The paper's policies (remove
        // home/office/outliers from the *obfuscation range*) keep the real
        // location as a matrix row even when it matches a predicate, so the
        // real leaf is never pruned.
        let pruned_cells: Vec<CellId> = self
            .policy
            .cells_to_prune(&subtree, &self.attribute_provider)
            .into_iter()
            .filter(|c| *c != real_leaf)
            .collect();

        // Step 3: request the privacy forest (only privacy_l and |S| leave the device).
        let response = self.service.privacy_forest(MatrixRequest {
            privacy_level: self.policy.privacy_level,
            delta: pruned_cells.len(),
        })?;

        // Step 4: select the own subtree's matrix, prune, reduce precision.
        let entry = response
            .matrix_for_leaf(&real_leaf)
            .ok_or(CorgiError::UnknownCell(real_leaf))?;
        let pruned = prune_matrix(&entry.matrix, &pruned_cells)?;
        let prior = self.service.prior();
        let leaf_priors: Vec<f64> = pruned
            .cells()
            .iter()
            .map(|c| prior.prob_of_cell(self.tree.grid(), c).max(1e-12))
            .collect();
        let customized = precision_reduction(
            &pruned,
            &self.tree,
            self.policy.precision_level,
            &leaf_priors,
        )?;

        // Step 5: sample from the row of the real location's ancestor at the
        // precision level.
        let row_cell = real_leaf.ancestor_at(self.policy.precision_level);
        let reported_cell = customized.sample(&row_cell, rng)?;

        Ok(ObfuscationOutcome {
            report: LocationReport {
                reported_cell,
                precision_level: self.policy.precision_level,
            },
            real_leaf,
            pruned_cells,
            customized_matrix: customized,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CachingService, ForestGenerator, MetadataAttributeProvider, ServerConfig};
    use corgi_core::{AttributeValue, ComparisonOp, Policy, Predicate};
    use corgi_datagen::{
        GowallaLikeConfig, GowallaLikeGenerator, LocationMetadata, PriorDistribution,
    };
    use corgi_hexgrid::{HexGrid, HexGridConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Setup {
        service: Arc<dyn MatrixService>,
        grid: HexGrid,
        metadata: LocationMetadata,
        user: u32,
        real_location: LatLng,
    }

    fn setup() -> Setup {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let (dataset, _) =
            GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let metadata = LocationMetadata::from_dataset(&grid, &dataset, 0.9);
        let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
        let user = metadata.users_with_home()[0];
        let real_location = grid.cell_center(&metadata.home_of(user).unwrap());
        let service: Arc<dyn MatrixService> =
            Arc::new(CachingService::with_defaults(ForestGenerator::new(
                LocationTree::new(grid.clone()),
                prior,
                ServerConfig::builder()
                    .robust_iterations(2)
                    .targets_per_subtree(5)
                    .build(),
            )));
        Setup {
            service,
            grid,
            metadata,
            user,
            real_location,
        }
    }

    fn policy_no_prefs(privacy: u8, precision: u8) -> Policy {
        Policy::new(privacy, precision, vec![]).unwrap()
    }

    #[test]
    fn report_stays_within_the_privacy_subtree() {
        let s = setup();
        let provider =
            MetadataAttributeProvider::new(&s.grid, &s.metadata, s.user, s.real_location);
        let client =
            CorgiClient::new(Arc::clone(&s.service), policy_no_prefs(1, 0), provider).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let outcome = client
                .generate_obfuscated_location(&s.real_location, &mut rng)
                .unwrap();
            let tree = s.service.tree();
            let subtree = tree.subtree_containing(&outcome.real_leaf, 1).unwrap();
            assert!(subtree.contains(&outcome.report.reported_cell));
            assert_eq!(outcome.report.precision_level, 0);
        }
    }

    #[test]
    fn precision_level_controls_report_granularity() {
        let s = setup();
        let provider =
            MetadataAttributeProvider::new(&s.grid, &s.metadata, s.user, s.real_location);
        let client =
            CorgiClient::new(Arc::clone(&s.service), policy_no_prefs(2, 1), provider).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = client
            .generate_obfuscated_location(&s.real_location, &mut rng)
            .unwrap();
        assert_eq!(outcome.report.reported_cell.level(), 1);
        assert_eq!(outcome.customized_matrix.size(), 7);
    }

    #[test]
    fn preferences_remove_cells_from_the_customized_matrix() {
        let s = setup();
        let provider =
            MetadataAttributeProvider::new(&s.grid, &s.metadata, s.user, s.real_location);
        // Remove the user's home and any outlier cells from the obfuscation range.
        let policy = Policy::new(
            1,
            0,
            vec![Predicate::is_false("home"), Predicate::is_false("outlier")],
        )
        .unwrap();
        let client = CorgiClient::new(Arc::clone(&s.service), policy, provider).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = client
            .generate_obfuscated_location(&s.real_location, &mut rng)
            .unwrap();
        // The real location is the home cell here, and the real cell is never pruned;
        // but any *other* home/outlier cells are gone from the matrix.
        for pruned in &outcome.pruned_cells {
            assert!(outcome.customized_matrix.index_of(pruned).is_none());
            assert_ne!(*pruned, outcome.real_leaf);
        }
        outcome.customized_matrix.check_stochastic(1e-6).unwrap();
    }

    #[test]
    fn distance_preference_limits_obfuscation_range() {
        let s = setup();
        let provider =
            MetadataAttributeProvider::new(&s.grid, &s.metadata, s.user, s.real_location);
        let policy = Policy::new(
            1,
            0,
            vec![Predicate::new(
                "distance",
                ComparisonOp::Le,
                AttributeValue::Number(0.7),
            )],
        )
        .unwrap();
        let client = CorgiClient::new(Arc::clone(&s.service), policy, provider).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let outcome = client
            .generate_obfuscated_location(&s.real_location, &mut rng)
            .unwrap();
        // Every surviving cell is within 0.7 km of the real location (plus the
        // real cell itself which is never pruned).
        for cell in outcome.customized_matrix.cells() {
            if *cell == outcome.real_leaf {
                continue;
            }
            let d = corgi_geo::haversine_km(&s.real_location, &s.grid.cell_center(cell));
            assert!(
                d <= 0.7 + 1e-9,
                "cell at {d} km survived the distance filter"
            );
        }
    }

    #[test]
    fn invalid_policy_rejected_at_construction() {
        let s = setup();
        let provider =
            MetadataAttributeProvider::new(&s.grid, &s.metadata, s.user, s.real_location);
        let policy = Policy::new(7, 0, vec![]).unwrap();
        assert!(CorgiClient::new(Arc::clone(&s.service), policy, provider).is_err());
    }

    #[test]
    fn point_outside_region_is_an_error() {
        let s = setup();
        let provider =
            MetadataAttributeProvider::new(&s.grid, &s.metadata, s.user, s.real_location);
        let client =
            CorgiClient::new(Arc::clone(&s.service), policy_no_prefs(1, 0), provider).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let tokyo = LatLng::new(35.67, 139.65).unwrap();
        assert!(client
            .generate_obfuscated_location(&tokyo, &mut rng)
            .is_err());
    }
}
