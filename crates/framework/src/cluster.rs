//! Cluster serving (protocols 1.4–1.5): shard routing, peer replication,
//! liveness probing and the wire-visible cluster counters.
//!
//! A CORGI deployment outgrows one server long before it outgrows one cache:
//! the working set is a few hundred `(privacy_level, δ)` keys, but admission
//! control bounds how many concurrent solves a single dispatch pool accepts.
//! This module turns N independent [`TcpServer`]s into one cluster with three
//! pieces, none of which requires a coordinator:
//!
//! * **[`ShardRouter`]** — a client-side [`MatrixService`] that rendezvous-
//!   hashes the cache key across the shard endpoints, so every client agrees
//!   on which shard owns a key without any shared state.  A shard that sheds
//!   (retryable overload) or fails mid-request is failed over to the
//!   next-ranked shard with per-round backoff.
//! * **[`Replicator`] + [`ReplicatingService`]** — server-side peer links.
//!   The wrapper sits *inside* the caching layer, so exactly the cold-miss
//!   single-flight leader offers its freshly solved forest to a bounded
//!   drop-oldest per-peer queue; a reactor task flushes the queues to the
//!   peers as fire-and-forget `WarmPush` frames.  A cold miss on shard A is
//!   then a warm hit on shard B without a second LP solve.
//! * **[`StatsRequest`]/[`StatsReport`]** — a request frame returning the
//!   server's [`TransportStats`], [`CacheStats`] and [`ClusterStats`] over
//!   the wire, so harnesses observe a remote server exactly as tests observe
//!   an in-process one.
//!
//! Frame authentication for the whole tier is negotiated per connection from
//! the shared cluster key — see [`crate::auth`].  Peer links and the router
//! both honour it; a misconfigured key is a structured
//! [`Unauthenticated`](crate::ServiceErrorKind::Unauthenticated) rejection at
//! the hello exchange, never a silent desync.
//!
//! Protocol 1.5 adds the resilience layer: `Ping`/`Pong` liveness probes
//! drive a per-peer health state machine
//! ([`Healthy → Suspect → Down → Probation`](PeerHealthState)) so the router
//! skips known-dead shards *before* paying a connect timeout, and the
//! anti-entropy digest exchange
//! ([`DigestRequest`](crate::warm::DigestRequest)/
//! [`DigestReply`](crate::warm::DigestReply)) lets a restarted shard re-warm
//! its cache from healthy peers instead of re-solving — see
//! [`TcpServer::rewarm_from_peers`](crate::TcpServer::rewarm_from_peers).
//!
//! ```text
//!                      ┌─────────────┐
//!        requests ───► │ ShardRouter │  rendezvous_rank(key) → shard
//!                      └──┬───┬───┬──┘
//!              ┌──────────┘   │   └──────────┐
//!         ┌────▼────┐    ┌────▼────┐    ┌────▼────┐
//!         │ shard A │───►│ shard B │───►│ shard C │   WarmPush peer links
//!         └─────────┘◄───└─────────┘◄───└─────────┘   (bounded, drop-oldest)
//! ```
//!
//! [`TcpServer`]: crate::TcpServer

use crate::auth::ClusterKey;
use crate::executor::{oneshot, Handle, Sleep};
use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::messages::{
    MatrixRequest, PrivacyForestResponse, ServiceError, ServiceErrorKind, WireCodec,
};
use crate::pool::ThreadPool;
use crate::service::{CacheStats, MatrixService, WarmInsertOutcome};
use crate::transport::{
    encode_json_frame, parse_json_payload, read_frame_blocking_raw, send_frame_blocking,
    ClientConfig, FrameKind, HelloFrame, HelloReply, TcpTransport, TransportStats,
};
use crate::warm::WarmPush;
use corgi_core::LocationTree;
use corgi_datagen::PriorDistribution;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::future::Future;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Rendezvous hashing
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a: tiny, allocation-free, and plenty uniform for spreading a
/// few hundred cache keys over a handful of shards.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Murmur3-style 64-bit finalization avalanche.  FNV-1a on its own has none:
/// once the per-endpoint bytes are absorbed, a shared key suffix applies the
/// *same* xor-small/multiply sequence to every endpoint's state, which
/// approximately preserves the relative order of the hashes — so endpoints
/// differing in a few characters (loopback ports!) elect the same winner for
/// every key.  Mixing the final state breaks that order dependence.
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Rank shard endpoints for a cache key by rendezvous (highest-random-weight)
/// hashing: every client computes `hash(endpoint ‖ key)` per endpoint and
/// ranks descending, so all clients agree on the owner (index 0) and on the
/// failover order behind it — and removing one endpoint only remaps the keys
/// that endpoint owned.
///
/// Returns a permutation of `0..endpoints.len()`.
pub fn rendezvous_rank<S: AsRef<str>>(
    endpoints: &[S],
    privacy_level: u8,
    delta: usize,
) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> = endpoints
        .iter()
        .enumerate()
        .map(|(index, endpoint)| {
            let mut hash = Fnv1a::new();
            hash.write(endpoint.as_ref().as_bytes());
            // 0xff cannot occur in UTF-8, so the separator keeps
            // ("ab", level 1) and ("a", "b1"-ish keys) from colliding.
            hash.write(&[0xff, privacy_level]);
            hash.write(&(delta as u64).to_be_bytes());
            (fmix64(hash.finish()), index)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, index)| index).collect()
}

// ---------------------------------------------------------------------------
// Wire-visible stats
// ---------------------------------------------------------------------------

/// Request payload of a `Stats` frame (protocol 1.4).  Carries nothing; the
/// reply is a [`StatsReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsRequest {}

/// Reply payload of a `Stats` frame: the server's counters, over the wire.
///
/// `cache` is `None` when the service stack has no caching layer; `cluster`
/// is always present from a 1.4 server (zeroed when the server is not
/// clustered).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Connection-level counters ([`crate::TcpServer::stats`]).
    pub transport: TransportStats,
    /// Caching-layer counters, when the stack has one.
    pub cache: Option<CacheStats>,
    /// Cluster-tier counters ([`crate::TcpServer::cluster_stats`]).
    pub cluster: Option<ClusterStats>,
}

/// Point-in-time counters of the cluster tier.
///
/// A server snapshot ([`crate::TcpServer::cluster_stats`]) fills the push and
/// auth counters plus one [`PeerStats`] per replication peer; a router
/// snapshot ([`ShardRouter::cluster_stats`]) fills `failovers` plus one
/// [`PeerStats`] per shard.  The shape is shared so both travel in a
/// [`StatsReport`] unchanged.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// `WarmPush` frames received from peers.
    pub pushes_received: u64,
    /// Received pushes whose key was already resident (dedup hits).
    pub pushes_deduped: u64,
    /// Key-only pushes shed because the dispatch pool was saturated (a push
    /// is advisory and never competes with live requests).
    pub pushes_ignored: u64,
    /// Frames or hellos rejected by authentication (missing announcement,
    /// wrong key, tampered bytes).
    pub auth_rejections: u64,
    /// Requests the router moved past a failed or shedding shard (client
    /// side only; zero in server snapshots).
    pub failovers: u64,
    /// Rendezvous rankings served from the router's memo cache instead of
    /// being rehashed (client side only; zero in server snapshots).
    pub rank_memo_hits: u64,
    /// Liveness probes completed (protocol 1.5) — server probe tasks or the
    /// router's prober thread, whichever side is reporting.
    pub probes_sent: u64,
    /// Health-state transitions into `Down` observed by this side's probes
    /// (protocol 1.5).
    pub peers_down: u64,
    /// Forests this server pulled from peers while re-warming after a
    /// restart (protocol 1.5; see
    /// [`TcpServer::rewarm_from_peers`](crate::TcpServer::rewarm_from_peers)).
    pub rewarm_keys_pulled: u64,
    /// Anti-entropy digest pulls this server answered with a resident forest
    /// payload, repairing a peer's missed pushes (protocol 1.5).
    pub pushes_repaired: u64,
    /// Per-peer (server) or per-shard (router) link counters.
    pub peers: Vec<PeerStats>,
}

/// Per-link counters inside a [`ClusterStats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PeerStats {
    /// The peer or shard address.
    pub endpoint: String,
    /// `WarmPush` frames fully written to this peer.
    pub pushes_sent: u64,
    /// Pushes evicted from the bounded queue (drop-oldest) because the peer
    /// was slow or down.
    pub pushes_dropped: u64,
    /// Pushes currently waiting in the queue.
    pub queue_depth: u64,
    /// Connections established to this peer or shard.
    pub connects: u64,
    /// Link-level failures (failed connects, dead sockets, poisoned
    /// connections).
    pub link_errors: u64,
    /// Requests completed via this shard (router side only).
    pub requests: u64,
}

/// Server-side atomic counters behind the cluster half of a [`ClusterStats`].
#[derive(Default)]
pub(crate) struct ClusterMetrics {
    pushes_received: AtomicU64,
    pushes_deduped: AtomicU64,
    pushes_ignored: AtomicU64,
    auth_rejections: AtomicU64,
    probes_sent: AtomicU64,
    peers_down: AtomicU64,
    rewarm_keys_pulled: AtomicU64,
    pushes_repaired: AtomicU64,
}

impl ClusterMetrics {
    pub(crate) fn count_push_received(&self) {
        self.pushes_received.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_push_deduped(&self) {
        self.pushes_deduped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_push_ignored(&self) {
        self.pushes_ignored.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_auth_rejection(&self) {
        self.auth_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_probe_sent(&self) {
        self.probes_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_peer_down(&self) {
        self.peers_down.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_rewarm_pulled(&self) {
        self.rewarm_keys_pulled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_push_repaired(&self) {
        self.pushes_repaired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, replicator: Option<&Replicator>) -> ClusterStats {
        ClusterStats {
            pushes_received: self.pushes_received.load(Ordering::Relaxed),
            pushes_deduped: self.pushes_deduped.load(Ordering::Relaxed),
            pushes_ignored: self.pushes_ignored.load(Ordering::Relaxed),
            auth_rejections: self.auth_rejections.load(Ordering::Relaxed),
            failovers: 0,
            rank_memo_hits: 0,
            probes_sent: self.probes_sent.load(Ordering::Relaxed),
            peers_down: self.peers_down.load(Ordering::Relaxed),
            rewarm_keys_pulled: self.rewarm_keys_pulled.load(Ordering::Relaxed),
            pushes_repaired: self.pushes_repaired.load(Ordering::Relaxed),
            peers: replicator.map(Replicator::peer_stats).unwrap_or_default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Liveness probing + peer health (protocol 1.5)
// ---------------------------------------------------------------------------

/// Request payload of a `Ping` frame (protocol 1.5): a liveness probe.  The
/// nonce is echoed back in the [`Pong`] so a probe cannot be satisfied by a
/// stale or replayed reply; on keyed connections the frame is MAC'd like
/// every other post-hello frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ping {
    /// Echo token; the matching [`Pong`] must carry the same value.
    pub nonce: u64,
}

/// Reply payload of a `Ping` frame: the echoed nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pong {
    /// The nonce of the [`Ping`] being answered.
    pub nonce: u64,
}

/// Tunables of the per-peer liveness state machine (protocol 1.5).
///
/// Handed to a [`Replicator`] via [`ReplicationConfig::health`] (server-side
/// probe tasks on the reactor) or to a [`ShardRouter`] via
/// [`RouterConfig::health`] (a dedicated prober thread); `None` in either
/// place disables probing and health tracking entirely, which is the 1.4
/// behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthConfig {
    /// Pause between consecutive probes of the same peer.
    pub probe_interval: Duration,
    /// Socket budget of one probe (bounds the connect, the hello and the
    /// ping/pong read).
    pub probe_timeout: Duration,
    /// Consecutive probe failures that take a peer from `Healthy` to `Down`
    /// (via `Suspect`).
    pub failure_threshold: u32,
    /// Consecutive probe successes a `Down` peer must pass in `Probation`
    /// before it is re-admitted as `Healthy`.
    pub probation_successes: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            probe_interval: Duration::from_secs(1),
            probe_timeout: Duration::from_millis(250),
            failure_threshold: 3,
            probation_successes: 2,
        }
    }
}

/// Where a peer stands in the liveness state machine.
///
/// ```text
///            fail            fail ×threshold
///  Healthy ───────► Suspect ─────────────► Down
///     ▲  ▲             │ ok                  │ ok
///     │  └─────────────┘                     ▼
///     │        ok ×probation           Probation ──fail──► Down
///     └────────────────────────────────────┘
/// ```
///
/// `Healthy` and `Suspect` peers are admitted for requests (a suspicion is
/// not yet a verdict); `Down` and `Probation` peers are skipped by the
/// [`ShardRouter`] until probation completes, so no request ever pays a
/// connect timeout against a known-dead shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerHealthState {
    /// The peer answers probes; requests route to it normally.
    Healthy,
    /// The peer missed this many consecutive probes (fewer than the
    /// threshold); still admitted for requests.
    Suspect(u32),
    /// The peer crossed the failure threshold; requests skip it.
    Down,
    /// A down peer answered a probe again and has passed this many
    /// consecutive probes; still skipped until the configured streak
    /// completes.
    Probation(u32),
}

/// One peer's health cell: the state machine plus the lock guarding it.
pub(crate) struct PeerHealth {
    state: Mutex<PeerHealthState>,
}

impl PeerHealth {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(PeerHealthState::Healthy),
        }
    }

    pub(crate) fn state(&self) -> PeerHealthState {
        *self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether requests may route to this peer (`Healthy` or `Suspect`).
    pub(crate) fn is_admitted(&self) -> bool {
        matches!(
            self.state(),
            PeerHealthState::Healthy | PeerHealthState::Suspect(_)
        )
    }

    /// Feed one probe (or request) outcome through the state machine.
    /// Returns `true` exactly when this observation transitioned the peer
    /// *into* `Down`, so callers can count `peers_down` once per outage.
    pub(crate) fn observe(&self, ok: bool, config: &HealthConfig) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let (next, went_down) = match (*state, ok) {
            (PeerHealthState::Healthy, true) => (PeerHealthState::Healthy, false),
            (PeerHealthState::Suspect(_), true) => (PeerHealthState::Healthy, false),
            (PeerHealthState::Down, true) | (PeerHealthState::Probation(_), true)
                if config.probation_successes <= 1 =>
            {
                (PeerHealthState::Healthy, false)
            }
            (PeerHealthState::Down, true) => (PeerHealthState::Probation(1), false),
            (PeerHealthState::Probation(n), true) => {
                if n + 1 >= config.probation_successes {
                    (PeerHealthState::Healthy, false)
                } else {
                    (PeerHealthState::Probation(n + 1), false)
                }
            }
            (PeerHealthState::Healthy, false) => {
                if config.failure_threshold <= 1 {
                    (PeerHealthState::Down, true)
                } else {
                    (PeerHealthState::Suspect(1), false)
                }
            }
            (PeerHealthState::Suspect(n), false) => {
                if n + 1 >= config.failure_threshold {
                    (PeerHealthState::Down, true)
                } else {
                    (PeerHealthState::Suspect(n + 1), false)
                }
            }
            // Already down: a probation stumble is not a *new* outage.
            (PeerHealthState::Down, false) | (PeerHealthState::Probation(_), false) => {
                (PeerHealthState::Down, false)
            }
        };
        *state = next;
        went_down
    }
}

// ---------------------------------------------------------------------------
// Replication
// ---------------------------------------------------------------------------

/// Tunables of a [`Replicator`]'s peer links.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Bound of each per-peer push queue.  A slow or dead peer evicts the
    /// *oldest* queued push (newest entries are the ones live traffic is
    /// most likely to ask the peer for next); the eviction is counted in
    /// [`PeerStats::pushes_dropped`].
    pub queue_depth: usize,
    /// Ship the solved forest in the push (`true`, the default) so the peer
    /// inserts it without solving, or only the key (`false`) so the peer
    /// re-solves on its own dispatch pool — one duplicate solve instead of a
    /// forest-sized frame.  Payload pushes need the peers'
    /// [`max_inbound_frame`](crate::TransportConfig::max_inbound_frame)
    /// raised above the encoded forest size.
    pub push_payloads: bool,
    /// Payload codecs to advertise on peer links.  The default honours
    /// `CORGI_WIRE_CODEC` (see [`WireCodec::advertisement_from_env`]).
    pub codecs: Vec<WireCodec>,
    /// Cluster key for the peer-link hello; must match the peers' serving
    /// key.  The default reads `CORGI_CLUSTER_KEY`
    /// (see [`ClusterKey::from_env`]).
    pub cluster_key: Option<ClusterKey>,
    /// Blocking connect/handshake budget per attempt (also the link's socket
    /// read timeout during the hello).
    pub connect_timeout: Duration,
    /// Backoff before the first reconnect attempt after a link failure;
    /// doubles per consecutive failure.
    pub retry_backoff: Duration,
    /// Cap on the doubled reconnect backoff.
    pub max_backoff: Duration,
    /// Largest accepted frame on the peer link (the accepted hello reply
    /// carries the peer's grid and prior).
    pub max_frame: usize,
    /// Enable liveness probing of the peers (protocol 1.5): the server spawns
    /// one probe task per reactor shard driving each peer's
    /// [`PeerHealthState`].  `None` (the default) disables probing — the 1.4
    /// behaviour.
    pub health: Option<HealthConfig>,
    /// Deterministic fault injection hook for the peer connect/send paths;
    /// `None` (the default) in production.  See [`crate::fault`].
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            push_payloads: true,
            codecs: WireCodec::advertisement_from_env(),
            cluster_key: ClusterKey::from_env(),
            connect_timeout: Duration::from_secs(5),
            retry_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            max_frame: 64 * 1024 * 1024,
            health: None,
            fault_plan: None,
        }
    }
}

/// One replication peer: its endpoint, bounded push queue and link counters.
pub(crate) struct PeerLink {
    endpoint: String,
    queue: Mutex<VecDeque<WarmPush>>,
    pushes_sent: AtomicU64,
    pushes_dropped: AtomicU64,
    connects: AtomicU64,
    link_errors: AtomicU64,
    /// Liveness state driven by the probe task (protocol 1.5); stays
    /// `Healthy` forever when probing is disabled.
    health: PeerHealth,
}

impl PeerLink {
    fn new(endpoint: String) -> Self {
        Self {
            endpoint,
            queue: Mutex::new(VecDeque::new()),
            pushes_sent: AtomicU64::new(0),
            pushes_dropped: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            link_errors: AtomicU64::new(0),
            health: PeerHealth::new(),
        }
    }

    /// Enqueue a push, evicting the oldest entry at the bound.
    fn offer(&self, push: WarmPush, depth: usize) {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        while queue.len() >= depth.max(1) {
            queue.pop_front();
            self.pushes_dropped.fetch_add(1, Ordering::Relaxed);
        }
        queue.push_back(push);
    }

    fn pop(&self) -> Option<WarmPush> {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    fn stats(&self) -> PeerStats {
        PeerStats {
            endpoint: self.endpoint.clone(),
            pushes_sent: self.pushes_sent.load(Ordering::Relaxed),
            pushes_dropped: self.pushes_dropped.load(Ordering::Relaxed),
            queue_depth: self.queue.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
            connects: self.connects.load(Ordering::Relaxed),
            link_errors: self.link_errors.load(Ordering::Relaxed),
            requests: 0,
        }
    }
}

/// The replication engine: per-peer bounded push queues, filled by a
/// [`ReplicatingService`] and drained by a reactor task that
/// [`TcpServer::bind`](crate::TcpServer::bind) spawns when the replicator is
/// handed to it via [`TransportConfig::replication`].
///
/// Peers may be added before or after bind ([`Replicator::add_peer`]) — in a
/// loopback cluster the servers must all be bound before any of them knows
/// the others' port-0 addresses.
///
/// [`TransportConfig::replication`]: crate::TransportConfig::replication
pub struct Replicator {
    config: ReplicationConfig,
    links: Mutex<Vec<Arc<PeerLink>>>,
    /// One waker slot per reactor flush task (indexed by shard), re-armed at
    /// the top of every task poll and taken by [`offer`](Self::offer) /
    /// [`add_peer`](Self::add_peer) — this is what lets an idle flush task
    /// block indefinitely instead of polling its queues once per tick.
    flush_wakers: Mutex<Vec<Option<Waker>>>,
}

impl fmt::Debug for Replicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replicator")
            .field("peers", &self.links().len())
            .field("queue_depth", &self.config.queue_depth)
            .field("push_payloads", &self.config.push_payloads)
            .finish()
    }
}

impl Replicator {
    /// A replicator with no peers yet.
    pub fn new(config: ReplicationConfig) -> Arc<Self> {
        Arc::new(Self {
            config,
            links: Mutex::new(Vec::new()),
            flush_wakers: Mutex::new(Vec::new()),
        })
    }

    /// Add a peer endpoint; the flush task owning its index (on every server
    /// this replicator is bound to) is woken to pick it up immediately.
    pub fn add_peer(&self, endpoint: impl Into<String>) {
        {
            let mut links = self.links.lock().unwrap_or_else(|e| e.into_inner());
            links.push(Arc::new(PeerLink::new(endpoint.into())));
        }
        self.wake_flushers();
    }

    /// Re-arm the flush waker for `slot`.  Called at the top of every flush
    /// task poll, *before* the queues are inspected: an offer landing after
    /// the registration wakes the task, one landing before is visible in the
    /// queue check — no lost-wakeup window either way.
    pub(crate) fn register_flush_waker(&self, slot: usize, waker: &Waker) {
        let mut wakers = self.flush_wakers.lock().unwrap_or_else(|e| e.into_inner());
        if wakers.len() <= slot {
            wakers.resize(slot + 1, None);
        }
        wakers[slot] = Some(waker.clone());
    }

    /// Wake (and disarm) every registered flush task.
    fn wake_flushers(&self) {
        let wakers: Vec<Waker> = self
            .flush_wakers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter_mut()
            .filter_map(|slot| slot.take())
            .collect();
        for waker in wakers {
            waker.wake();
        }
    }

    /// Offer a freshly solved forest to every peer queue (drop-oldest at the
    /// bound).  Called by [`ReplicatingService`] on the cold-miss leader
    /// path; also usable directly by custom stacks.
    pub fn offer(&self, request: MatrixRequest, forest: &Arc<PrivacyForestResponse>) {
        let links = self.links();
        if links.is_empty() {
            return;
        }
        let push = WarmPush {
            privacy_level: request.privacy_level,
            delta: request.delta,
            forest: self.config.push_payloads.then(|| Arc::clone(forest)),
        };
        for link in links {
            link.offer(push.clone(), self.config.queue_depth);
        }
        self.wake_flushers();
    }

    /// Per-peer link counters.
    pub fn peer_stats(&self) -> Vec<PeerStats> {
        self.links().iter().map(|link| link.stats()).collect()
    }

    fn links(&self) -> Vec<Arc<PeerLink>> {
        self.links.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Service wrapper that offers every forest it generates to a [`Replicator`].
///
/// Stack it *inside* the caching layer —
/// `CachingService(ReplicatingService(ForestGenerator))` — so it runs exactly
/// on the cold-miss single-flight leader path: cache hits and coalesced
/// followers never reach it, so a key is offered to the peers once per actual
/// solve, not once per request.
pub struct ReplicatingService<S> {
    inner: S,
    replicator: Arc<Replicator>,
}

impl<S> ReplicatingService<S> {
    /// Wrap `inner`, offering its generations to `replicator`.
    pub fn new(inner: S, replicator: Arc<Replicator>) -> Self {
        Self { inner, replicator }
    }
}

impl<S: MatrixService> MatrixService for ReplicatingService<S> {
    fn privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        let forest = self.inner.privacy_forest(request)?;
        self.replicator.offer(request, &forest);
        Ok(forest)
    }

    fn tree(&self) -> Arc<LocationTree> {
        self.inner.tree()
    }

    fn prior(&self) -> Arc<PriorDistribution> {
        self.inner.prior()
    }

    fn warm_insert(&self, forest: Arc<PrivacyForestResponse>) -> WarmInsertOutcome {
        self.inner.warm_insert(forest)
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache_stats()
    }

    fn resident_keys(&self) -> Vec<MatrixRequest> {
        self.inner.resident_keys()
    }

    fn resident(&self, request: MatrixRequest) -> Option<Arc<PrivacyForestResponse>> {
        self.inner.resident(request)
    }

    fn cache_generation(&self) -> u64 {
        self.inner.cache_generation()
    }
}

/// Spawn one shard's queue-flushing task on that shard's reactor: the task
/// drives every peer link whose index `i` satisfies
/// `i % shard_count == shard_index`, so replication work shards with the
/// connections instead of serializing on one reactor.
pub(crate) fn spawn_replication_shard(
    handle: &Handle,
    replicator: Arc<Replicator>,
    dispatch: Arc<ThreadPool>,
    shard_index: usize,
    shard_count: usize,
) {
    handle.spawn(ReplicationTask {
        handle: handle.clone(),
        replicator,
        dispatch,
        shard_index,
        shard_count: shard_count.max(1),
        known_links: 0,
        drivers: Vec::new(),
    });
}

/// An established (post-hello) nonblocking peer connection.
struct PeerConn {
    stream: TcpStream,
    codec: WireCodec,
    auth: Option<ClusterKey>,
    write_buf: Vec<u8>,
    write_pos: usize,
}

/// Per-link connection state: back off, connect off-reactor, stream pushes.
enum LinkState {
    Idle(Sleep),
    Connecting(oneshot::Receiver<Result<PeerConn, ServiceError>>),
    Streaming(PeerConn),
}

struct LinkDriver {
    state: LinkState,
    backoff: Duration,
}

/// Reactor task draining the peer queues of one [`Replicator`] shard.
///
/// Blocking work (connect + hello) runs on the dispatch pool and returns via
/// a oneshot; the reactor only ever does nonblocking reads and writes.  A
/// link failure returns the driver to `Idle` with doubled backoff — queued
/// pushes survive the outage (up to the drop-oldest bound) and flush once the
/// peer is back.
///
/// The task is fully event-driven: offers and new peers wake it through the
/// replicator's flush waker, streaming sockets park on kernel readiness
/// ([`Handle::park_socket`]), and backoffs sit in the timer wheel — it never
/// asks for tick service, so an idle cluster reactor stays blocked.
struct ReplicationTask {
    handle: Handle,
    replicator: Arc<Replicator>,
    dispatch: Arc<ThreadPool>,
    shard_index: usize,
    shard_count: usize,
    /// Global link indexes examined so far (links only ever append).
    known_links: usize,
    /// Drivers for this shard's links, tagged with their global index.
    drivers: Vec<(usize, LinkDriver)>,
}

impl Future for ReplicationTask {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.handle.is_shutdown() {
            return Poll::Ready(());
        }
        // Register for offer/add_peer wakes *before* inspecting any queue
        // (see register_flush_waker for the ordering argument).
        this.replicator
            .register_flush_waker(this.shard_index, cx.waker());
        let links = this.replicator.links();
        while this.known_links < links.len() {
            let index = this.known_links;
            this.known_links += 1;
            if index % this.shard_count == this.shard_index {
                // A fresh link connects immediately (zero-length backoff
                // sleep).
                this.drivers.push((
                    index,
                    LinkDriver {
                        state: LinkState::Idle(this.handle.sleep(Duration::ZERO)),
                        backoff: this.replicator.config.retry_backoff,
                    },
                ));
            }
        }
        let mut progress = true;
        while progress {
            progress = false;
            for (index, driver) in this.drivers.iter_mut() {
                progress |= step_link(
                    driver,
                    &links[*index],
                    &this.handle,
                    &this.dispatch,
                    &this.replicator.config,
                    cx,
                );
            }
        }
        // Streaming links park on their socket (read: EOF/error detection is
        // the link's only inbound signal; write: only while bytes are
        // actually blocked).  Idle links wait on the backoff timer or the
        // flush waker, Connecting on its oneshot.
        for (_, driver) in &this.drivers {
            if let LinkState::Streaming(conn) = &driver.state {
                this.handle.park_socket(
                    crate::transport::sock_fd(&conn.stream),
                    true,
                    conn.write_pos < conn.write_buf.len(),
                    cx.waker(),
                );
            }
        }
        Poll::Pending
    }
}

/// Advance one link's state machine; returns whether progress was made.
fn step_link(
    driver: &mut LinkDriver,
    link: &Arc<PeerLink>,
    handle: &Handle,
    dispatch: &Arc<ThreadPool>,
    config: &ReplicationConfig,
    cx: &mut Context<'_>,
) -> bool {
    match &mut driver.state {
        LinkState::Idle(retry) => {
            if Pin::new(retry).poll(cx).is_pending() {
                return false;
            }
            // Nothing queued yet: stay idle until an offer wakes the task
            // (via the replicator's flush waker) instead of dialing a peer
            // we have nothing to say to.  The expired sleep stays in place,
            // polling Ready whenever the task next runs.
            if link
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty()
            {
                return false;
            }
            let (tx, rx) = oneshot::channel();
            let endpoint = link.endpoint.clone();
            let config = config.clone();
            dispatch.execute(move || {
                let _ = tx.send(connect_peer(&endpoint, &config));
            });
            driver.state = LinkState::Connecting(rx);
            true
        }
        LinkState::Connecting(rx) => match Pin::new(rx).poll(cx) {
            Poll::Ready(Ok(Ok(conn))) => {
                link.connects.fetch_add(1, Ordering::Relaxed);
                driver.backoff = config.retry_backoff;
                driver.state = LinkState::Streaming(conn);
                true
            }
            Poll::Ready(Ok(Err(_)) | Err(_)) => {
                fail_link(driver, link, handle, config);
                true
            }
            Poll::Pending => false,
        },
        LinkState::Streaming(conn) => {
            let mut progress = false;
            // Drain whatever the peer says.  The link is one-way — the only
            // frames that can come back are structured errors right before
            // the peer hangs up — so bytes are discarded and EOF/error is
            // the actual signal.
            let mut scratch = [0u8; 1024];
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        fail_link(driver, link, handle, config);
                        return true;
                    }
                    Ok(_) => progress = true,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        fail_link(driver, link, handle, config);
                        return true;
                    }
                }
            }
            loop {
                if conn.write_pos < conn.write_buf.len() {
                    match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                        Ok(0) => {
                            fail_link(driver, link, handle, config);
                            return true;
                        }
                        Ok(n) => {
                            conn.write_pos += n;
                            progress = true;
                            if conn.write_pos == conn.write_buf.len() {
                                link.pushes_sent.fetch_add(1, Ordering::Relaxed);
                                conn.write_buf.clear();
                                conn.write_pos = 0;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            fail_link(driver, link, handle, config);
                            return true;
                        }
                    }
                } else if let Some(push) = link.pop() {
                    let frame = conn.codec.encode_frame(&push);
                    conn.write_buf = match &conn.auth {
                        Some(key) => key.seal(frame),
                        None => frame,
                    };
                    conn.write_pos = 0;
                    progress = true;
                } else {
                    break;
                }
            }
            progress
        }
    }
}

/// Tear a link down to `Idle` with doubled backoff.
fn fail_link(
    driver: &mut LinkDriver,
    link: &Arc<PeerLink>,
    handle: &Handle,
    config: &ReplicationConfig,
) {
    link.link_errors.fetch_add(1, Ordering::Relaxed);
    if let LinkState::Streaming(conn) = &driver.state {
        // The stream closes when the state is replaced below; drop its
        // readiness registration first (see ConnectionTask::drop).
        handle.deregister_socket(crate::transport::sock_fd(&conn.stream));
    }
    driver.state = LinkState::Idle(handle.sleep(driver.backoff));
    driver.backoff = (driver.backoff * 2).min(config.max_backoff);
}

/// Blocking connect + hello exchange for a peer link (runs on the dispatch
/// pool).  Mirrors the client handshake, including the tolerant read of a
/// plain structured rejection from a peer that does not share our key.
fn connect_peer(endpoint: &str, config: &ReplicationConfig) -> Result<PeerConn, ServiceError> {
    if let Some(plan) = &config.fault_plan {
        if plan.is_partitioned(endpoint) {
            return Err(ServiceError::transport(format!(
                "peer connect failed: {endpoint} is partitioned (injected)"
            )));
        }
        match plan.check(FaultSite::PeerConnect) {
            None => {}
            Some(FaultAction::Delay(pause)) => std::thread::sleep(pause),
            Some(_) => {
                return Err(ServiceError::transport(
                    "peer connect failed: injected fault",
                ))
            }
        }
    }
    let stream = TcpStream::connect(endpoint)
        .map_err(|e| ServiceError::transport(format!("peer connect failed: {e}")))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(config.connect_timeout))
        .map_err(|e| ServiceError::transport(format!("setting peer read timeout: {e}")))?;
    let mut stream = stream;
    let mut hello = HelloFrame::advertising(&config.codecs);
    if config.cluster_key.is_some() {
        hello = hello.authenticated();
    }
    send_frame_blocking(&mut stream, &encode_json_frame(&hello), None)?;
    let (kind, header, mut payload) = read_frame_blocking_raw(&mut stream, config.max_frame, None)?;
    if kind != FrameKind::HelloReply {
        return Err(ServiceError::transport(format!(
            "expected a HelloReply frame from peer, got {kind:?}"
        )));
    }
    if let Some(key) = &config.cluster_key {
        if key.open_split(&header, &mut payload).is_err() {
            return match parse_json_payload::<HelloReply>(&payload) {
                Ok(HelloReply::Rejected(error)) => Err(error),
                _ => Err(ServiceError::unauthenticated(
                    "peer did not authenticate its hello reply; it holds no (or a different) \
                     cluster key",
                )),
            };
        }
    }
    match parse_json_payload::<HelloReply>(&payload)? {
        HelloReply::Accepted { codec, .. } => {
            let codec = match codec {
                None => WireCodec::Json,
                Some(name) => match WireCodec::from_name(&name) {
                    Some(codec) if codec == WireCodec::Json || config.codecs.contains(&codec) => {
                        codec
                    }
                    _ => {
                        return Err(ServiceError::transport(format!(
                            "peer selected codec {name:?}, which this link did not offer"
                        )))
                    }
                },
            };
            stream
                .set_nonblocking(true)
                .map_err(|e| ServiceError::transport(format!("peer stream nonblocking: {e}")))?;
            Ok(PeerConn {
                stream,
                codec,
                auth: config.cluster_key.clone(),
                write_buf: Vec::new(),
                write_pos: 0,
            })
        }
        HelloReply::Rejected(error) => Err(error),
    }
}

/// Everything one blocking probe needs, shared between the server-side probe
/// tasks and the router's prober thread.
pub(crate) struct ProbeContext {
    codecs: Vec<WireCodec>,
    cluster_key: Option<ClusterKey>,
    health: HealthConfig,
    fault_plan: Option<Arc<FaultPlan>>,
    max_frame: usize,
}

/// One blocking liveness probe: connect, hello, sealed `Ping`, check the
/// echoed nonce.  Every socket operation is bounded by
/// [`HealthConfig::probe_timeout`]; any failure (partition, timeout, bad MAC,
/// wrong nonce) is simply `false` — the state machine turns repetition into a
/// verdict.
fn probe_peer(endpoint: &str, ctx: &ProbeContext) -> bool {
    static PROBE_NONCE: AtomicU64 = AtomicU64::new(1);
    let config = ReplicationConfig {
        codecs: ctx.codecs.clone(),
        cluster_key: ctx.cluster_key.clone(),
        connect_timeout: ctx.health.probe_timeout,
        max_frame: ctx.max_frame,
        fault_plan: ctx.fault_plan.clone(),
        ..ReplicationConfig::default()
    };
    let Ok(mut conn) = connect_peer(endpoint, &config) else {
        return false;
    };
    // connect_peer hands the stream back nonblocking (for the reactor); the
    // probe runs blocking with a hard read deadline instead.
    if conn.stream.set_nonblocking(false).is_err()
        || conn
            .stream
            .set_read_timeout(Some(ctx.health.probe_timeout))
            .is_err()
    {
        return false;
    }
    let nonce = PROBE_NONCE.fetch_add(1, Ordering::Relaxed);
    let frame = conn.codec.encode_frame(&Ping { nonce });
    let frame = match &conn.auth {
        Some(key) => key.seal(frame),
        None => frame,
    };
    if send_frame_blocking(&mut conn.stream, &frame, None).is_err() {
        return false;
    }
    let Ok((kind, header, mut payload)) =
        read_frame_blocking_raw(&mut conn.stream, ctx.max_frame, None)
    else {
        return false;
    };
    if kind != FrameKind::Pong {
        return false;
    }
    if let Some(key) = &conn.auth {
        if key.open_split(&header, &mut payload).is_err() {
            return false;
        }
    }
    matches!(
        conn.codec.decode_payload::<Pong>(&payload),
        Ok(pong) if pong.nonce == nonce
    )
}

/// Spawn one shard's probe task on that shard's reactor (no-op unless
/// [`ReplicationConfig::health`] is set).  Like replication flushing, peer
/// `i` is probed by the task on reactor shard `i % shard_count`, so probing
/// scales with the reactors instead of serializing on one.
pub(crate) fn spawn_probe_shard(
    handle: &Handle,
    replicator: Arc<Replicator>,
    dispatch: Arc<ThreadPool>,
    cluster: Arc<ClusterMetrics>,
    shard_index: usize,
    shard_count: usize,
) {
    if replicator.config.health.is_none() {
        return;
    }
    handle.spawn(ProbeTask {
        rescan: handle.sleep(Duration::ZERO),
        handle: handle.clone(),
        replicator,
        dispatch,
        cluster,
        shard_index,
        shard_count: shard_count.max(1),
        known_links: 0,
        probes: Vec::new(),
    });
}

/// Per-peer probe progress: waiting out the interval, or waiting for the
/// blocking probe (running on the dispatch pool) to report back.
enum ProbeState {
    Idle(Sleep),
    Waiting(oneshot::Receiver<bool>),
}

/// Reactor task probing this shard's peers every
/// [`HealthConfig::probe_interval`].
///
/// The blocking probe itself runs on the dispatch pool and reports through a
/// oneshot, so the reactor never blocks; a rescan timer re-arms every
/// interval so peers added after bind ([`Replicator::add_peer`]) are picked
/// up without a dedicated wakeup path.
struct ProbeTask {
    handle: Handle,
    replicator: Arc<Replicator>,
    dispatch: Arc<ThreadPool>,
    cluster: Arc<ClusterMetrics>,
    shard_index: usize,
    shard_count: usize,
    known_links: usize,
    rescan: Sleep,
    /// Probe state per owned link, tagged with its global index.
    probes: Vec<(usize, ProbeState)>,
}

impl Future for ProbeTask {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.handle.is_shutdown() {
            return Poll::Ready(());
        }
        let Some(health) = this.replicator.config.health.clone() else {
            return Poll::Ready(());
        };
        // Keep the rescan timer armed so late add_peer calls are adopted.
        while Pin::new(&mut this.rescan).poll(cx).is_ready() {
            this.rescan = this.handle.sleep(health.probe_interval);
        }
        let links = this.replicator.links();
        while this.known_links < links.len() {
            let index = this.known_links;
            this.known_links += 1;
            if index % this.shard_count == this.shard_index {
                this.probes
                    .push((index, ProbeState::Idle(this.handle.sleep(Duration::ZERO))));
            }
        }
        if this.probes.is_empty() {
            return Poll::Pending;
        }
        let ctx = Arc::new(ProbeContext {
            codecs: this.replicator.config.codecs.clone(),
            cluster_key: this.replicator.config.cluster_key.clone(),
            health: health.clone(),
            fault_plan: this.replicator.config.fault_plan.clone(),
            max_frame: this.replicator.config.max_frame,
        });
        let mut progress = true;
        while progress {
            progress = false;
            for (index, state) in this.probes.iter_mut() {
                match state {
                    ProbeState::Idle(sleep) => {
                        if Pin::new(sleep).poll(cx).is_ready() {
                            let (tx, rx) = oneshot::channel();
                            let endpoint = links[*index].endpoint.clone();
                            let ctx = Arc::clone(&ctx);
                            this.dispatch.execute(move || {
                                let _ = tx.send(probe_peer(&endpoint, &ctx));
                            });
                            *state = ProbeState::Waiting(rx);
                            progress = true;
                        }
                    }
                    ProbeState::Waiting(rx) => {
                        if let Poll::Ready(result) = Pin::new(rx).poll(cx) {
                            // A dropped sender (pool shutting down) reads as a
                            // failed probe; the state machine absorbs it.
                            let ok = result.unwrap_or(false);
                            this.cluster.count_probe_sent();
                            if links[*index].health.observe(ok, &health) {
                                this.cluster.count_peer_down();
                            }
                            *state = ProbeState::Idle(this.handle.sleep(health.probe_interval));
                            progress = true;
                        }
                    }
                }
            }
        }
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// Shard router
// ---------------------------------------------------------------------------

/// Tunables of a [`ShardRouter`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Per-shard connection config (codecs, timeouts, cluster key).
    pub client: ClientConfig,
    /// Rounds over the ranked shard list before giving up; backoff applies
    /// between rounds, not between shards within a round.
    pub retry_rounds: usize,
    /// Backoff before round *n* (doubling: `retry_backoff << (n - 1)`).
    pub retry_backoff: Duration,
    /// Enable health tracking (protocol 1.5): a prober thread pings every
    /// shard each interval, request outcomes feed the same state machine,
    /// and routing skips `Down`/`Probation` shards *before* paying a connect
    /// timeout.  `None` (the default) is the 1.4 always-try behaviour.
    pub health: Option<HealthConfig>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            client: ClientConfig::default(),
            retry_rounds: 3,
            retry_backoff: Duration::from_millis(25),
            health: None,
        }
    }
}

/// Per-shard connection slot and counters.
struct ShardSlot {
    endpoint: String,
    conn: Mutex<Option<Arc<TcpTransport>>>,
    requests: AtomicU64,
    connects: AtomicU64,
    link_errors: AtomicU64,
    /// Liveness state fed by the prober thread and by request outcomes;
    /// stays `Healthy` forever when [`RouterConfig::health`] is `None`.
    health: PeerHealth,
}

impl ShardSlot {
    fn new(endpoint: String) -> Self {
        Self {
            endpoint,
            conn: Mutex::new(None),
            requests: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            link_errors: AtomicU64::new(0),
            health: PeerHealth::new(),
        }
    }

    fn stats(&self) -> PeerStats {
        PeerStats {
            endpoint: self.endpoint.clone(),
            pushes_sent: 0,
            pushes_dropped: 0,
            queue_depth: 0,
            connects: self.connects.load(Ordering::Relaxed),
            link_errors: self.link_errors.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
        }
    }
}

/// Memoized shard rankings: `(privacy_level, δ) → rendezvous order`.
type RankCache = Mutex<HashMap<(u8, usize), Arc<Vec<usize>>>>;

/// Client-side shard fan-out: a [`MatrixService`] that routes each request to
/// the shard owning its cache key ([`rendezvous_rank`]) and fails over to the
/// next-ranked shard when the owner sheds, dies mid-request or cannot be
/// reached.
///
/// Semantic failures — invalid requests, generation errors, version or key
/// mismatches — are returned immediately: every shard would answer the same,
/// so failing over only hides the real error.
///
/// All shards must serve the same grid and prior (the router adopts the first
/// reachable shard's tree, exactly as a single [`TcpTransport`] adopts its
/// server's).
pub struct ShardRouter {
    endpoints: Vec<String>,
    config: RouterConfig,
    /// Shared with the prober thread when [`RouterConfig::health`] is set.
    shards: Arc<Vec<ShardSlot>>,
    tree: Arc<LocationTree>,
    prior: Arc<PriorDistribution>,
    failovers: AtomicU64,
    /// Memoized `(privacy_level, δ) → shard ranking`.  The endpoint set is
    /// fixed at connect time and the key space is a few hundred entries, so
    /// the cache never invalidates and is never evicted.
    rank_cache: RankCache,
    rank_memo_hits: AtomicU64,
    probes_sent: Arc<AtomicU64>,
    peers_down: Arc<AtomicU64>,
    /// Joined (via `Drop`) when the router goes away.
    /// Held for its `Drop` (which stops and joins the thread); never read.
    _prober: Option<RouterProber>,
}

/// The router's background prober thread; stopping is edge-triggered through
/// the shared flag and the thread sleeps in short slices, so dropping a
/// router never stalls for a full probe interval.
struct RouterProber {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for RouterProber {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn spawn_router_prober(
    shards: Arc<Vec<ShardSlot>>,
    config: &RouterConfig,
    health: HealthConfig,
    probes_sent: Arc<AtomicU64>,
    peers_down: Arc<AtomicU64>,
) -> RouterProber {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let ctx = ProbeContext {
        codecs: config.client.codecs.clone(),
        cluster_key: config.client.cluster_key.clone(),
        health: health.clone(),
        fault_plan: config.client.fault_plan.clone(),
        max_frame: config.client.max_frame,
    };
    let thread = std::thread::Builder::new()
        .name("corgi-router-probe".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                for slot in shards.iter() {
                    if stop_flag.load(Ordering::Relaxed) {
                        return;
                    }
                    let ok = probe_peer(&slot.endpoint, &ctx);
                    probes_sent.fetch_add(1, Ordering::Relaxed);
                    if slot.health.observe(ok, &health) {
                        peers_down.fetch_add(1, Ordering::Relaxed);
                        // Drop the cached connection so no request ever
                        // reuses the dead socket.
                        *slot.conn.lock().unwrap_or_else(|e| e.into_inner()) = None;
                    }
                }
                let mut slept = Duration::ZERO;
                while slept < health.probe_interval && !stop_flag.load(Ordering::Relaxed) {
                    let slice = Duration::from_millis(10).min(health.probe_interval - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        })
        .expect("spawning the router probe thread");
    RouterProber {
        stop,
        thread: Some(thread),
    }
}

impl ShardRouter {
    /// Connect to a shard set.  Succeeds as long as *one* endpoint is
    /// reachable (the others connect lazily on first use); fails with the
    /// last connect error when none is.
    pub fn connect<I, S>(endpoints: I, config: RouterConfig) -> Result<Self, ServiceError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let endpoints: Vec<String> = endpoints.into_iter().map(Into::into).collect();
        if endpoints.is_empty() {
            return Err(ServiceError::transport(
                "shard router needs at least one endpoint",
            ));
        }
        let shards: Arc<Vec<ShardSlot>> =
            Arc::new(endpoints.iter().cloned().map(ShardSlot::new).collect());
        let mut last_error = None;
        let mut adopted = None;
        for slot in shards.iter() {
            match connect_slot(slot, &config.client) {
                Ok(transport) => {
                    adopted = Some((transport.tree(), transport.prior()));
                    break;
                }
                Err(error) => last_error = Some(error),
            }
        }
        let Some((tree, prior)) = adopted else {
            return Err(last_error
                .unwrap_or_else(|| ServiceError::transport("no shard endpoint reachable")));
        };
        let probes_sent = Arc::new(AtomicU64::new(0));
        let peers_down = Arc::new(AtomicU64::new(0));
        let prober = config.health.clone().map(|health| {
            spawn_router_prober(
                Arc::clone(&shards),
                &config,
                health,
                Arc::clone(&probes_sent),
                Arc::clone(&peers_down),
            )
        });
        Ok(Self {
            endpoints,
            config,
            shards,
            tree,
            prior,
            failovers: AtomicU64::new(0),
            rank_cache: Mutex::new(HashMap::new()),
            rank_memo_hits: AtomicU64::new(0),
            probes_sent,
            peers_down,
            _prober: prober,
        })
    }

    /// The configured shard endpoints, in index order.
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// Router-side cluster counters: total failovers plus per-shard request,
    /// connect and link-error counts.
    pub fn cluster_stats(&self) -> ClusterStats {
        ClusterStats {
            failovers: self.failovers.load(Ordering::Relaxed),
            rank_memo_hits: self.rank_memo_hits.load(Ordering::Relaxed),
            probes_sent: self.probes_sent.load(Ordering::Relaxed),
            peers_down: self.peers_down.load(Ordering::Relaxed),
            peers: self.shards.iter().map(ShardSlot::stats).collect(),
            ..ClusterStats::default()
        }
    }

    /// The health state of each shard, in endpoint order.  Every shard
    /// reports [`Healthy`](PeerHealthState::Healthy) forever when
    /// [`RouterConfig::health`] is `None`.
    pub fn shard_health(&self) -> Vec<PeerHealthState> {
        self.shards.iter().map(|slot| slot.health.state()).collect()
    }

    /// Feed a request outcome into a slot's health cell (no-op without a
    /// health config), counting a fresh `Down` transition.
    fn observe_slot(&self, slot: &ShardSlot, ok: bool) {
        if let Some(health) = &self.config.health {
            if slot.health.observe(ok, health) {
                self.peers_down.fetch_add(1, Ordering::Relaxed);
                *slot.conn.lock().unwrap_or_else(|e| e.into_inner()) = None;
            }
        }
    }

    /// Memoized [`rendezvous_rank`] over the router's fixed endpoint set: the
    /// ranking of a key never changes, so each `(privacy_level, δ)` pays the
    /// per-endpoint FNV hashing exactly once per router.
    fn ranked_shards(&self, privacy_level: u8, delta: usize) -> Arc<Vec<usize>> {
        let mut cache = self.rank_cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(order) = cache.get(&(privacy_level, delta)) {
            self.rank_memo_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(order);
        }
        let order = Arc::new(rendezvous_rank(&self.endpoints, privacy_level, delta));
        cache.insert((privacy_level, delta), Arc::clone(&order));
        order
    }

    fn transport_for(&self, index: usize) -> Result<Arc<TcpTransport>, ServiceError> {
        connect_slot(&self.shards[index], &self.config.client)
    }
}

/// Get-or-establish a slot's connection (the slot mutex serializes dials, so
/// concurrent routers' threads share one connection per shard).
fn connect_slot(
    slot: &ShardSlot,
    config: &ClientConfig,
) -> Result<Arc<TcpTransport>, ServiceError> {
    let mut conn = slot.conn.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(transport) = conn.as_ref() {
        return Ok(Arc::clone(transport));
    }
    let transport = Arc::new(TcpTransport::connect_with(
        slot.endpoint.as_str(),
        config.clone(),
    )?);
    slot.connects.fetch_add(1, Ordering::Relaxed);
    *conn = Some(Arc::clone(&transport));
    Ok(transport)
}

impl MatrixService for ShardRouter {
    fn privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, ServiceError> {
        let order = self.ranked_shards(request.privacy_level, request.delta);
        let mut last_error = ServiceError::transport("no shards configured");
        let mut first_attempt = true;
        for round in 0..self.config.retry_rounds.max(1) {
            if round > 0 {
                let exponent = u32::try_from(round - 1).unwrap_or(16).min(16);
                std::thread::sleep(self.config.retry_backoff * (1u32 << exponent));
            }
            // Skip Down/Probation shards *before* paying a connect timeout
            // (re-checked per round: health moves while we back off).  If
            // the prober has condemned every shard, fall back to the full
            // ranking — trying a dead shard beats refusing to try at all.
            let admitted: Vec<usize> = if self.config.health.is_some() {
                let alive: Vec<usize> = order
                    .iter()
                    .copied()
                    .filter(|&index| self.shards[index].health.is_admitted())
                    .collect();
                if alive.is_empty() {
                    order.to_vec()
                } else {
                    alive
                }
            } else {
                order.to_vec()
            };
            for &index in &admitted {
                if !first_attempt {
                    self.failovers.fetch_add(1, Ordering::Relaxed);
                }
                first_attempt = false;
                let slot = &self.shards[index];
                let transport = match self.transport_for(index) {
                    Ok(transport) => transport,
                    Err(error) => {
                        slot.link_errors.fetch_add(1, Ordering::Relaxed);
                        self.observe_slot(slot, false);
                        last_error = error;
                        continue;
                    }
                };
                match transport.privacy_forest(request) {
                    Ok(forest) => {
                        slot.requests.fetch_add(1, Ordering::Relaxed);
                        self.observe_slot(slot, true);
                        return Ok(forest);
                    }
                    Err(error) => match error.kind {
                        // Every shard would answer these the same; surface
                        // the real error instead of hiding it in failover.
                        ServiceErrorKind::InvalidRequest
                        | ServiceErrorKind::Generation
                        | ServiceErrorKind::UnsupportedVersion
                        | ServiceErrorKind::Unauthenticated => return Err(error),
                        // A shed is retryable and the connection stays
                        // synchronized: keep it, try the next shard.  The
                        // shard is alive — a shed is not a health failure.
                        ServiceErrorKind::Overloaded => last_error = error,
                        // Transport failures poison the connection: drop it
                        // so the next attempt reconnects fresh.
                        ServiceErrorKind::Transport | ServiceErrorKind::Internal => {
                            slot.link_errors.fetch_add(1, Ordering::Relaxed);
                            *slot.conn.lock().unwrap_or_else(|e| e.into_inner()) = None;
                            self.observe_slot(slot, false);
                            last_error = error;
                        }
                    },
                }
            }
        }
        Err(last_error)
    }

    fn tree(&self) -> Arc<LocationTree> {
        Arc::clone(&self.tree)
    }

    fn prior(&self) -> Arc<PriorDistribution> {
        Arc::clone(&self.prior)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn rendezvous_rank_is_a_stable_permutation_that_uses_every_shard() {
        let endpoints = ["10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"];
        let mut owners = std::collections::HashSet::new();
        for level in 0..4u8 {
            for delta in 0..8usize {
                let rank = rendezvous_rank(&endpoints, level, delta);
                // A permutation of all shard indices…
                let mut sorted = rank.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2]);
                // …that every caller computes identically.
                assert_eq!(rank, rendezvous_rank(&endpoints, level, delta));
                owners.insert(rank[0]);
            }
        }
        // Over a whole key grid the ownership spreads across shards.
        assert!(owners.len() > 1, "all keys landed on one shard: {owners:?}");
    }

    #[test]
    fn rendezvous_rank_spreads_keys_over_endpoints_differing_only_in_port() {
        // Loopback clusters (tests, loadgen, examples) produce endpoints that
        // differ in a handful of port digits.  Without a finalization
        // avalanche the shared key suffix preserved the relative order of
        // the endpoint hashes, electing one shard as the owner of *every*
        // key — a routing monoculture that turned the cluster into a single
        // hot shard.
        let endpoints = ["127.0.0.1:39147", "127.0.0.1:40765", "127.0.0.1:44057"];
        let mut owners = std::collections::HashSet::new();
        for delta in 0..10usize {
            owners.insert(rendezvous_rank(&endpoints, 1, delta)[0]);
        }
        assert!(
            owners.len() > 1,
            "every key elected the same owner: {owners:?}"
        );
    }

    #[test]
    fn removing_an_endpoint_only_remaps_its_own_keys() {
        let full = ["s1:1", "s2:1", "s3:1"];
        let reduced = ["s1:1", "s2:1"];
        for level in 0..3u8 {
            for delta in 0..8usize {
                let before = rendezvous_rank(&full, level, delta);
                let after = rendezvous_rank(&reduced, level, delta);
                if before[0] != 2 {
                    // Keys not owned by the removed shard keep their owner.
                    assert_eq!(after[0], before[0], "key ({level},{delta}) moved");
                }
            }
        }
    }

    #[test]
    fn replication_queue_is_bounded_and_drops_oldest() {
        let replicator = Replicator::new(ReplicationConfig {
            queue_depth: 2,
            push_payloads: false,
            ..ReplicationConfig::default()
        });
        replicator.add_peer("127.0.0.1:1");
        for delta in 0..5usize {
            let link = &replicator.links()[0];
            link.offer(
                WarmPush {
                    privacy_level: 1,
                    delta,
                    forest: None,
                },
                2,
            );
        }
        let stats = replicator.peer_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].queue_depth, 2);
        assert_eq!(stats[0].pushes_dropped, 3);
        // The survivors are the *newest* pushes.
        let link = &replicator.links()[0];
        assert_eq!(link.pop().unwrap().delta, 3);
        assert_eq!(link.pop().unwrap().delta, 4);
        assert!(link.pop().is_none());
    }

    #[test]
    fn shard_rankings_are_memoized_per_key() {
        use corgi_hexgrid::{HexGrid, HexGridConfig};
        let endpoints: Vec<String> = (0..4).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect();
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let router = ShardRouter {
            endpoints: endpoints.clone(),
            config: RouterConfig::default(),
            shards: Arc::new(endpoints.iter().cloned().map(ShardSlot::new).collect()),
            tree: Arc::new(corgi_core::LocationTree::new(grid)),
            prior: Arc::new(PriorDistribution::uniform(16)),
            failovers: AtomicU64::new(0),
            rank_cache: Mutex::new(HashMap::new()),
            rank_memo_hits: AtomicU64::new(0),
            probes_sent: Arc::new(AtomicU64::new(0)),
            peers_down: Arc::new(AtomicU64::new(0)),
            _prober: None,
        };
        for _ in 0..3 {
            for delta in 0..5usize {
                let order = router.ranked_shards(1, delta);
                assert_eq!(*order, rendezvous_rank(&endpoints, 1, delta));
            }
        }
        // Five distinct keys hash once each; the other ten lookups memo-hit.
        let stats = router.cluster_stats();
        assert_eq!(stats.rank_memo_hits, 10);
        assert_eq!(
            router
                .rank_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
            5
        );
    }

    #[test]
    fn health_state_machine_follows_the_documented_transitions() {
        let config = HealthConfig {
            failure_threshold: 3,
            probation_successes: 2,
            ..HealthConfig::default()
        };
        let health = PeerHealth::new();
        assert_eq!(health.state(), PeerHealthState::Healthy);
        assert!(health.is_admitted());

        // Failures walk Healthy → Suspect(1) → Suspect(2) → Down; only the
        // threshold-crossing observation reports a fresh outage.
        assert!(!health.observe(false, &config));
        assert_eq!(health.state(), PeerHealthState::Suspect(1));
        assert!(health.is_admitted(), "suspicion is not yet a verdict");
        assert!(!health.observe(false, &config));
        assert_eq!(health.state(), PeerHealthState::Suspect(2));
        assert!(health.observe(false, &config), "third strike goes Down");
        assert_eq!(health.state(), PeerHealthState::Down);
        assert!(!health.is_admitted());
        assert!(
            !health.observe(false, &config),
            "already down: not a new outage"
        );

        // Recovery: Down → Probation(1) → Healthy after the success streak;
        // probation peers stay excluded until the streak completes.
        assert!(!health.observe(true, &config));
        assert_eq!(health.state(), PeerHealthState::Probation(1));
        assert!(!health.is_admitted(), "probation is still skipped");
        assert!(!health.observe(true, &config));
        assert_eq!(health.state(), PeerHealthState::Healthy);
        assert!(health.is_admitted());

        // A probation stumble drops straight back to Down (silently).
        health.observe(false, &config);
        health.observe(false, &config);
        health.observe(false, &config);
        health.observe(true, &config);
        assert_eq!(health.state(), PeerHealthState::Probation(1));
        assert!(!health.observe(false, &config));
        assert_eq!(health.state(), PeerHealthState::Down);

        // A suspect peer that answers again snaps back to Healthy.
        let flaky = PeerHealth::new();
        flaky.observe(false, &config);
        assert!(!flaky.observe(true, &config));
        assert_eq!(flaky.state(), PeerHealthState::Healthy);
    }

    #[test]
    fn cluster_stats_roundtrip_through_json() {
        let stats = ClusterStats {
            pushes_received: 7,
            pushes_deduped: 3,
            pushes_ignored: 1,
            auth_rejections: 2,
            failovers: 4,
            rank_memo_hits: 6,
            probes_sent: 11,
            peers_down: 1,
            rewarm_keys_pulled: 5,
            pushes_repaired: 2,
            peers: vec![PeerStats {
                endpoint: "127.0.0.1:7001".into(),
                pushes_sent: 9,
                pushes_dropped: 1,
                queue_depth: 0,
                connects: 2,
                link_errors: 1,
                requests: 0,
            }],
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: ClusterStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);

        let report = StatsReport {
            transport: TransportStats::default(),
            cache: None,
            cluster: Some(stats),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: StatsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
