//! Bridges the location metadata of `corgi-datagen` into the policy evaluation
//! of `corgi-core`.

use corgi_core::{AttributeProvider, AttributeValue};
use corgi_datagen::LocationMetadata;
use corgi_geo::LatLng;
use corgi_hexgrid::{CellId, HexGrid};

/// An [`AttributeProvider`] backed by inferred location metadata plus the user's
/// private context (their identity and real location).
///
/// Exposed attributes:
///
/// | var | type | meaning |
/// |---|---|---|
/// | `home` | bool | the cell is the user's (inferred) home cell |
/// | `office` | bool | the cell is the user's (inferred) office cell |
/// | `outlier` | bool | the user visited the cell rarely and at odd hours |
/// | `popular` | bool | the cell has many check-ins overall |
/// | `checkins` | number | total check-ins observed in the cell |
/// | `distance` | number | haversine distance (km) from the user's real location |
pub struct MetadataAttributeProvider<'a> {
    grid: &'a HexGrid,
    metadata: &'a LocationMetadata,
    user_id: u32,
    real_location: LatLng,
}

impl<'a> MetadataAttributeProvider<'a> {
    /// Create a provider for a specific user and real location.
    pub fn new(
        grid: &'a HexGrid,
        metadata: &'a LocationMetadata,
        user_id: u32,
        real_location: LatLng,
    ) -> Self {
        Self {
            grid,
            metadata,
            user_id,
            real_location,
        }
    }
}

impl AttributeProvider for MetadataAttributeProvider<'_> {
    fn attribute(&self, cell: &CellId, var: &str) -> Option<AttributeValue> {
        match var {
            "home" => Some(AttributeValue::Bool(
                self.metadata.home_of(self.user_id) == Some(*cell),
            )),
            "office" => Some(AttributeValue::Bool(
                self.metadata.office_of(self.user_id) == Some(*cell),
            )),
            "outlier" => Some(AttributeValue::Bool(
                self.metadata.is_outlier(self.user_id, cell),
            )),
            "popular" => {
                let idx = self.grid.leaf_index(cell).ok()?;
                Some(AttributeValue::Bool(self.metadata.is_popular(idx)))
            }
            "checkins" => {
                let idx = self.grid.leaf_index(cell).ok()?;
                Some(AttributeValue::Number(
                    self.metadata.checkin_count(idx) as f64
                ))
            }
            "distance" => {
                let center = self.grid.cell_center(cell);
                Some(AttributeValue::Number(corgi_geo::haversine_km(
                    &self.real_location,
                    &center,
                )))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator};
    use corgi_hexgrid::HexGridConfig;

    fn setup() -> (HexGrid, LocationMetadata, u32) {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let (dataset, _) =
            GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let metadata = LocationMetadata::from_dataset(&grid, &dataset, 0.9);
        let user = metadata.users_with_home()[0];
        (grid, metadata, user)
    }

    #[test]
    fn home_attribute_matches_metadata() {
        let (grid, metadata, user) = setup();
        let home = metadata.home_of(user).unwrap();
        let real = grid.cell_center(&home);
        let provider = MetadataAttributeProvider::new(&grid, &metadata, user, real);
        assert_eq!(
            provider.attribute(&home, "home"),
            Some(AttributeValue::Bool(true))
        );
        let other = grid.leaves().iter().find(|c| **c != home).copied().unwrap();
        assert_eq!(
            provider.attribute(&other, "home"),
            Some(AttributeValue::Bool(false))
        );
    }

    #[test]
    fn distance_attribute_is_haversine_to_real_location() {
        let (grid, metadata, user) = setup();
        let real = grid.cell_center(&grid.leaves()[100]);
        let provider = MetadataAttributeProvider::new(&grid, &metadata, user, real);
        let target = grid.leaves()[200];
        let Some(AttributeValue::Number(d)) = provider.attribute(&target, "distance") else {
            panic!("distance attribute missing");
        };
        let expected = corgi_geo::haversine_km(&real, &grid.cell_center(&target));
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn popularity_and_counts_are_consistent() {
        let (grid, metadata, user) = setup();
        let real = grid.cell_center(&grid.leaves()[0]);
        let provider = MetadataAttributeProvider::new(&grid, &metadata, user, real);
        for (idx, cell) in grid.leaves().iter().enumerate().step_by(29) {
            let Some(AttributeValue::Bool(popular)) = provider.attribute(cell, "popular") else {
                panic!("missing popular attribute");
            };
            assert_eq!(popular, metadata.is_popular(idx));
            let Some(AttributeValue::Number(count)) = provider.attribute(cell, "checkins") else {
                panic!("missing checkins attribute");
            };
            assert_eq!(count as usize, metadata.checkin_count(idx));
        }
    }

    #[test]
    fn unknown_attribute_is_none() {
        let (grid, metadata, user) = setup();
        let real = grid.cell_center(&grid.leaves()[0]);
        let provider = MetadataAttributeProvider::new(&grid, &metadata, user, real);
        assert!(provider.attribute(&grid.leaves()[0], "weather").is_none());
    }
}
