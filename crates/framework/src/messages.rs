//! Wire messages exchanged between the user device and the untrusted server.
//!
//! The messages deliberately contain only the information the paper allows the
//! server to see (Section 5): the privacy level, the *number* of locations that
//! will be pruned (δ), and — in the response — one obfuscation matrix per
//! privacy-forest subtree.  Neither the user's real location nor the identity of
//! the pruned cells ever crosses the trust boundary.

use corgi_core::ObfuscationMatrix;
use corgi_hexgrid::CellId;
use serde::{Deserialize, Serialize};

/// Request sent by the user device to the server (step ④ of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixRequest {
    /// The privacy level selecting the privacy forest.
    pub privacy_level: u8,
    /// Number of locations the user may prune (δ); the server reserves privacy
    /// budget accordingly.
    pub delta: usize,
}

/// One entry of the privacy forest: the subtree root and its robust matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestEntry {
    /// Root cell of the subtree at the requested privacy level.
    pub subtree_root: CellId,
    /// Robust obfuscation matrix over the subtree's leaf cells.
    pub matrix: ObfuscationMatrix,
}

/// Response from the server: the full privacy forest (step ⑤ of Fig. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyForestResponse {
    /// The request this response answers.
    pub request: MatrixRequest,
    /// Privacy budget ε (1/km) the matrices were generated with.
    pub epsilon: f64,
    /// One robust matrix per subtree of the privacy forest.
    pub entries: Vec<ForestEntry>,
}

impl PrivacyForestResponse {
    /// Find the matrix whose subtree contains the given leaf cell.
    pub fn matrix_for_leaf(&self, leaf: &CellId) -> Option<&ForestEntry> {
        self.entries
            .iter()
            .find(|e| e.subtree_root.is_ancestor_of(leaf))
    }
}

/// The report sent to a third-party location-based service (step ⑥ of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationReport {
    /// The obfuscated cell at the user's chosen precision level.
    pub reported_cell: CellId,
    /// The precision level of the report (tree level of `reported_cell`).
    pub precision_level: u8,
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    #[test]
    fn messages_roundtrip_through_json() {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let subtree = grid.cells_at_level(1)[0];
        let matrix = ObfuscationMatrix::uniform(subtree.descendant_leaves()).unwrap();
        let response = PrivacyForestResponse {
            request: MatrixRequest {
                privacy_level: 1,
                delta: 2,
            },
            epsilon: 15.0,
            entries: vec![ForestEntry {
                subtree_root: subtree,
                matrix,
            }],
        };
        let json = serde_json::to_string(&response).unwrap();
        let back: PrivacyForestResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, response);

        let report = LocationReport {
            reported_cell: subtree,
            precision_level: 1,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: LocationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn matrix_lookup_by_leaf() {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let entries: Vec<ForestEntry> = grid
            .cells_at_level(1)
            .into_iter()
            .take(3)
            .map(|root| ForestEntry {
                subtree_root: root,
                matrix: ObfuscationMatrix::uniform(root.descendant_leaves()).unwrap(),
            })
            .collect();
        let response = PrivacyForestResponse {
            request: MatrixRequest {
                privacy_level: 1,
                delta: 0,
            },
            epsilon: 10.0,
            entries,
        };
        let leaf_inside = response.entries[1].subtree_root.descendant_leaves()[4];
        let found = response.matrix_for_leaf(&leaf_inside).unwrap();
        assert_eq!(found.subtree_root, response.entries[1].subtree_root);
        // A leaf from a subtree that was not included is not found.
        let other_leaf = grid.cells_at_level(1)[5].descendant_leaves()[0];
        assert!(response.matrix_for_leaf(&other_leaf).is_none());
    }

    #[test]
    fn request_contains_no_location_information() {
        // Compile-time/shape check documented as a test: the request type only
        // carries the privacy level and δ.
        let request = MatrixRequest {
            privacy_level: 2,
            delta: 3,
        };
        let json = serde_json::to_value(request).unwrap();
        let obj = json.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        assert!(obj.contains_key("privacy_level"));
        assert!(obj.contains_key("delta"));
    }
}
