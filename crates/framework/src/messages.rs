//! Wire messages exchanged between the user device and the untrusted server.
//!
//! The messages deliberately contain only the information the paper allows the
//! server to see (Section 5): the privacy level, the *number* of locations that
//! will be pruned (δ), and — in the response — one obfuscation matrix per
//! privacy-forest subtree.  Neither the user's real location nor the identity of
//! the pruned cells ever crosses the trust boundary.
//!
//! Requests and responses travel inside **versioned envelopes**
//! ([`RequestEnvelope`] / [`ResponseEnvelope`]): a [`ProtocolVersion`] lets
//! client and server evolve independently (a major-version mismatch is refused
//! with a structured [`ServiceError`] instead of a deserialization failure), and
//! a caller-chosen `request_id` correlates a response with its request over any
//! transport that reorders replies.
//!
//! How an envelope is *encoded* on the wire is a per-connection property: the
//! [`WireCodec`] negotiated during the transport handshake selects between
//! JSON text (universal, debuggable) and the compact binary encoding of
//! [`crate::codec`] (protocol 1.2+, the default between upgraded
//! peers — matrices travel as raw little-endian `f64` runs instead of
//! formatted decimal text).

use corgi_core::{CorgiError, ObfuscationMatrix};
use corgi_hexgrid::CellId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Request sent by the user device to the server (step ④ of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixRequest {
    /// The privacy level selecting the privacy forest.
    pub privacy_level: u8,
    /// Number of locations the user may prune (δ); the server reserves privacy
    /// budget accordingly.
    pub delta: usize,
}

/// One entry of the privacy forest: the subtree root and its robust matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestEntry {
    /// Root cell of the subtree at the requested privacy level.
    pub subtree_root: CellId,
    /// Robust obfuscation matrix over the subtree's leaf cells.
    pub matrix: ObfuscationMatrix,
}

/// Response from the server: the full privacy forest (step ⑤ of Fig. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyForestResponse {
    /// The request this response answers.
    pub request: MatrixRequest,
    /// Privacy budget ε (1/km) the matrices were generated with.
    pub epsilon: f64,
    /// One robust matrix per subtree of the privacy forest.
    pub entries: Vec<ForestEntry>,
}

impl PrivacyForestResponse {
    /// Find the matrix whose subtree contains the given leaf cell.
    pub fn matrix_for_leaf(&self, leaf: &CellId) -> Option<&ForestEntry> {
        self.entries
            .iter()
            .find(|e| e.subtree_root.is_ancestor_of(leaf))
    }
}

/// Version of the client/server wire protocol.
///
/// Compatibility follows semver: envelopes are interoperable iff the major
/// versions match; the minor version only signals additive evolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolVersion {
    /// Incremented on breaking changes to the wire format.
    pub major: u16,
    /// Incremented on backwards-compatible additions.
    pub minor: u16,
}

/// The protocol version this build of the framework speaks.
///
/// History: 1.0 introduced the envelopes; 1.1 added the [`Transport`]
/// error kind and the framed TCP handshake of [`crate::transport`]; 1.2
/// added codec negotiation and the binary frame codec ([`WireCodec`]);
/// 1.3 added the [`Overloaded`] error kind, replied by a server whose
/// admission control sheds a request instead of queueing it unboundedly;
/// 1.4 added the cluster tier of [`crate::cluster`] — the `WarmPush`
/// peer-replication frame, the `Stats`/`StatsReply` counter frames, HMAC
/// frame authentication negotiated in the hello exchange
/// ([`crate::auth`]), and the [`Unauthenticated`] error kind; 1.5 added
/// the cluster resilience layer — `Ping`/`Pong` liveness probe frames
/// driving the per-peer health state machine, `Digest`/`DigestReply`
/// anti-entropy frames (a recovering shard re-warms its cache from peer
/// digests instead of re-solving), and the dual-key HMAC rotation window
/// (`CORGI_CLUSTER_KEY_PREVIOUS`).  Every step is additive, so 1.0–1.4
/// peers still interoperate (a 1.5 side falls back to JSON frames for
/// pre-1.2 peers; the new frame kinds and the auth handshake fields are
/// only ever used between peers that negotiated them).
///
/// [`Transport`]: ServiceErrorKind::Transport
/// [`Overloaded`]: ServiceErrorKind::Overloaded
/// [`Unauthenticated`]: ServiceErrorKind::Unauthenticated
pub const PROTOCOL_VERSION: ProtocolVersion = ProtocolVersion { major: 1, minor: 5 };

impl ProtocolVersion {
    /// Whether an envelope carrying `other` can be served by this version.
    pub fn is_compatible_with(&self, other: &ProtocolVersion) -> bool {
        self.major == other.major
    }
}

impl fmt::Display for ProtocolVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.major, self.minor)
    }
}

/// Payload encoding of the framed wire protocol (negotiated per connection
/// since protocol 1.2).
///
/// The frame *header* (`"CG"` + kind + length) is codec-independent; the
/// codec only governs how the payload bytes inside a frame are produced:
///
/// * [`Json`](WireCodec::Json) — the UTF-8 JSON text of the serde types in
///   this module.  Every protocol version speaks it; it remains the format of
///   the `Hello`/`HelloReply` bootstrap frames and the fallback whenever a
///   peer predates 1.2 (or forces it, e.g. for debugging with `tcpdump`).
/// * [`Binary`](WireCodec::Binary) — the compact tag-prefixed encoding of
///   [`crate::codec`]: little-endian fixed-width scalars, packed
///   cell ids, and matrices as length-prefixed raw `f64` runs copied straight
///   from (and into) the in-memory representation.  No per-element float
///   formatting or parsing, which is what makes a warm cache hit cost
///   microseconds instead of milliseconds.
///
/// Which codec a connection uses is agreed during the hello exchange: the
/// client advertises the codecs it speaks, the server picks the first of its
/// own codecs the client also listed, and JSON is the mandatory fallback both
/// sides always accept.  See the module docs of [`crate::transport`] for the
/// negotiation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// UTF-8 JSON payloads (protocol 1.0+; mandatory fallback).
    Json,
    /// Compact binary payloads (protocol 1.2+; preferred when both sides
    /// support it).
    #[default]
    Binary,
}

impl WireCodec {
    /// The name used to advertise this codec in `Hello`/`HelloReply` frames.
    pub const fn name(self) -> &'static str {
        match self {
            WireCodec::Json => "json",
            WireCodec::Binary => "binary",
        }
    }

    /// Parse an advertised codec name (unknown names are simply not ours —
    /// the negotiation skips them, it does not fail).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "json" => Some(WireCodec::Json),
            "binary" => Some(WireCodec::Binary),
            _ => None,
        }
    }

    /// The codec list this process advertises (and accepts), honouring the
    /// `CORGI_WIRE_CODEC` environment variable: unset (or any other value)
    /// advertises `[binary, json]` in preference order, `json` forces
    /// JSON-only (useful in CI to keep the JSON interop path exercised and
    /// when debugging with a packet capture), `binary` advertises binary
    /// first but — like every peer — still accepts the JSON fallback.
    pub fn advertisement_from_env() -> Vec<WireCodec> {
        match std::env::var("CORGI_WIRE_CODEC").as_deref() {
            Ok("json") => vec![WireCodec::Json],
            _ => vec![WireCodec::Binary, WireCodec::Json],
        }
    }

    /// Server-side codec choice: the first of `ours` (in preference order)
    /// that the peer advertised.  A peer that advertised nothing is a
    /// pre-1.2 peer and speaks JSON; JSON is also the fallback when the
    /// advertised sets do not intersect, since every protocol version
    /// accepts it.
    pub fn negotiate(ours: &[WireCodec], advertised: Option<&[String]>) -> WireCodec {
        let theirs: Vec<WireCodec> = match advertised {
            None => vec![WireCodec::Json],
            Some(names) => names.iter().filter_map(|n| Self::from_name(n)).collect(),
        };
        ours.iter()
            .copied()
            .find(|codec| theirs.contains(codec))
            .unwrap_or(WireCodec::Json)
    }
}

impl fmt::Display for WireCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Versioned wrapper around a [`MatrixRequest`] (the unit actually sent on the
/// wire).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version the client speaks.
    pub version: ProtocolVersion,
    /// Caller-chosen id echoed back in the response envelope.
    pub request_id: u64,
    /// The privacy-forest request itself.
    pub request: MatrixRequest,
}

impl RequestEnvelope {
    /// Wrap a request at the current [`PROTOCOL_VERSION`].
    pub fn new(request_id: u64, request: MatrixRequest) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            request_id,
            request,
        }
    }
}

/// Broad classification of a [`ServiceError`], stable across protocol minors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceErrorKind {
    /// The envelope's major protocol version is not supported by the server.
    UnsupportedVersion,
    /// The request itself is malformed (e.g. a privacy level outside the tree).
    InvalidRequest,
    /// Matrix generation failed (LP solver or numeric failure).
    Generation,
    /// The wire transport failed: malformed or oversized frame, unexpected
    /// frame kind, connection loss, or an I/O timeout (added in 1.1).
    Transport,
    /// The server shed this request under load instead of queueing it
    /// (added in 1.3).  Unlike every other kind this one is *retryable*: the
    /// request was well-formed and the connection remains synchronized — the
    /// server simply refused to take on more work right now.  Clients should
    /// back off and retry on the same connection.
    Overloaded,
    /// Any other server-side failure.
    Internal,
    /// Frame authentication failed (added in 1.4): the peer did not
    /// authenticate against a keyed endpoint, announced authentication the
    /// endpoint cannot verify, or sent a frame whose MAC trailer does not
    /// match its contents.  Not retryable — the connection is being drained
    /// and the client must reconnect with the right cluster key.
    Unauthenticated,
}

/// A structured, serializable error reply — the wire-facing counterpart of
/// [`corgi_core::CorgiError`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceError {
    /// Machine-readable classification.
    pub kind: ServiceErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ServiceError {
    /// Build an error of the given kind.
    pub fn new(kind: ServiceErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }

    /// The error replied to an envelope whose major version is unsupported.
    pub fn unsupported_version(got: ProtocolVersion) -> Self {
        Self::new(
            ServiceErrorKind::UnsupportedVersion,
            format!("protocol version {got} is not compatible with {PROTOCOL_VERSION}"),
        )
    }

    /// A wire-transport failure (framing, connection or timeout).
    pub fn transport(message: impl Into<String>) -> Self {
        Self::new(ServiceErrorKind::Transport, message)
    }

    /// The reply sent when admission control sheds a request under load.
    pub fn overloaded(message: impl Into<String>) -> Self {
        Self::new(ServiceErrorKind::Overloaded, message)
    }

    /// The reply sent when frame authentication fails or is missing.
    pub fn unauthenticated(message: impl Into<String>) -> Self {
        Self::new(ServiceErrorKind::Unauthenticated, message)
    }

    /// Whether the failed request may simply be retried.
    ///
    /// True only for [`ServiceErrorKind::Overloaded`]: the request was
    /// well-formed and the connection is still synchronized, the server just
    /// refused to queue more work.  Every other kind signals a fault that a
    /// blind retry would repeat (or a transport failure that requires a
    /// reconnect first).
    pub fn is_retryable(&self) -> bool {
        self.kind == ServiceErrorKind::Overloaded
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ServiceError {}

impl From<CorgiError> for ServiceError {
    fn from(e: CorgiError) -> Self {
        let kind = match &e {
            CorgiError::InvalidPolicy(_)
            | CorgiError::InvalidEpsilon(_)
            | CorgiError::InvalidPrior(_)
            | CorgiError::OverPruned { .. } => ServiceErrorKind::InvalidRequest,
            CorgiError::Solver(_) => ServiceErrorKind::Generation,
            CorgiError::InvalidMatrix(_) | CorgiError::UnknownCell(_) | CorgiError::Grid(_) => {
                ServiceErrorKind::Internal
            }
        };
        Self::new(kind, e.to_string())
    }
}

impl From<ServiceError> for CorgiError {
    fn from(e: ServiceError) -> Self {
        match e.kind {
            ServiceErrorKind::InvalidRequest => CorgiError::InvalidPolicy(e.message),
            ServiceErrorKind::Generation => CorgiError::Solver(e.message),
            ServiceErrorKind::UnsupportedVersion
            | ServiceErrorKind::Transport
            | ServiceErrorKind::Overloaded
            | ServiceErrorKind::Unauthenticated
            | ServiceErrorKind::Internal => CorgiError::Grid(e.message),
        }
    }
}

/// Payload of a [`ResponseEnvelope`]: the forest, or a structured error.
///
/// The forest is held behind an `Arc` so wrapping a cached response in an
/// envelope shares the matrices instead of deep-copying them; serialization
/// sees through the `Arc` transparently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponsePayload {
    /// Successful reply carrying the privacy forest.
    Forest(std::sync::Arc<PrivacyForestResponse>),
    /// Failure reply carrying a structured error.
    Error(ServiceError),
}

/// Versioned wrapper around the server's reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Protocol version the server speaks.
    pub version: ProtocolVersion,
    /// Echo of the request envelope's id.
    pub request_id: u64,
    /// The reply itself.
    pub payload: ResponsePayload,
}

impl ResponseEnvelope {
    /// A successful reply at the current [`PROTOCOL_VERSION`].
    pub fn forest(request_id: u64, response: std::sync::Arc<PrivacyForestResponse>) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            request_id,
            payload: ResponsePayload::Forest(response),
        }
    }

    /// A failure reply at the current [`PROTOCOL_VERSION`].
    pub fn error(request_id: u64, error: ServiceError) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            request_id,
            payload: ResponsePayload::Error(error),
        }
    }

    /// Unwrap the payload into a `Result`.
    pub fn into_result(self) -> Result<std::sync::Arc<PrivacyForestResponse>, ServiceError> {
        match self.payload {
            ResponsePayload::Forest(forest) => Ok(forest),
            ResponsePayload::Error(error) => Err(error),
        }
    }
}

/// The report sent to a third-party location-based service (step ⑥ of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationReport {
    /// The obfuscated cell at the user's chosen precision level.
    pub reported_cell: CellId,
    /// The precision level of the report (tree level of `reported_cell`).
    pub precision_level: u8,
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    #[test]
    fn messages_roundtrip_through_json() {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let subtree = grid.cells_at_level(1)[0];
        let matrix = ObfuscationMatrix::uniform(subtree.descendant_leaves()).unwrap();
        let response = PrivacyForestResponse {
            request: MatrixRequest {
                privacy_level: 1,
                delta: 2,
            },
            epsilon: 15.0,
            entries: vec![ForestEntry {
                subtree_root: subtree,
                matrix,
            }],
        };
        let json = serde_json::to_string(&response).unwrap();
        let back: PrivacyForestResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, response);

        let report = LocationReport {
            reported_cell: subtree,
            precision_level: 1,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: LocationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn matrix_lookup_by_leaf() {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let entries: Vec<ForestEntry> = grid
            .cells_at_level(1)
            .into_iter()
            .take(3)
            .map(|root| ForestEntry {
                subtree_root: root,
                matrix: ObfuscationMatrix::uniform(root.descendant_leaves()).unwrap(),
            })
            .collect();
        let response = PrivacyForestResponse {
            request: MatrixRequest {
                privacy_level: 1,
                delta: 0,
            },
            epsilon: 10.0,
            entries,
        };
        let leaf_inside = response.entries[1].subtree_root.descendant_leaves()[4];
        let found = response.matrix_for_leaf(&leaf_inside).unwrap();
        assert_eq!(found.subtree_root, response.entries[1].subtree_root);
        // A leaf from a subtree that was not included is not found.
        let other_leaf = grid.cells_at_level(1)[5].descendant_leaves()[0];
        assert!(response.matrix_for_leaf(&other_leaf).is_none());
    }

    #[test]
    fn envelopes_roundtrip_through_json() {
        let envelope = RequestEnvelope::new(
            42,
            MatrixRequest {
                privacy_level: 1,
                delta: 2,
            },
        );
        let json = serde_json::to_string(&envelope).unwrap();
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, envelope);
        assert_eq!(back.version, PROTOCOL_VERSION);

        let reply = ResponseEnvelope::error(
            42,
            ServiceError::new(ServiceErrorKind::InvalidRequest, "privacy level 9"),
        );
        let json = serde_json::to_string(&reply).unwrap();
        let back: ResponseEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reply);
        assert_eq!(back.request_id, 42);
        let err = back.into_result().unwrap_err();
        assert_eq!(err.kind, ServiceErrorKind::InvalidRequest);
    }

    #[test]
    fn version_compatibility_is_major_only() {
        let v1_0 = ProtocolVersion { major: 1, minor: 0 };
        let v1_3 = ProtocolVersion { major: 1, minor: 3 };
        let v2_0 = ProtocolVersion { major: 2, minor: 0 };
        assert!(v1_0.is_compatible_with(&v1_3));
        assert!(v1_3.is_compatible_with(&v1_0));
        assert!(!v1_0.is_compatible_with(&v2_0));
        assert_eq!(v1_3.to_string(), "1.3");
    }

    #[test]
    fn codec_names_round_trip_and_negotiation_prefers_binary() {
        assert_eq!(WireCodec::from_name("binary"), Some(WireCodec::Binary));
        assert_eq!(WireCodec::from_name("json"), Some(WireCodec::Json));
        assert_eq!(WireCodec::from_name("msgpack"), None);
        assert_eq!(WireCodec::Binary.to_string(), "binary");

        let ours = [WireCodec::Binary, WireCodec::Json];
        // A 1.2 peer advertising both gets binary.
        let both = ["binary".to_string(), "json".to_string()];
        assert_eq!(WireCodec::negotiate(&ours, Some(&both)), WireCodec::Binary);
        // A pre-1.2 peer advertises nothing and speaks JSON.
        assert_eq!(WireCodec::negotiate(&ours, None), WireCodec::Json);
        // Unknown codec names are skipped, JSON is the universal fallback.
        let exotic = ["msgpack".to_string()];
        assert_eq!(WireCodec::negotiate(&ours, Some(&exotic)), WireCodec::Json);
        // A JSON-only server never picks binary, whatever the client says.
        let json_only = [WireCodec::Json];
        assert_eq!(
            WireCodec::negotiate(&json_only, Some(&both)),
            WireCodec::Json
        );
    }

    #[test]
    fn service_errors_map_to_and_from_core_errors() {
        use corgi_core::CorgiError;
        let e: ServiceError = CorgiError::InvalidPolicy("level 9".into()).into();
        assert_eq!(e.kind, ServiceErrorKind::InvalidRequest);
        let back: CorgiError = e.into();
        assert!(matches!(back, CorgiError::InvalidPolicy(_)));

        let e: ServiceError = CorgiError::Solver("infeasible".into()).into();
        assert_eq!(e.kind, ServiceErrorKind::Generation);
        assert!(matches!(CorgiError::from(e), CorgiError::Solver(_)));
    }

    #[test]
    fn overloaded_is_the_only_retryable_kind() {
        let shed = ServiceError::overloaded("dispatch backlog at 64");
        assert_eq!(shed.kind, ServiceErrorKind::Overloaded);
        assert!(shed.is_retryable());
        // Round-trips through JSON like every other kind.
        let json = serde_json::to_string(&shed).unwrap();
        let back: ServiceError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, shed);
        // Every non-overloaded kind is not retryable: a blind retry would
        // repeat the fault (or needs a reconnect first).
        for kind in [
            ServiceErrorKind::UnsupportedVersion,
            ServiceErrorKind::InvalidRequest,
            ServiceErrorKind::Generation,
            ServiceErrorKind::Transport,
            ServiceErrorKind::Internal,
            ServiceErrorKind::Unauthenticated,
        ] {
            assert!(!ServiceError::new(kind, "x").is_retryable());
        }
    }

    #[test]
    fn request_contains_no_location_information() {
        // Compile-time/shape check documented as a test: the request type only
        // carries the privacy level and δ.
        let request = MatrixRequest {
            privacy_level: 2,
            delta: 3,
        };
        let json = serde_json::to_value(request).unwrap();
        let obj = json.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        assert!(obj.contains_key("privacy_level"));
        assert!(obj.contains_key("delta"));
    }
}
