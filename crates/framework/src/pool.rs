//! A fixed-size worker thread pool for the forest-generation compute path.
//!
//! The K subtree problems of Algorithm 3 are embarrassingly parallel (each LP
//! instance is independent), so [`super::ForestGenerator`] fans them out over
//! this pool.  The implementation is deliberately plain `std::thread` +
//! `std::sync::mpsc` — the offline build environment has no async runtime, and
//! the workload is CPU-bound batch compute where an executor would add nothing.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads executing boxed jobs from a shared queue.
///
/// Workers survive panicking jobs (the unwind is caught at the job boundary),
/// so one bad request can never shrink the pool of a long-lived server.
/// [`ThreadPool::run_ordered`] re-raises a task's panic on the calling thread.
///
/// Dropping the pool closes the queue and joins every worker, so pending jobs
/// finish before the drop returns.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    ///
    /// Pass 0 to size the pool to [`std::thread::available_parallelism`].
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("corgi-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a job for execution on some worker.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Run a batch of tasks across the pool and return their results in task
    /// order.  Blocks the calling thread until every task has finished; if a
    /// task panics, the panic is re-raised here (remaining tasks still drain
    /// on the workers, their results are discarded).
    pub fn run_ordered<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        let (result_tx, result_rx) = channel::<(usize, std::thread::Result<T>)>();
        for (index, task) in tasks.into_iter().enumerate() {
            let tx = result_tx.clone();
            self.execute(move || {
                // A send failure means the caller stopped listening (it bailed
                // on an earlier task's panic); discarding the result is fine.
                let _ = tx.send((index, catch_unwind(AssertUnwindSafe(task))));
            });
        }
        drop(result_tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (index, value) = result_rx
                .recv()
                .expect("every submitted task sends exactly one result");
            match value {
                Ok(value) => slots[index] = Some(value),
                Err(payload) => resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("all indices filled"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv() fail and exit.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the queue lock only while popping, never while running a job.
        let job = {
            let guard = receiver.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match job {
            // Contain a panicking job so the worker survives for the next one;
            // run_ordered re-raises task panics on the submitting thread.
            Ok(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers, so every job has run
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn run_ordered_preserves_task_order() {
        let pool = ThreadPool::new(3);
        let tasks: Vec<_> = (0..50).map(|i| move || i * i).collect();
        assert_eq!(
            pool.run_ordered(tasks),
            (0..50).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_threads_falls_back_to_available_parallelism() {
        let pool = ThreadPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(pool.run_ordered(vec![|| 7]), vec![7]);
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        let pool = ThreadPool::new(1);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_ordered(vec![|| panic!("bad subtree")])
        }));
        assert!(caught.is_err(), "task panic must reach the caller");
        // The single worker survived the panic: the pool still runs batches.
        assert_eq!(pool.run_ordered(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ThreadPool::new(2);
        for round in 0..5u64 {
            let tasks: Vec<_> = (0..8u64).map(|i| move || round + i).collect();
            let out = pool.run_ordered(tasks);
            assert_eq!(out, (0..8).map(|i| round + i).collect::<Vec<_>>());
        }
    }
}
