//! A fixed-size worker thread pool for the forest-generation compute path and
//! the serving reactor's dispatch stage.
//!
//! The K subtree problems of Algorithm 3 are embarrassingly parallel (each LP
//! instance is independent), so [`super::ForestGenerator`] fans them out over
//! this pool; [`crate::TcpServer`] uses a second instance to keep blocking
//! service calls off the reactor thread.  The implementation is deliberately
//! plain `std::thread` + `std::sync::mpsc` — the offline build environment has
//! no async runtime, and the workload is CPU-bound batch compute.
//!
//! # Panic safety
//!
//! A panicking job can never shrink the pool of a long-lived server:
//!
//! * jobs submitted through [`ThreadPool::run_ordered`] /
//!   [`ThreadPool::try_run_ordered`] are unwound at the job boundary and the
//!   panic is surfaced to the submitter — re-raised by the former, returned as
//!   a structured [`JobPanic`] by the latter;
//! * a raw [`ThreadPool::execute`] job that panics unwinds its worker thread,
//!   and a drop guard immediately spawns a replacement
//!   ([`ThreadPool::respawned_workers`] counts these), so capacity recovers
//!   without any silent swallowing of the panic.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A task submitted to the pool panicked; carries the stringified payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic message (or a placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Best-effort stringification of a panic payload (shared with the caching
/// layer's leader-panic containment).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// State shared by the pool handle and its workers; workers respawning
/// replacements need it independently of the `ThreadPool` value.
struct PoolShared {
    receiver: Mutex<Receiver<Job>>,
    /// Handles of live workers, including respawned replacements; drained and
    /// joined on drop.
    handles: Mutex<Vec<JoinHandle<()>>>,
    respawned: AtomicUsize,
    shutting_down: AtomicBool,
    worker_counter: AtomicUsize,
    /// Jobs submitted but not yet finished (queued + running); the signal
    /// admission control reads to decide whether the pool is saturated.
    outstanding: AtomicUsize,
}

impl PoolShared {
    fn try_spawn_worker(self: &Arc<Self>) -> std::io::Result<()> {
        let index = self.worker_counter.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("corgi-worker-{index}"))
            .spawn(move || worker_loop(&shared))?;
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle);
        Ok(())
    }
}

/// A fixed-size pool of worker threads executing boxed jobs from a shared queue.
///
/// Dropping the pool closes the queue and joins every worker (including any
/// respawned replacements), so pending jobs finish before the drop returns.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    shared: Arc<PoolShared>,
    threads: usize,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    ///
    /// Pass 0 to size the pool to [`std::thread::available_parallelism`].
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let (sender, receiver) = channel::<Job>();
        let shared = Arc::new(PoolShared {
            receiver: Mutex::new(receiver),
            handles: Mutex::new(Vec::with_capacity(threads)),
            respawned: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            worker_counter: AtomicUsize::new(0),
            outstanding: AtomicUsize::new(0),
        });
        for _ in 0..threads {
            shared
                .try_spawn_worker()
                .expect("spawning a pool worker thread");
        }
        Self {
            sender: Some(sender),
            shared,
            threads,
        }
    }

    /// Number of worker threads the pool maintains.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers respawned after a raw [`ThreadPool::execute`] job panicked.
    pub fn respawned_workers(&self) -> usize {
        self.shared.respawned.load(Ordering::Acquire)
    }

    /// Jobs submitted but not yet finished: queued plus currently running.
    ///
    /// A backlog persistently above [`ThreadPool::threads`] means submitters
    /// are producing work faster than the workers retire it; the serving
    /// reactor's admission control sheds requests once this crosses its
    /// configured bound instead of letting the queue (and every queued
    /// request's latency) grow without limit.
    pub fn backlog(&self) -> usize {
        self.shared.outstanding.load(Ordering::Acquire)
    }

    /// Enqueue a job for execution on some worker.
    ///
    /// If the job panics, the panic unwinds its worker (the panic message goes
    /// to the panic hook as usual) and a replacement worker is spawned; use
    /// [`ThreadPool::try_run_ordered`] when the submitter needs the outcome.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Run a batch of tasks across the pool and return their results in task
    /// order.  Blocks the calling thread until every task has finished; if a
    /// task panics, the panic is re-raised here (remaining tasks still drain
    /// on the workers, their results are discarded).
    pub fn run_ordered<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.try_run_ordered(tasks)
            .into_iter()
            .map(|slot| match slot {
                Ok(value) => value,
                Err(panic) => resume_unwind(Box::new(panic.message)),
            })
            .collect()
    }

    /// Run a batch of tasks across the pool, returning each task's outcome in
    /// task order with panics captured as [`JobPanic`] errors instead of
    /// unwinding — the panic-safe entry point for long-lived servers.
    pub fn try_run_ordered<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, JobPanic>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        let (result_tx, result_rx) = channel::<(usize, Result<T, JobPanic>)>();
        for (index, task) in tasks.into_iter().enumerate() {
            let tx = result_tx.clone();
            self.execute(move || {
                // Contain the unwind at the job boundary: the submitter gets
                // the outcome and the worker survives for the next job.
                let outcome = catch_unwind(AssertUnwindSafe(task)).map_err(|payload| JobPanic {
                    message: panic_message(payload.as_ref()),
                });
                // A send failure means the caller stopped listening; fine.
                let _ = tx.send((index, outcome));
            });
        }
        drop(result_tx);
        let mut slots: Vec<Option<Result<T, JobPanic>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (index, outcome) = result_rx
                .recv()
                .expect("every submitted task sends exactly one result");
            slots[index] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("all indices filled"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Stop replacements first so a panic racing the drop cannot spawn a
        // worker we would miss, then close the queue so workers drain and exit.
        self.shared.shutting_down.store(true, Ordering::Release);
        drop(self.sender.take());
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut handles = self
                    .shared
                    .handles
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                handles.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }
    }
}

/// Decrements the outstanding-job count when a job finishes, whether it
/// returned or unwound.
struct BacklogGuard {
    shared: Arc<PoolShared>,
}

impl Drop for BacklogGuard {
    fn drop(&mut self) {
        self.shared.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Spawns a replacement worker if the thread unwinds while holding it (i.e. a
/// raw `execute` job panicked); does nothing on orderly exit or shutdown.
struct RespawnGuard {
    shared: Arc<PoolShared>,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.shared.shutting_down.load(Ordering::Acquire) {
            // This Drop runs during an unwind: a panicking `.expect()` here
            // would be a double panic and abort the process.  If the OS
            // refuses a thread right now, accept the shrunken pool instead.
            if self.shared.try_spawn_worker().is_ok() {
                self.shared.respawned.fetch_add(1, Ordering::AcqRel);
            }
        }
    }
}

fn worker_loop(shared: &Arc<PoolShared>) {
    let _guard = RespawnGuard {
        shared: Arc::clone(shared),
    };
    loop {
        // Hold the queue lock only while popping, never while running a job.
        let job = {
            let guard = shared.receiver.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match job {
            // A panicking job unwinds through here; the guard respawns us.
            // The backlog decrement rides a drop guard so a panicking job
            // cannot leak a phantom backlog entry (which would eventually
            // wedge admission control into shedding everything).
            Ok(job) => {
                let _backlog = BacklogGuard {
                    shared: Arc::clone(shared),
                };
                job();
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers, so every job has run
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn run_ordered_preserves_task_order() {
        let pool = ThreadPool::new(3);
        let tasks: Vec<_> = (0..50).map(|i| move || i * i).collect();
        assert_eq!(
            pool.run_ordered(tasks),
            (0..50).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_threads_falls_back_to_available_parallelism() {
        let pool = ThreadPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(pool.run_ordered(vec![|| 7]), vec![7]);
    }

    #[test]
    fn run_ordered_reraises_task_panics() {
        let pool = ThreadPool::new(1);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_ordered(vec![|| panic!("bad subtree")])
        }));
        assert!(caught.is_err(), "task panic must reach the caller");
        // The worker survived (no respawn needed: the unwind was contained at
        // the job boundary) and the pool still runs batches.
        assert_eq!(pool.run_ordered(vec![|| 1, || 2]), vec![1, 2]);
        assert_eq!(pool.respawned_workers(), 0);
    }

    #[test]
    fn try_run_ordered_surfaces_panics_as_job_errors() {
        let pool = ThreadPool::new(2);
        let outcomes = pool.try_run_ordered(vec![
            Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
            Box::new(|| panic!("LP solver exploded")),
            Box::new(|| 3u32),
        ]);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0], Ok(1));
        let err = outcomes[1].as_ref().unwrap_err();
        assert!(err.message.contains("LP solver exploded"), "{err}");
        assert!(err.to_string().contains("pool job panicked"));
        assert_eq!(outcomes[2], Ok(3));
    }

    #[test]
    fn panicking_execute_job_respawns_the_worker() {
        // Regression: a raw `execute` job that panicked used to be swallowed
        // silently; now the worker dies loudly and is replaced.
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("poison attempt"));
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.respawned_workers() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.respawned_workers(), 1, "replacement worker spawned");
        // The replacement processes subsequent work: the pool self-healed.
        assert_eq!(pool.run_ordered(vec![|| 40, || 2]), vec![40, 2]);
    }

    #[test]
    fn backlog_tracks_outstanding_jobs_and_drains_to_zero() {
        let pool = ThreadPool::new(1);
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        // One job occupies the single worker until released; more queue up.
        for _ in 0..4 {
            let gate_rx = Arc::clone(&gate_rx);
            pool.execute(move || {
                let _ = gate_rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
            });
        }
        assert_eq!(pool.backlog(), 4, "queued + running jobs all count");
        for _ in 0..4 {
            gate_tx.send(()).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.backlog() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.backlog(), 0, "finished jobs leave no phantom backlog");
    }

    #[test]
    fn backlog_decrements_when_a_job_panics() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("sheds must not wedge"));
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.backlog() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(pool.backlog(), 0, "panicked job still decrements");
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ThreadPool::new(2);
        for round in 0..5u64 {
            let tasks: Vec<_> = (0..8u64).map(|i| move || round + i).collect();
            let out = pool.run_ordered(tasks);
            assert_eq!(out, (0..8).map(|i| round + i).collect::<Vec<_>>());
        }
    }
}
