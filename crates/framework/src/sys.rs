//! Raw Linux readiness-notification syscalls for the reactor's epoll backend.
//!
//! The offline build environment has no `libc`, `mio` or `nix` crate, so the
//! epoll backend of [`crate::executor`] is built on hand-rolled syscall
//! bindings: a `syscall` instruction on x86-64 (`svc 0` on aarch64) issued
//! through `core::arch::asm!`, plus `std::os::fd` owned-descriptor types for
//! lifecycle (std itself closes an [`OwnedFd`](std::os::fd::OwnedFd) on
//! drop, which is allowed —
//! the constraint is on *crates*, not on std's own libc linkage).
//!
//! # Exact syscall surface
//!
//! | syscall | x86-64 nr | aarch64 nr | use |
//! |---|---|---|---|
//! | `epoll_create1(EPOLL_CLOEXEC)` | 291 | 20 | one poll set per reactor shard |
//! | `epoll_ctl(epfd, ADD/MOD/DEL, fd, event)` | 233 | 21 | (re-)arm per-fd read/write interest |
//! | `epoll_pwait(epfd, events, max, timeout_ms, NULL, 8)` | 281 | 22 | the blocking readiness wait (`epoll_wait` does not exist on aarch64, so the `pwait` form with a null sigmask is used everywhere) |
//! | `eventfd2(0, EFD_CLOEXEC \| EFD_NONBLOCK)` | 290 | 19 | cross-thread reactor wakeups (task spawns, oneshot completions, shutdown) |
//!
//! The eventfd is read and written through `std::fs::File` (plain `read`/
//! `write` on the descriptor), not through extra raw syscalls.
//!
//! Everything here is `#[cfg(target_os = "linux")]` on a supported
//! architecture; other targets get stub types whose constructors return
//! [`io::ErrorKind::Unsupported`], which is what makes
//! [`ReactorBackend::resolve`](crate::executor::ReactorBackend::resolve)
//! fall back to the portable timed-tick backend.
//!
//! Events are registered **level-triggered** (no `EPOLLET`): the executor
//! disarms an fd when it delivers its event and the owning future re-arms
//! with its current interest on the next poll, so a future that stops
//! reading under backpressure can never be stuck waiting for an edge it
//! already consumed.

use std::io;

/// Readable-interest bit (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable-interest bit (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always delivered, never needs arming).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always delivered, never needs arming).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing end; armed together with [`EPOLLIN`] so a
/// half-closed socket wakes its future for the EOF read.
pub const EPOLLRDHUP: u32 = 0x2000;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod linux {
    use super::*;
    use std::fs::File;
    use std::io::{Read, Write};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EVENTFD2: usize = 290;
        pub const EPOLL_CREATE1: usize = 291;
    }

    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EVENTFD2: usize = 19;
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
    }

    const EPOLL_CLOEXEC: usize = 0x80000;
    const EFD_CLOEXEC: usize = 0x80000;
    const EFD_NONBLOCK: usize = 0x800;

    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;

    /// One readiness record, in the kernel's ABI layout.  On x86-64 the
    /// kernel packs this struct to 12 bytes; everywhere else it is naturally
    /// aligned.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        /// Bitmask of `EPOLL*` readiness bits.
        pub events: u32,
        /// Caller-chosen tag, returned verbatim; the executor stores the fd.
        pub data: u64,
    }

    impl EpollEvent {
        /// The readiness bitmask, copied out of the (packed) record.
        pub fn bits(&self) -> u32 {
            self.events
        }

        /// The registration tag, copied out of the (packed) record.
        pub fn tag(&self) -> u64 {
            self.data
        }
    }

    /// Issue a raw 6-argument syscall.  Unused trailing arguments are 0.
    ///
    /// # Safety
    /// The caller must pass a valid syscall number and arguments that the
    /// kernel may dereference (pointers must be live for the duration).
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    /// See the x86-64 variant; aarch64 passes the number in `x8` and traps
    /// with `svc 0`.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack)
        );
        ret
    }

    /// Map a raw syscall return to `io::Result`: negative values are
    /// `-errno`.
    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// An owned epoll instance: one kernel poll set.
    pub struct Epoll {
        fd: OwnedFd,
    }

    impl Epoll {
        /// `epoll_create1(EPOLL_CLOEXEC)`.
        pub fn new() -> io::Result<Self> {
            let raw = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
            // SAFETY: the kernel just returned this descriptor to us; nothing
            // else owns it.
            Ok(Self {
                fd: unsafe { OwnedFd::from_raw_fd(raw as RawFd) },
            })
        }

        fn ctl(&self, op: usize, fd: RawFd, events: u32) -> io::Result<()> {
            let event = EpollEvent {
                events,
                data: fd as u32 as u64,
            };
            // SAFETY: `event` is live across the call; DEL ignores the
            // pointer but passing it is always valid.
            check(unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    self.fd.as_raw_fd() as usize,
                    op,
                    fd as usize,
                    &event as *const EpollEvent as usize,
                    0,
                    0,
                )
            })
            .map(|_| ())
        }

        /// Register `fd` with the given interest bits.
        pub fn add(&self, fd: RawFd, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events)
        }

        /// Change a registered fd's interest bits (0 disarms it while keeping
        /// the registration).
        pub fn modify(&self, fd: RawFd, events: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events)
        }

        /// Remove a registration.  Harmless if the fd was already closed (the
        /// kernel auto-removes closed descriptors).
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0)
        }

        /// Block until readiness or `timeout_ms` (−1 waits forever), filling
        /// `events`; returns how many records are valid.  An `EINTR` wait
        /// reports zero events rather than an error.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            // SAFETY: `events` is a live, writable, correctly-laid-out
            // buffer; the null sigmask (arg 5) makes pwait behave as plain
            // epoll_wait, with sigsetsize 8 for the kernel's validation.
            let ret = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    self.fd.as_raw_fd() as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                    0,
                    8,
                )
            };
            match check(ret) {
                Ok(n) => Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
                Err(e) => Err(e),
            }
        }
    }

    /// An owned eventfd used as the reactor's cross-thread wakeup signal:
    /// any thread [`notify`](EventFd::notify)s it, the reactor's epoll set
    /// reports it readable, and the reactor [`drain`](EventFd::drain)s it
    /// back to zero.  Nonblocking in both directions.
    pub struct EventFd {
        file: File,
    }

    impl EventFd {
        /// `eventfd2(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
        pub fn new() -> io::Result<Self> {
            let raw = check(unsafe {
                syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0)
            })?;
            // SAFETY: fresh descriptor, exclusively ours; File close-on-drop
            // is the desired lifecycle.
            Ok(Self {
                file: unsafe { File::from_raw_fd(raw as RawFd) },
            })
        }

        /// The raw descriptor, for registering with an [`Epoll`].
        pub fn as_raw_fd(&self) -> RawFd {
            self.file.as_raw_fd()
        }

        /// Add 1 to the counter, waking any epoll set watching it.  A full
        /// counter (`EAGAIN`) already guarantees a pending wakeup, so every
        /// failure mode is ignorable.
        pub fn notify(&self) {
            let one = 1u64.to_ne_bytes();
            let _ = (&self.file).write(&one);
        }

        /// Reset the counter to zero (nonblocking; an empty counter is fine).
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            let _ = (&self.file).read(&mut buf);
        }
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub use linux::{Epoll, EpollEvent, EventFd};

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod stub {
    use super::*;

    /// Stub poll set on targets without the Linux epoll bindings; its
    /// constructor always fails, steering the executor to the tick backend.
    pub struct Epoll {}

    /// Stub readiness record (never produced).
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        /// Readiness bits (never set).
        pub events: u32,
        /// Registration tag (never set).
        pub data: u64,
    }

    impl EpollEvent {
        /// The readiness bitmask (never set on this target).
        pub fn bits(&self) -> u32 {
            self.events
        }

        /// The registration tag (never set on this target).
        pub fn tag(&self) -> u64 {
            self.data
        }
    }

    /// Stub wakeup fd (never constructed).
    pub struct EventFd {}

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll readiness notification is only available on Linux (x86-64/aarch64)",
        )
    }

    impl Epoll {
        /// Always fails on this target.
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: i32, _events: u32) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: i32, _events: u32) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _events: &mut [EpollEvent], _timeout_ms: i32) -> io::Result<usize> {
            Err(unsupported())
        }
    }

    impl EventFd {
        /// Always fails on this target.
        pub fn new() -> io::Result<Self> {
            Err(unsupported())
        }

        /// Unreachable (no instance can exist).
        pub fn as_raw_fd(&self) -> i32 {
            -1
        }

        /// Unreachable (no instance can exist).
        pub fn notify(&self) {}

        /// Unreachable (no instance can exist).
        pub fn drain(&self) {}
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub use stub::{Epoll, EpollEvent, EventFd};

/// Whether this build has working readiness-notification bindings: probes an
/// actual `epoll_create1` + `eventfd2` once (both descriptors are dropped
/// immediately), so a kernel or seccomp profile that refuses either syscall
/// also steers the executor to the tick backend instead of failing at bind.
pub fn readiness_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| Epoll::new().is_ok() && EventFd::new().is_ok())
}

#[cfg(test)]
mod tests {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    mod linux {
        use super::super::*;
        use std::time::Instant;

        #[test]
        fn readiness_probe_succeeds_on_linux() {
            assert!(readiness_available());
        }

        #[test]
        fn eventfd_notify_is_visible_to_epoll_and_drains() {
            let epoll = Epoll::new().unwrap();
            let eventfd = EventFd::new().unwrap();
            epoll.add(eventfd.as_raw_fd(), EPOLLIN).unwrap();

            // Unsignaled: a short wait times out with zero events.
            let mut events = [EpollEvent::default(); 4];
            assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

            // Signaled: the wait reports the eventfd readable, tagged with
            // its own fd, without blocking for the full timeout.
            eventfd.notify();
            eventfd.notify();
            let start = Instant::now();
            let n = epoll.wait(&mut events, 1000).unwrap();
            assert_eq!(n, 1);
            assert_eq!(events[0].tag(), eventfd.as_raw_fd() as u64);
            assert!(events[0].bits() & EPOLLIN != 0);
            assert!(start.elapsed().as_millis() < 500, "wait did not block");

            // Drained: level-triggered readability goes away.
            eventfd.drain();
            assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        }

        #[test]
        fn interest_can_be_rearmed_and_deleted() {
            let epoll = Epoll::new().unwrap();
            let eventfd = EventFd::new().unwrap();
            epoll.add(eventfd.as_raw_fd(), EPOLLIN).unwrap();
            eventfd.notify();

            // Disarm (interest 0): the pending readability is not reported.
            epoll.modify(eventfd.as_raw_fd(), 0).unwrap();
            let mut events = [EpollEvent::default(); 4];
            assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

            // Re-arm: level-triggered readiness comes right back.
            epoll.modify(eventfd.as_raw_fd(), EPOLLIN).unwrap();
            assert_eq!(epoll.wait(&mut events, 0).unwrap(), 1);

            epoll.delete(eventfd.as_raw_fd()).unwrap();
            assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        }

        #[test]
        fn wait_honours_its_timeout() {
            let epoll = Epoll::new().unwrap();
            let mut events = [EpollEvent::default(); 1];
            let start = Instant::now();
            assert_eq!(epoll.wait(&mut events, 20).unwrap(), 0);
            assert!(start.elapsed().as_millis() >= 20);
        }

        #[test]
        fn tcp_socket_readiness_flows_through_epoll() {
            use std::io::Write;
            use std::net::{TcpListener, TcpStream};
            use std::os::fd::AsRawFd;

            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            let epoll = Epoll::new().unwrap();
            // Writable immediately; not readable until the client sends.
            epoll
                .add(server.as_raw_fd(), EPOLLIN | EPOLLOUT | EPOLLRDHUP)
                .unwrap();
            let mut events = [EpollEvent::default(); 4];
            let n = epoll.wait(&mut events, 1000).unwrap();
            assert!(n >= 1);
            assert!(events[..n].iter().any(|e| e.bits() & EPOLLOUT != 0));
            assert!(events[..n].iter().all(|e| e.bits() & EPOLLIN == 0));

            // After the client writes, read-interest fires.
            epoll
                .modify(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP)
                .unwrap();
            client.write_all(b"ping").unwrap();
            let n = epoll.wait(&mut events, 1000).unwrap();
            assert!(n >= 1);
            assert!(events[..n].iter().any(|e| e.bits() & EPOLLIN != 0));
        }
    }
}
