//! Cache warming: precompute privacy forests so steady-state traffic is
//! cache-hit dominated.
//!
//! The key space of the serving cache is tiny — a [`CachingService`] key is
//! `(privacy_level, δ)`, the tree has a handful of levels and δ is bounded by
//! the subtree size — so the *entire* working set can be precomputed.  A
//! [`WarmRequest`] names the grid of keys to solve; [`warm()`] pushes every key
//! through the service (whose generator fans the per-subtree LP solves out
//! over its worker pool) and the wrapping [`CachingService`] retains the
//! results.  After a full warm, every request in the grid is a cache hit and
//! the steady-state path performs no LP solves at all.
//!
//! Warming runs in two places:
//!
//! * **at startup** — [`TransportConfig::warm_on_start`] hands a plan to
//!   [`TcpServer::bind`], which solves it on the dispatch pool while the
//!   reactor is already accepting connections;
//! * **on demand** — a client sends the plan as a `Warm` frame and receives a
//!   [`WarmReport`] once the grid is solved ([`TcpTransport::warm`]).
//!
//! [`CachingService`]: crate::CachingService
//! [`TransportConfig::warm_on_start`]: crate::TransportConfig::warm_on_start
//! [`TcpServer::bind`]: crate::TcpServer::bind
//! [`TcpTransport::warm`]: crate::TcpTransport::warm

use crate::messages::{MatrixRequest, PrivacyForestResponse, ServiceError};
use crate::service::MatrixService;
use corgi_core::LocationTree;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// A warming plan: the `(privacy_level, δ)` grid to precompute.
///
/// The plan is the cartesian product `privacy_levels × deltas`; every pair
/// becomes one [`MatrixRequest`] pushed through the service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmRequest {
    /// Privacy levels to warm (each selects one privacy forest).
    pub privacy_levels: Vec<u8>,
    /// δ values to warm per level (each is a distinct cache key).
    pub deltas: Vec<usize>,
}

impl WarmRequest {
    /// A plan covering one privacy level for δ ∈ `0..=max_delta`.
    pub fn level(privacy_level: u8, max_delta: usize) -> Self {
        Self {
            privacy_levels: vec![privacy_level],
            deltas: (0..=max_delta).collect(),
        }
    }

    /// The full steady-state grid of a tree: every privacy level the tree
    /// serves (via [`LocationTree::privacy_levels`]) crossed with
    /// δ ∈ `0..=max_delta`.
    ///
    /// Warming the root level solves the single full-tree LP (the K = 1,
    /// 343-leaf regime), which is by far the most expensive key; callers that
    /// only serve lower levels should enumerate those explicitly.
    pub fn full_grid(tree: &LocationTree, max_delta: usize) -> Self {
        Self {
            privacy_levels: tree.privacy_levels(),
            deltas: (0..=max_delta).collect(),
        }
    }

    /// Number of `(privacy_level, δ)` keys in the plan.
    pub fn key_count(&self) -> usize {
        self.privacy_levels.len() * self.deltas.len()
    }

    /// The requests of the plan, cheapest level first so partial warms (or an
    /// early shutdown) still populate the high-traffic low-K keys.  Duplicate
    /// levels and deltas collapse, so repeated entries cannot inflate work.
    ///
    /// Within one level the δ values are swept in ascending order, which is
    /// what makes whole-grid warming one-cold-plus-refinements: the
    /// generator's warm-seed store hands every `(level, δ)` subtree solve the
    /// converged iterate of its nearest already-solved δ neighbour (δ−1 under
    /// this ordering), so only the first δ of each level pays a cold
    /// interior-point solve.
    pub fn requests(&self) -> Vec<MatrixRequest> {
        let mut levels = self.privacy_levels.clone();
        levels.sort_unstable();
        levels.dedup();
        let mut deltas = self.deltas.clone();
        deltas.sort_unstable();
        deltas.dedup();
        let mut requests = Vec::with_capacity(levels.len() * deltas.len());
        for &privacy_level in &levels {
            for &delta in &deltas {
                requests.push(MatrixRequest {
                    privacy_level,
                    delta,
                });
            }
        }
        requests
    }
}

/// Asynchronous peer-to-peer cache replication (protocol 1.4): after a cold
/// miss completes on one shard, the shard pushes the key — and usually the
/// solved forest itself — to its peers so the *same* key is a warm hit
/// cluster-wide without a second LP solve.
///
/// A push is advisory and fire-and-forget: there is no reply frame, a peer
/// that already holds the key counts a dedup and drops it, and a peer without
/// a caching layer ignores it.  When `forest` is `None` the receiving peer
/// solves the key itself on its dispatch pool (trading one duplicate solve for
/// not shipping the ~70 KB payload); see
/// [`ReplicationConfig::push_payloads`](crate::cluster::ReplicationConfig).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmPush {
    /// Privacy level of the replicated cache key.
    pub privacy_level: u8,
    /// δ of the replicated cache key.
    pub delta: usize,
    /// The solved forest, shared (not deep-copied) with the pushing shard's
    /// cache; `None` replicates the key only.
    pub forest: Option<Arc<PrivacyForestResponse>>,
}

impl WarmPush {
    /// The cache key this push replicates.
    pub fn request(&self) -> MatrixRequest {
        MatrixRequest {
            privacy_level: self.privacy_level,
            delta: self.delta,
        }
    }
}

/// Anti-entropy digest exchange (protocol 1.5): ask a peer what its cache
/// holds, or pull one resident key from it.
///
/// A restarted shard rejoins warm by sending an empty request (`pull: None`)
/// to each healthy peer, diffing the returned key summary against its own
/// cache, and pulling each missing key with `pull: Some(key)` — the reply
/// then carries the peer's resident forest, inserted locally via
/// [`MatrixService::warm_insert`].  The whole flow is cache-only on both
/// sides: re-joining costs network transfer, never an LP solve.  See
/// [`TcpServer::rewarm_from_peers`](crate::TcpServer::rewarm_from_peers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigestRequest {
    /// `None` asks for the summary of resident keys; `Some(key)` pulls that
    /// key's forest (cache-only — a key the peer does not hold comes back
    /// with an absent forest, never a solve).
    pub pull: Option<MatrixRequest>,
}

/// Reply to a [`DigestRequest`]: a summary of resident cache keys, or one
/// pulled forest.
///
/// Bounded like `Warm` frames: a server truncates `keys` to its
/// `max_warm_keys` (a digest is advisory — a truncated one just re-warms
/// less, it never breaks correctness).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DigestReply {
    /// The replying cache's generation counter: it advances on every insert,
    /// so a puller can cheaply detect that a digest went stale mid-pull and
    /// re-fetch the summary.
    pub generation: u64,
    /// Resident `(privacy_level, δ)` keys (empty in a pull reply).
    pub keys: Vec<MatrixRequest>,
    /// The pulled forest (`None` in a summary reply, or when the pulled key
    /// was evicted between the digest and the pull).
    pub forest: Option<Arc<PrivacyForestResponse>>,
}

/// Outcome of an anti-entropy re-warm
/// ([`TcpServer::rewarm_from_peers`](crate::TcpServer::rewarm_from_peers)).
#[derive(Debug, Clone, PartialEq)]
pub struct RewarmReport {
    /// Peers whose digest was fetched successfully.
    pub peers_reached: usize,
    /// Distinct keys the digests named that were missing locally.
    pub missing: usize,
    /// Keys pulled and inserted into the local cache.
    pub pulled: usize,
    /// Keys named by a digest but already resident locally (including keys
    /// pulled from an earlier peer in the same run).
    pub already_resident: usize,
    /// Keys that could not be pulled (peer evicted the key mid-run, pull
    /// failed, or the local insert was rejected), with their errors.
    pub failures: Vec<WarmFailure>,
    /// Wall-clock duration of the run in milliseconds.
    pub elapsed_ms: u64,
}

impl RewarmReport {
    /// Whether every missing key named by a reachable peer was pulled.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.pulled == self.missing
    }
}

/// One key of a [`WarmRequest`] that failed to generate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmFailure {
    /// The privacy level of the failed key.
    pub privacy_level: u8,
    /// The δ of the failed key.
    pub delta: usize,
    /// Why generation failed.
    pub error: ServiceError,
}

/// Outcome of a warming run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmReport {
    /// Keys named by the plan.
    pub requested: usize,
    /// Keys whose forest was generated (or already resident) successfully.
    pub warmed: usize,
    /// Keys that failed, with their errors (e.g. a privacy level above the
    /// tree height).  Failures do not abort the run: the remaining grid is
    /// still warmed.
    pub failures: Vec<WarmFailure>,
    /// Wall-clock duration of the run in milliseconds.
    pub elapsed_ms: u64,
}

impl WarmReport {
    /// Whether every key of the plan was warmed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.warmed == self.requested
    }
}

/// Execute a warming plan against a service, returning per-key outcomes.
///
/// Each key goes through [`MatrixService::privacy_forest`], so a caching layer
/// in the stack retains every generated forest and concurrent live traffic for
/// the same key coalesces onto the warming flight instead of solving twice.
/// The call blocks until the whole grid is processed; run it on a worker
/// thread (the server's dispatch pool does) when that matters.
pub fn warm(service: &dyn MatrixService, plan: &WarmRequest) -> WarmReport {
    let start = Instant::now();
    let requests = plan.requests();
    let requested = requests.len();
    let mut warmed = 0usize;
    let mut failures = Vec::new();
    for request in requests {
        match service.privacy_forest(request) {
            Ok(_) => warmed += 1,
            Err(error) => failures.push(WarmFailure {
                privacy_level: request.privacy_level,
                delta: request.delta,
                error,
            }),
        }
    }
    WarmReport {
        requested,
        warmed,
        failures,
        elapsed_ms: u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CachingService, ForestGenerator, ServerConfig};
    use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator, PriorDistribution};
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    fn caching_service() -> CachingService<ForestGenerator> {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let (dataset, _) =
            GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
        CachingService::with_defaults(ForestGenerator::new(
            corgi_core::LocationTree::new(grid),
            prior,
            ServerConfig::builder()
                .robust_iterations(1)
                .targets_per_subtree(3)
                .worker_threads(2)
                .build(),
        ))
    }

    #[test]
    fn warming_populates_the_cache_and_turns_requests_into_hits() {
        let service = caching_service();
        let plan = WarmRequest {
            privacy_levels: vec![1, 2],
            deltas: vec![0, 1],
        };
        let report = warm(&service, &plan);
        assert!(report.is_complete(), "failures: {:?}", report.failures);
        assert_eq!(report.requested, 4);
        assert_eq!(report.warmed, 4);
        let after_warm = service.cache_stats();
        assert_eq!(after_warm.entries, 4);

        // Steady state: every key of the grid is now a pure cache hit.
        for request in plan.requests() {
            service.privacy_forest(request).unwrap();
        }
        let stats = service.cache_stats();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, after_warm.misses, "no new generations");
    }

    #[test]
    fn warm_failures_are_reported_but_do_not_abort() {
        let service = caching_service();
        let plan = WarmRequest {
            privacy_levels: vec![1, 9], // level 9 exceeds the tree height
            deltas: vec![0],
        };
        let report = warm(&service, &plan);
        assert_eq!(report.requested, 2);
        assert_eq!(report.warmed, 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].privacy_level, 9);
        assert!(!report.is_complete());
        assert_eq!(service.cache_stats().entries, 1);
    }

    #[test]
    fn full_grid_enumerates_every_tree_level() {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let tree = corgi_core::LocationTree::new(grid);
        let plan = WarmRequest::full_grid(&tree, 2);
        assert_eq!(plan.privacy_levels, vec![0, 1, 2, 3]);
        assert_eq!(plan.key_count(), 12);
        // Requests come cheapest-level-first and duplicate levels collapse.
        let dup = WarmRequest {
            privacy_levels: vec![2, 1, 2],
            deltas: vec![0],
        };
        let requests = dup.requests();
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[0].privacy_level, 1);
    }

    #[test]
    fn warm_messages_roundtrip_through_json() {
        let plan = WarmRequest::level(1, 2);
        let json = serde_json::to_string(&plan).unwrap();
        let back: WarmRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);

        let report = WarmReport {
            requested: 3,
            warmed: 2,
            failures: vec![WarmFailure {
                privacy_level: 9,
                delta: 0,
                error: ServiceError::new(
                    crate::messages::ServiceErrorKind::InvalidRequest,
                    "level 9",
                ),
            }],
            elapsed_ms: 1234,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: WarmReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);

        // A key-only push round-trips with its forest absent.
        let push = WarmPush {
            privacy_level: 1,
            delta: 2,
            forest: None,
        };
        let json = serde_json::to_string(&push).unwrap();
        let back: WarmPush = serde_json::from_str(&json).unwrap();
        assert_eq!(back, push);
        assert_eq!(
            back.request(),
            MatrixRequest {
                privacy_level: 1,
                delta: 2
            }
        );
    }
}
