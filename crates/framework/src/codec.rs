//! The binary wire codec of protocol 1.2 (and the [`WireCodec`] dispatch
//! between it and JSON).
//!
//! # Why a second codec
//!
//! The frame payloads of [`crate::transport`] are dominated by `f64` matrices:
//! a warm cache hit returns a ~70 KB privacy forest whose JSON text is almost
//! entirely formatted decimal floats.  Formatting and re-parsing that text
//! costs milliseconds per round trip — three orders of magnitude more than the
//! data movement itself.  The binary codec removes exactly that cost: small
//! metadata fields are written tag-prefixed with fixed-width little-endian
//! scalars, and matrices/forests/priors travel as length-prefixed runs of raw
//! IEEE-754 `f64` bit patterns copied straight from (and into) the in-memory
//! `Vec<f64>` — no per-element formatting, no intermediate `String`, and
//! bit-exact round trips (NaN payloads, ±0 and subnormals survive, which JSON
//! text cannot guarantee).
//!
//! # Encoding rules
//!
//! All scalars are little-endian.  `f64` is the raw IEEE-754 bit pattern.
//! Strings and lists are length-prefixed with a `u32` count; cell ids travel
//! as their packed `u64` form ([`CellId::pack`]).  Every struct field of the
//! small metadata is preceded by a one-byte tag (see the `TAG_*` constants):
//! the decoder verifies tags in order, so a corrupted or desynchronized
//! payload fails fast with a structured error instead of mis-assembling a
//! message.  Enums start with a one-byte discriminant.  A decoder consumes
//! the payload exactly: trailing bytes are an error.
//!
//! Per-message layouts (all multi-byte integers LE):
//!
//! ```text
//! RequestEnvelope   = T₁ version(u16·2) T₂ request_id(u64) T₃ request
//! MatrixRequest     = privacy_level(u8) delta(u64)
//! ResponseEnvelope  = T₁ version T₂ request_id T₄ disc(u8: 0 forest, 1 error) body
//!   forest body     = T₃ request T₅ epsilon(f64) T₆ n(u32) entry×n
//!   entry           = root(u64) k(u32) cell(u64)×k data(f64×k²)
//!   error body      = kind(u8) message(str)
//! WarmRequest       = T₇ n(u32) level(u8)×n T₈ n(u32) delta(u64)×n
//! WarmReport        = T₉ requested(u64) warmed(u64) elapsed_ms(u64)
//!                     T₁₀ n(u32) failure×n      failure = level(u8) delta(u64) error
//! HelloFrame        = T₁ version T₁₁ present(u8) [n(u32) name(str)×n]
//!                     T₁₅ present(u8) [scheme(str)]
//! HelloReply        = disc(u8: 0 accepted, 1 rejected)
//!   accepted        = T₁ version T₁₂ lat(f64) lng(f64) height(u8) spacing(f64)
//!                     T₁₃ n(u32) prob(f64)×n T₁₄ present(u8) [name(str)]
//!                     T₁₅ present(u8) [scheme(str)]
//!   rejected        = error
//! WarmPush          = T₃ request T₁₆ present(u8) [forest body]
//! StatsRequest      = (empty payload)
//! StatsReport       = T₁₇ transport(u64×14) T₁₈ present(u8) [cache(u64×5)]
//!                     T₁₉ present(u8) [cluster]
//!   cluster         = counters(u64×10) n(u32) peer×n
//!   peer            = endpoint(str) counters(u64×6)
//! Ping              = T₂₀ nonce(u64)
//! Pong              = T₂₀ nonce(u64)
//! Digest            = T₂₁ present(u8) [request]
//! DigestReply       = T₂₂ generation(u64) T₂₃ n(u32) request×n
//!                     T₁₆ present(u8) [forest body]
//! ```
//!
//! The four cluster counters appended in protocol 1.5 (probes sent, peers
//! down, re-warm keys pulled, pushes repaired) extend the fixed-width run
//! in place: both ends of a connection run the same build of this module,
//! so the widened run decodes symmetrically in either codec.
//!
//! `Hello`/`HelloReply` have binary encodings for completeness (and so the
//! property tests can cover every payload), but on the wire they always
//! travel as JSON: they bootstrap the codec negotiation, so they must be
//! legible to every protocol version.  See [`crate::transport`].
//!
//! [`CellId::pack`]: corgi_hexgrid::CellId::pack

use crate::cluster::{ClusterStats, PeerStats, Ping, Pong, StatsReport, StatsRequest};
use crate::messages::{
    ForestEntry, MatrixRequest, PrivacyForestResponse, ProtocolVersion, RequestEnvelope,
    ResponseEnvelope, ResponsePayload, ServiceError, ServiceErrorKind, WireCodec,
};
use crate::service::CacheStats;
use crate::transport::{FrameKind, HelloFrame, HelloReply, TransportStats, FRAME_HEADER_LEN};
use crate::warm::{DigestReply, DigestRequest, WarmFailure, WarmPush, WarmReport, WarmRequest};
use corgi_core::ObfuscationMatrix;
use corgi_datagen::PriorDistribution;
use corgi_geo::LatLng;
use corgi_hexgrid::{CellId, HexGridConfig};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

const TAG_VERSION: u8 = 0x01;
const TAG_REQUEST_ID: u8 = 0x02;
const TAG_REQUEST: u8 = 0x03;
const TAG_PAYLOAD: u8 = 0x04;
const TAG_EPSILON: u8 = 0x05;
const TAG_ENTRIES: u8 = 0x06;
const TAG_LEVELS: u8 = 0x07;
const TAG_DELTAS: u8 = 0x08;
const TAG_COUNTS: u8 = 0x09;
const TAG_FAILURES: u8 = 0x0A;
const TAG_CODECS: u8 = 0x0B;
const TAG_GRID: u8 = 0x0C;
const TAG_PRIOR: u8 = 0x0D;
const TAG_CODEC: u8 = 0x0E;
const TAG_AUTH: u8 = 0x0F;
const TAG_FOREST: u8 = 0x10;
const TAG_TRANSPORT: u8 = 0x11;
const TAG_CACHE: u8 = 0x12;
const TAG_CLUSTER: u8 = 0x13;
const TAG_NONCE: u8 = 0x14;
const TAG_PULL: u8 = 0x15;
const TAG_GENERATION: u8 = 0x16;
const TAG_KEYS: u8 = 0x17;

/// Why a binary payload could not be decoded.
///
/// Carries a human-readable description of the first malformed byte range;
/// converts into a [`ServiceErrorKind::Transport`] error at the transport
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(String);

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed binary payload: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::transport(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_count(out: &mut Vec<u8>, n: usize) {
    put_u32(out, u32::try_from(n).expect("wire count exceeds u32::MAX"));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_count(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// A length-prefixed run of raw IEEE-754 `f64` bit patterns — the hot path of
/// the codec.  The loop compiles to a straight memory copy on little-endian
/// targets; there is no per-element formatting.
fn put_f64_run(out: &mut Vec<u8>, values: &[f64]) {
    put_count(out, values.len());
    put_f64_raw(out, values);
}

/// The raw `f64` bytes of `values`, with the count implied by context (matrix
/// data, whose length is fixed by the already-written cell count).
fn put_f64_raw(out: &mut Vec<u8>, values: &[f64]) {
    out.reserve(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

// ---------------------------------------------------------------------------
// Primitive reader
// ---------------------------------------------------------------------------

/// Cursor over a binary payload.  Every read names what it expects, so a
/// truncated or corrupted payload produces an error pinpointing the first
/// malformed field instead of a generic failure.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `payload`.
    pub fn new(payload: &'a [u8]) -> Self {
        Self {
            buf: payload,
            pos: 0,
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "truncated at byte {} reading {what} ({n} bytes needed, {} left)",
                self.pos,
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// A `u32` element count, sanity-bounded by the bytes actually present:
    /// each element needs at least `min_elem_bytes`, so a hostile count can
    /// never trigger an over-allocation beyond the payload size.
    fn count(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(WireError::new(format!(
                "{what} count {n} exceeds the {} bytes left in the payload",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn str(&mut self, what: &str) -> Result<String, WireError> {
        let n = self.count(1, what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::new(format!("{what} is not utf-8: {e}")))
    }

    fn f64_exact(&mut self, n: usize, what: &str) -> Result<Vec<f64>, WireError> {
        let need = n
            .checked_mul(8)
            .ok_or_else(|| WireError::new(format!("{what} count {n} overflows")))?;
        let bytes = self.take(need, what)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    fn f64_run(&mut self, what: &str) -> Result<Vec<f64>, WireError> {
        let n = self.count(8, what)?;
        self.f64_exact(n, what)
    }

    fn tag(&mut self, expected: u8, what: &str) -> Result<(), WireError> {
        let got = self.u8(what)?;
        if got != expected {
            return Err(WireError::new(format!(
                "expected tag {expected:#04x} ({what}) at byte {}, got {got:#04x}",
                self.pos - 1
            )));
        }
        Ok(())
    }

    /// Assert the payload was consumed exactly.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::new(format!(
                "{} trailing bytes after the message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Shared sub-encodings
// ---------------------------------------------------------------------------

fn put_version(out: &mut Vec<u8>, v: &ProtocolVersion) {
    put_u16(out, v.major);
    put_u16(out, v.minor);
}

fn read_version(r: &mut WireReader<'_>) -> Result<ProtocolVersion, WireError> {
    Ok(ProtocolVersion {
        major: r.u16("version.major")?,
        minor: r.u16("version.minor")?,
    })
}

fn put_matrix_request(out: &mut Vec<u8>, m: &MatrixRequest) {
    put_u8(out, m.privacy_level);
    put_u64(out, m.delta as u64);
}

fn read_matrix_request(r: &mut WireReader<'_>) -> Result<MatrixRequest, WireError> {
    Ok(MatrixRequest {
        privacy_level: r.u8("request.privacy_level")?,
        delta: usize::try_from(r.u64("request.delta")?)
            .map_err(|_| WireError::new("request.delta exceeds usize"))?,
    })
}

fn kind_to_byte(kind: ServiceErrorKind) -> u8 {
    match kind {
        ServiceErrorKind::UnsupportedVersion => 0,
        ServiceErrorKind::InvalidRequest => 1,
        ServiceErrorKind::Generation => 2,
        ServiceErrorKind::Transport => 3,
        ServiceErrorKind::Internal => 4,
        // Added in protocol 1.3 (admission-control sheds); bytes are
        // append-only so 1.2 decoders keep reading every pre-1.3 kind.
        ServiceErrorKind::Overloaded => 5,
        // Added in protocol 1.4 (keyed frame authentication).
        ServiceErrorKind::Unauthenticated => 6,
    }
}

fn byte_to_kind(byte: u8) -> Result<ServiceErrorKind, WireError> {
    match byte {
        0 => Ok(ServiceErrorKind::UnsupportedVersion),
        1 => Ok(ServiceErrorKind::InvalidRequest),
        2 => Ok(ServiceErrorKind::Generation),
        3 => Ok(ServiceErrorKind::Transport),
        4 => Ok(ServiceErrorKind::Internal),
        5 => Ok(ServiceErrorKind::Overloaded),
        6 => Ok(ServiceErrorKind::Unauthenticated),
        other => Err(WireError::new(format!("unknown error kind {other}"))),
    }
}

fn put_service_error(out: &mut Vec<u8>, e: &ServiceError) {
    put_u8(out, kind_to_byte(e.kind));
    put_str(out, &e.message);
}

fn read_service_error(r: &mut WireReader<'_>) -> Result<ServiceError, WireError> {
    let kind = byte_to_kind(r.u8("error.kind")?)?;
    let message = r.str("error.message")?;
    Ok(ServiceError { kind, message })
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => put_u8(out, 0),
        Some(s) => {
            put_u8(out, 1);
            put_str(out, s);
        }
    }
}

fn read_opt_str(r: &mut WireReader<'_>, what: &str) -> Result<Option<String>, WireError> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.str(what)?)),
        other => Err(WireError::new(format!(
            "invalid option presence byte {other}"
        ))),
    }
}

fn put_forest(out: &mut Vec<u8>, f: &PrivacyForestResponse) {
    put_u8(out, TAG_REQUEST);
    put_matrix_request(out, &f.request);
    put_u8(out, TAG_EPSILON);
    put_f64(out, f.epsilon);
    put_u8(out, TAG_ENTRIES);
    put_count(out, f.entries.len());
    for entry in &f.entries {
        put_u64(out, entry.subtree_root.pack());
        let cells = entry.matrix.cells();
        put_count(out, cells.len());
        for cell in cells {
            put_u64(out, cell.pack());
        }
        put_f64_raw(out, entry.matrix.data());
    }
}

fn read_forest(r: &mut WireReader<'_>) -> Result<PrivacyForestResponse, WireError> {
    r.tag(TAG_REQUEST, "forest.request")?;
    let request = read_matrix_request(r)?;
    r.tag(TAG_EPSILON, "forest.epsilon")?;
    let epsilon = r.f64("forest.epsilon")?;
    r.tag(TAG_ENTRIES, "forest.entries")?;
    // Each entry carries at least a root id and a cell count.
    let n = r.count(12, "forest.entries")?;
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let subtree_root = CellId::unpack(r.u64("entry.subtree_root")?);
        let k = r.count(8, "entry.cells")?;
        let mut cells = Vec::with_capacity(k);
        for _ in 0..k {
            cells.push(CellId::unpack(r.u64("entry.cell")?));
        }
        let kk = k
            .checked_mul(k)
            .ok_or_else(|| WireError::new("entry cell count overflows"))?;
        let data = r.f64_exact(kk, "entry.matrix data")?;
        let matrix = ObfuscationMatrix::from_wire_parts(cells, data)
            .map_err(|e| WireError::new(format!("entry {i}: {e}")))?;
        entries.push(ForestEntry {
            subtree_root,
            matrix,
        });
    }
    Ok(PrivacyForestResponse {
        request,
        epsilon,
        entries,
    })
}

// ---------------------------------------------------------------------------
// The message trait and its implementations
// ---------------------------------------------------------------------------

/// A frame payload: one of the six message types of the wire protocol, able
/// to encode/decode itself in either codec (JSON via its serde impls, binary
/// via the hand-written encoding of this module).
pub trait WireMessage: Serialize + for<'de> Deserialize<'de> + Sized {
    /// The frame kind this message travels in.
    const KIND: FrameKind;

    /// Append the binary encoding of `self` to `out`.
    fn encode_binary(&self, out: &mut Vec<u8>);

    /// Decode one message from the reader (the caller checks for trailing
    /// bytes via [`WireReader::finish`]).
    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError>;
}

impl WireMessage for RequestEnvelope {
    const KIND: FrameKind = FrameKind::Request;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_VERSION);
        put_version(out, &self.version);
        put_u8(out, TAG_REQUEST_ID);
        put_u64(out, self.request_id);
        put_u8(out, TAG_REQUEST);
        put_matrix_request(out, &self.request);
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_VERSION, "envelope.version")?;
        let version = read_version(r)?;
        r.tag(TAG_REQUEST_ID, "envelope.request_id")?;
        let request_id = r.u64("envelope.request_id")?;
        r.tag(TAG_REQUEST, "envelope.request")?;
        let request = read_matrix_request(r)?;
        Ok(Self {
            version,
            request_id,
            request,
        })
    }
}

impl WireMessage for ResponseEnvelope {
    const KIND: FrameKind = FrameKind::Response;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_VERSION);
        put_version(out, &self.version);
        put_u8(out, TAG_REQUEST_ID);
        put_u64(out, self.request_id);
        put_u8(out, TAG_PAYLOAD);
        match &self.payload {
            ResponsePayload::Forest(forest) => {
                put_u8(out, 0);
                put_forest(out, forest);
            }
            ResponsePayload::Error(error) => {
                put_u8(out, 1);
                put_service_error(out, error);
            }
        }
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_VERSION, "envelope.version")?;
        let version = read_version(r)?;
        r.tag(TAG_REQUEST_ID, "envelope.request_id")?;
        let request_id = r.u64("envelope.request_id")?;
        r.tag(TAG_PAYLOAD, "envelope.payload")?;
        let payload = match r.u8("payload discriminant")? {
            0 => ResponsePayload::Forest(Arc::new(read_forest(r)?)),
            1 => ResponsePayload::Error(read_service_error(r)?),
            other => {
                return Err(WireError::new(format!(
                    "unknown response payload discriminant {other}"
                )))
            }
        };
        Ok(Self {
            version,
            request_id,
            payload,
        })
    }
}

impl WireMessage for WarmRequest {
    const KIND: FrameKind = FrameKind::Warm;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_LEVELS);
        put_count(out, self.privacy_levels.len());
        out.extend_from_slice(&self.privacy_levels);
        put_u8(out, TAG_DELTAS);
        put_count(out, self.deltas.len());
        for &delta in &self.deltas {
            put_u64(out, delta as u64);
        }
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_LEVELS, "warm.privacy_levels")?;
        let n = r.count(1, "warm.privacy_levels")?;
        let privacy_levels = r.take(n, "warm.privacy_levels")?.to_vec();
        r.tag(TAG_DELTAS, "warm.deltas")?;
        let n = r.count(8, "warm.deltas")?;
        let mut deltas = Vec::with_capacity(n);
        for _ in 0..n {
            deltas.push(
                usize::try_from(r.u64("warm.delta")?)
                    .map_err(|_| WireError::new("warm.delta exceeds usize"))?,
            );
        }
        Ok(Self {
            privacy_levels,
            deltas,
        })
    }
}

impl WireMessage for WarmReport {
    const KIND: FrameKind = FrameKind::WarmReply;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_COUNTS);
        put_u64(out, self.requested as u64);
        put_u64(out, self.warmed as u64);
        put_u64(out, self.elapsed_ms);
        put_u8(out, TAG_FAILURES);
        put_count(out, self.failures.len());
        for failure in &self.failures {
            put_u8(out, failure.privacy_level);
            put_u64(out, failure.delta as u64);
            put_service_error(out, &failure.error);
        }
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_COUNTS, "report.counts")?;
        let requested = usize::try_from(r.u64("report.requested")?)
            .map_err(|_| WireError::new("report.requested exceeds usize"))?;
        let warmed = usize::try_from(r.u64("report.warmed")?)
            .map_err(|_| WireError::new("report.warmed exceeds usize"))?;
        let elapsed_ms = r.u64("report.elapsed_ms")?;
        r.tag(TAG_FAILURES, "report.failures")?;
        // Each failure carries at least a level, a delta and an error header.
        let n = r.count(14, "report.failures")?;
        let mut failures = Vec::with_capacity(n);
        for _ in 0..n {
            let privacy_level = r.u8("failure.privacy_level")?;
            let delta = usize::try_from(r.u64("failure.delta")?)
                .map_err(|_| WireError::new("failure.delta exceeds usize"))?;
            let error = read_service_error(r)?;
            failures.push(WarmFailure {
                privacy_level,
                delta,
                error,
            });
        }
        Ok(Self {
            requested,
            warmed,
            failures,
            elapsed_ms,
        })
    }
}

impl WireMessage for HelloFrame {
    const KIND: FrameKind = FrameKind::Hello;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_VERSION);
        put_version(out, &self.version);
        put_u8(out, TAG_CODECS);
        match &self.codecs {
            None => put_u8(out, 0),
            Some(codecs) => {
                put_u8(out, 1);
                put_count(out, codecs.len());
                for name in codecs {
                    put_str(out, name);
                }
            }
        }
        put_u8(out, TAG_AUTH);
        put_opt_str(out, &self.auth);
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_VERSION, "hello.version")?;
        let version = read_version(r)?;
        r.tag(TAG_CODECS, "hello.codecs")?;
        let codecs = match r.u8("hello.codecs presence")? {
            0 => None,
            1 => {
                let n = r.count(4, "hello.codecs")?;
                let mut names = Vec::with_capacity(n);
                for _ in 0..n {
                    names.push(r.str("hello.codec name")?);
                }
                Some(names)
            }
            other => {
                return Err(WireError::new(format!(
                    "invalid option presence byte {other}"
                )))
            }
        };
        r.tag(TAG_AUTH, "hello.auth")?;
        let auth = read_opt_str(r, "hello.auth")?;
        Ok(Self {
            version,
            codecs,
            auth,
        })
    }
}

impl WireMessage for HelloReply {
    const KIND: FrameKind = FrameKind::HelloReply;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        match self {
            HelloReply::Accepted {
                version,
                grid,
                prior,
                codec,
                auth,
            } => {
                put_u8(out, 0);
                put_u8(out, TAG_VERSION);
                put_version(out, version);
                put_u8(out, TAG_GRID);
                put_f64(out, grid.center.lat());
                put_f64(out, grid.center.lng());
                put_u8(out, grid.height);
                put_f64(out, grid.leaf_spacing_km);
                put_u8(out, TAG_PRIOR);
                put_f64_run(out, prior.probs());
                put_u8(out, TAG_CODEC);
                put_opt_str(out, codec);
                put_u8(out, TAG_AUTH);
                put_opt_str(out, auth);
            }
            HelloReply::Rejected(error) => {
                put_u8(out, 1);
                put_service_error(out, error);
            }
        }
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("hello reply discriminant")? {
            0 => {
                r.tag(TAG_VERSION, "reply.version")?;
                let version = read_version(r)?;
                r.tag(TAG_GRID, "reply.grid")?;
                let lat = r.f64("grid.lat")?;
                let lng = r.f64("grid.lng")?;
                let height = r.u8("grid.height")?;
                let leaf_spacing_km = r.f64("grid.leaf_spacing_km")?;
                let center = LatLng::new(lat, lng)
                    .map_err(|e| WireError::new(format!("grid.center: {e}")))?;
                r.tag(TAG_PRIOR, "reply.prior")?;
                let prior = PriorDistribution::from_probs(r.f64_run("reply.prior")?);
                r.tag(TAG_CODEC, "reply.codec")?;
                let codec = read_opt_str(r, "reply.codec")?;
                r.tag(TAG_AUTH, "reply.auth")?;
                let auth = read_opt_str(r, "reply.auth")?;
                Ok(HelloReply::Accepted {
                    version,
                    grid: HexGridConfig {
                        center,
                        height,
                        leaf_spacing_km,
                    },
                    prior,
                    codec,
                    auth,
                })
            }
            1 => Ok(HelloReply::Rejected(read_service_error(r)?)),
            other => Err(WireError::new(format!(
                "unknown hello reply discriminant {other}"
            ))),
        }
    }
}

impl WireMessage for WarmPush {
    const KIND: FrameKind = FrameKind::WarmPush;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_REQUEST);
        put_matrix_request(out, &self.request());
        put_u8(out, TAG_FOREST);
        match &self.forest {
            None => put_u8(out, 0),
            Some(forest) => {
                put_u8(out, 1);
                put_forest(out, forest);
            }
        }
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_REQUEST, "push.request")?;
        let request = read_matrix_request(r)?;
        r.tag(TAG_FOREST, "push.forest")?;
        let forest = match r.u8("push.forest presence")? {
            0 => None,
            1 => Some(Arc::new(read_forest(r)?)),
            other => {
                return Err(WireError::new(format!(
                    "invalid option presence byte {other}"
                )))
            }
        };
        Ok(Self {
            privacy_level: request.privacy_level,
            delta: request.delta,
            forest,
        })
    }
}

impl WireMessage for StatsRequest {
    const KIND: FrameKind = FrameKind::Stats;

    fn encode_binary(&self, _out: &mut Vec<u8>) {}

    fn decode_binary(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {})
    }
}

impl WireMessage for Ping {
    const KIND: FrameKind = FrameKind::Ping;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_NONCE);
        put_u64(out, self.nonce);
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_NONCE, "ping.nonce")?;
        Ok(Self {
            nonce: r.u64("ping.nonce")?,
        })
    }
}

impl WireMessage for Pong {
    const KIND: FrameKind = FrameKind::Pong;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_NONCE);
        put_u64(out, self.nonce);
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_NONCE, "pong.nonce")?;
        Ok(Self {
            nonce: r.u64("pong.nonce")?,
        })
    }
}

impl WireMessage for DigestRequest {
    const KIND: FrameKind = FrameKind::Digest;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_PULL);
        match &self.pull {
            None => put_u8(out, 0),
            Some(key) => {
                put_u8(out, 1);
                put_matrix_request(out, key);
            }
        }
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_PULL, "digest.pull")?;
        let pull = match r.u8("digest.pull presence")? {
            0 => None,
            1 => Some(read_matrix_request(r)?),
            other => {
                return Err(WireError::new(format!(
                    "invalid option presence byte {other}"
                )))
            }
        };
        Ok(Self { pull })
    }
}

impl WireMessage for DigestReply {
    const KIND: FrameKind = FrameKind::DigestReply;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_GENERATION);
        put_u64(out, self.generation);
        put_u8(out, TAG_KEYS);
        put_count(out, self.keys.len());
        for key in &self.keys {
            put_matrix_request(out, key);
        }
        put_u8(out, TAG_FOREST);
        match &self.forest {
            None => put_u8(out, 0),
            Some(forest) => {
                put_u8(out, 1);
                put_forest(out, forest);
            }
        }
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_GENERATION, "digest.generation")?;
        let generation = r.u64("digest.generation")?;
        r.tag(TAG_KEYS, "digest.keys")?;
        // Each key carries a privacy level (u8) and a delta (u64).
        let n = r.count(9, "digest.keys")?;
        let mut keys = Vec::with_capacity(n);
        for _ in 0..n {
            keys.push(read_matrix_request(r)?);
        }
        r.tag(TAG_FOREST, "digest.forest")?;
        let forest = match r.u8("digest.forest presence")? {
            0 => None,
            1 => Some(Arc::new(read_forest(r)?)),
            other => {
                return Err(WireError::new(format!(
                    "invalid option presence byte {other}"
                )))
            }
        };
        Ok(Self {
            generation,
            keys,
            forest,
        })
    }
}

fn put_cluster_stats(out: &mut Vec<u8>, c: &ClusterStats) {
    put_u64(out, c.pushes_received);
    put_u64(out, c.pushes_deduped);
    put_u64(out, c.pushes_ignored);
    put_u64(out, c.auth_rejections);
    put_u64(out, c.failovers);
    put_u64(out, c.rank_memo_hits);
    put_u64(out, c.probes_sent);
    put_u64(out, c.peers_down);
    put_u64(out, c.rewarm_keys_pulled);
    put_u64(out, c.pushes_repaired);
    put_count(out, c.peers.len());
    for peer in &c.peers {
        put_str(out, &peer.endpoint);
        put_u64(out, peer.pushes_sent);
        put_u64(out, peer.pushes_dropped);
        put_u64(out, peer.queue_depth);
        put_u64(out, peer.connects);
        put_u64(out, peer.link_errors);
        put_u64(out, peer.requests);
    }
}

fn read_cluster_stats(r: &mut WireReader<'_>) -> Result<ClusterStats, WireError> {
    let pushes_received = r.u64("cluster.pushes_received")?;
    let pushes_deduped = r.u64("cluster.pushes_deduped")?;
    let pushes_ignored = r.u64("cluster.pushes_ignored")?;
    let auth_rejections = r.u64("cluster.auth_rejections")?;
    let failovers = r.u64("cluster.failovers")?;
    let rank_memo_hits = r.u64("cluster.rank_memo_hits")?;
    let probes_sent = r.u64("cluster.probes_sent")?;
    let peers_down = r.u64("cluster.peers_down")?;
    let rewarm_keys_pulled = r.u64("cluster.rewarm_keys_pulled")?;
    let pushes_repaired = r.u64("cluster.pushes_repaired")?;
    // Each peer carries at least an endpoint length and six counters.
    let n = r.count(52, "cluster.peers")?;
    let mut peers = Vec::with_capacity(n);
    for _ in 0..n {
        peers.push(PeerStats {
            endpoint: r.str("peer.endpoint")?,
            pushes_sent: r.u64("peer.pushes_sent")?,
            pushes_dropped: r.u64("peer.pushes_dropped")?,
            queue_depth: r.u64("peer.queue_depth")?,
            connects: r.u64("peer.connects")?,
            link_errors: r.u64("peer.link_errors")?,
            requests: r.u64("peer.requests")?,
        });
    }
    Ok(ClusterStats {
        pushes_received,
        pushes_deduped,
        pushes_ignored,
        auth_rejections,
        failovers,
        rank_memo_hits,
        probes_sent,
        peers_down,
        rewarm_keys_pulled,
        pushes_repaired,
        peers,
    })
}

impl WireMessage for StatsReport {
    const KIND: FrameKind = FrameKind::StatsReply;

    fn encode_binary(&self, out: &mut Vec<u8>) {
        put_u8(out, TAG_TRANSPORT);
        let t = &self.transport;
        for v in [
            t.connections_accepted,
            t.connections_closed,
            t.binary_connections,
            t.json_connections,
            t.frames_in,
            t.frames_out,
            t.bytes_in,
            t.bytes_out,
            t.backpressure_stalls,
            t.requests_admitted,
            t.requests_shed,
            t.read_buffer_high_water,
            t.transport_errors,
            t.poisoned_connections,
        ] {
            put_u64(out, v);
        }
        put_u8(out, TAG_CACHE);
        match &self.cache {
            None => put_u8(out, 0),
            Some(c) => {
                put_u8(out, 1);
                put_u64(out, c.hits);
                put_u64(out, c.misses);
                put_u64(out, c.coalesced);
                put_u64(out, c.evictions);
                put_u64(out, c.entries as u64);
            }
        }
        put_u8(out, TAG_CLUSTER);
        match &self.cluster {
            None => put_u8(out, 0),
            Some(cluster) => {
                put_u8(out, 1);
                put_cluster_stats(out, cluster);
            }
        }
    }

    fn decode_binary(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.tag(TAG_TRANSPORT, "stats.transport")?;
        let transport = TransportStats {
            connections_accepted: r.u64("transport.connections_accepted")?,
            connections_closed: r.u64("transport.connections_closed")?,
            binary_connections: r.u64("transport.binary_connections")?,
            json_connections: r.u64("transport.json_connections")?,
            frames_in: r.u64("transport.frames_in")?,
            frames_out: r.u64("transport.frames_out")?,
            bytes_in: r.u64("transport.bytes_in")?,
            bytes_out: r.u64("transport.bytes_out")?,
            backpressure_stalls: r.u64("transport.backpressure_stalls")?,
            requests_admitted: r.u64("transport.requests_admitted")?,
            requests_shed: r.u64("transport.requests_shed")?,
            read_buffer_high_water: r.u64("transport.read_buffer_high_water")?,
            transport_errors: r.u64("transport.transport_errors")?,
            poisoned_connections: r.u64("transport.poisoned_connections")?,
        };
        r.tag(TAG_CACHE, "stats.cache")?;
        let cache = match r.u8("stats.cache presence")? {
            0 => None,
            1 => Some(CacheStats {
                hits: r.u64("cache.hits")?,
                misses: r.u64("cache.misses")?,
                coalesced: r.u64("cache.coalesced")?,
                evictions: r.u64("cache.evictions")?,
                entries: usize::try_from(r.u64("cache.entries")?)
                    .map_err(|_| WireError::new("cache.entries exceeds usize"))?,
            }),
            other => {
                return Err(WireError::new(format!(
                    "invalid option presence byte {other}"
                )))
            }
        };
        r.tag(TAG_CLUSTER, "stats.cluster")?;
        let cluster = match r.u8("stats.cluster presence")? {
            0 => None,
            1 => Some(read_cluster_stats(r)?),
            other => {
                return Err(WireError::new(format!(
                    "invalid option presence byte {other}"
                )))
            }
        };
        Ok(Self {
            transport,
            cache,
            cluster,
        })
    }
}

// ---------------------------------------------------------------------------
// Codec dispatch
// ---------------------------------------------------------------------------

impl WireCodec {
    /// Encode `message` as one complete frame — header and payload in a
    /// single buffer.  The 7 header bytes are reserved up front and patched
    /// in place once the payload length is known, so neither codec pays an
    /// encode-then-copy double buffering step.
    pub fn encode_frame<M: WireMessage>(self, message: &M) -> Vec<u8> {
        let mut frame = vec![0u8; FRAME_HEADER_LEN];
        match self {
            WireCodec::Json => serde_json::to_vec_into(message, &mut frame),
            WireCodec::Binary => message.encode_binary(&mut frame),
        }
        crate::transport::seal_frame(frame, M::KIND)
    }

    /// Decode a frame payload into a message, borrowing from the caller's
    /// read buffer (no intermediate copy of the payload bytes).
    pub fn decode_payload<M: WireMessage>(self, payload: &[u8]) -> Result<M, ServiceError> {
        match self {
            WireCodec::Json => {
                let text = std::str::from_utf8(payload)
                    .map_err(|e| ServiceError::transport(format!("payload is not utf-8: {e}")))?;
                serde_json::from_str(text)
                    .map_err(|e| ServiceError::transport(format!("malformed payload: {e:?}")))
            }
            WireCodec::Binary => {
                let mut reader = WireReader::new(payload);
                let message = M::decode_binary(&mut reader).map_err(ServiceError::from)?;
                reader.finish().map_err(ServiceError::from)?;
                Ok(message)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::PROTOCOL_VERSION;

    fn sample_forest() -> PrivacyForestResponse {
        let grid = corgi_hexgrid::HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let entries: Vec<ForestEntry> = grid
            .cells_at_level(1)
            .into_iter()
            .take(3)
            .map(|root| ForestEntry {
                subtree_root: root,
                matrix: ObfuscationMatrix::uniform(root.descendant_leaves()).unwrap(),
            })
            .collect();
        PrivacyForestResponse {
            request: MatrixRequest {
                privacy_level: 1,
                delta: 2,
            },
            epsilon: 15.0,
            entries,
        }
    }

    fn binary_roundtrip<M: WireMessage + PartialEq + std::fmt::Debug>(message: &M) {
        let frame = WireCodec::Binary.encode_frame(message);
        let mut buf = frame.clone();
        let (kind, payload) = crate::transport::try_decode_frame(&mut buf, usize::MAX)
            .unwrap()
            .unwrap();
        assert_eq!(kind, M::KIND);
        let back: M = WireCodec::Binary.decode_payload(&payload).unwrap();
        assert_eq!(&back, message);
        // The JSON codec produces the same decoded message.
        let json_frame = WireCodec::Json.encode_frame(message);
        let mut buf = json_frame;
        let (_, payload) = crate::transport::try_decode_frame(&mut buf, usize::MAX)
            .unwrap()
            .unwrap();
        let from_json: M = WireCodec::Json.decode_payload(&payload).unwrap();
        assert_eq!(&from_json, message);
    }

    #[test]
    fn every_message_type_round_trips_in_both_codecs() {
        binary_roundtrip(&RequestEnvelope::new(
            // Large but exactly f64-representable, so the JSON leg of the
            // equivalence check can carry it too (ids beyond 2^53 are
            // binary-only; see the dedicated test below).
            1 << 52,
            MatrixRequest {
                privacy_level: 3,
                delta: 7,
            },
        ));
        binary_roundtrip(&ResponseEnvelope::forest(42, Arc::new(sample_forest())));
        binary_roundtrip(&ResponseEnvelope::error(
            0,
            ServiceError::new(ServiceErrorKind::Generation, "solver diverged"),
        ));
        binary_roundtrip(&ResponseEnvelope::error(
            7,
            ServiceError::overloaded("dispatch backlog at 64; retry"),
        ));
        binary_roundtrip(&WarmRequest {
            privacy_levels: vec![1, 2, 3],
            deltas: vec![0, 1, 4],
        });
        binary_roundtrip(&WarmReport {
            requested: 4,
            warmed: 3,
            failures: vec![WarmFailure {
                privacy_level: 9,
                delta: 1,
                error: ServiceError::new(ServiceErrorKind::InvalidRequest, "level 9"),
            }],
            elapsed_ms: 1234,
        });
        binary_roundtrip(&HelloFrame {
            version: PROTOCOL_VERSION,
            codecs: Some(vec!["binary".into(), "json".into()]),
            auth: None,
        });
        binary_roundtrip(&HelloFrame {
            version: PROTOCOL_VERSION,
            codecs: None,
            auth: Some(crate::auth::AUTH_SCHEME.to_string()),
        });
        binary_roundtrip(&HelloReply::Accepted {
            version: PROTOCOL_VERSION,
            grid: HexGridConfig::san_francisco(),
            prior: PriorDistribution::from_probs(vec![0.25, 0.5, 0.25]),
            codec: Some("binary".into()),
            auth: Some(crate::auth::AUTH_SCHEME.to_string()),
        });
        binary_roundtrip(&HelloReply::Rejected(ServiceError::unsupported_version(
            ProtocolVersion { major: 9, minor: 0 },
        )));
        binary_roundtrip(&ResponseEnvelope::error(
            0,
            ServiceError::unauthenticated("frame failed authentication"),
        ));
        // Protocol 1.4 cluster messages.
        binary_roundtrip(&WarmPush {
            privacy_level: 2,
            delta: 3,
            forest: None,
        });
        binary_roundtrip(&WarmPush {
            privacy_level: 1,
            delta: 0,
            forest: Some(Arc::new(sample_forest())),
        });
        binary_roundtrip(&StatsRequest {});
        binary_roundtrip(&StatsReport {
            transport: TransportStats {
                connections_accepted: 3,
                connections_closed: 1,
                binary_connections: 2,
                json_connections: 1,
                frames_in: 100,
                frames_out: 99,
                bytes_in: 4096,
                bytes_out: 70_000,
                backpressure_stalls: 1,
                requests_admitted: 97,
                requests_shed: 2,
                read_buffer_high_water: 512,
                transport_errors: 1,
                poisoned_connections: 0,
            },
            cache: Some(CacheStats {
                hits: 90,
                misses: 7,
                coalesced: 3,
                evictions: 1,
                entries: 6,
            }),
            cluster: Some(ClusterStats {
                pushes_received: 5,
                pushes_deduped: 2,
                pushes_ignored: 1,
                auth_rejections: 4,
                failovers: 0,
                rank_memo_hits: 8,
                probes_sent: 21,
                peers_down: 1,
                rewarm_keys_pulled: 6,
                pushes_repaired: 4,
                peers: vec![PeerStats {
                    endpoint: "127.0.0.1:9001".into(),
                    pushes_sent: 7,
                    pushes_dropped: 3,
                    queue_depth: 1,
                    connects: 2,
                    link_errors: 1,
                    requests: 0,
                }],
            }),
        });
        binary_roundtrip(&StatsReport {
            transport: TransportStats::default(),
            cache: None,
            cluster: None,
        });
        // Protocol 1.5 resilience messages.
        binary_roundtrip(&Ping { nonce: u64::MAX });
        binary_roundtrip(&Pong { nonce: 0 });
        binary_roundtrip(&DigestRequest { pull: None });
        binary_roundtrip(&DigestRequest {
            pull: Some(MatrixRequest {
                privacy_level: 2,
                delta: 1,
            }),
        });
        binary_roundtrip(&DigestReply {
            generation: 343,
            keys: vec![
                MatrixRequest {
                    privacy_level: 1,
                    delta: 0,
                },
                MatrixRequest {
                    privacy_level: 3,
                    delta: 6,
                },
            ],
            forest: None,
        });
        binary_roundtrip(&DigestReply {
            generation: 1,
            keys: Vec::new(),
            forest: Some(Arc::new(sample_forest())),
        });
    }

    #[test]
    fn request_ids_beyond_2_53_survive_binary_but_not_json_text() {
        // The JSON shim stores numbers as f64, so a u64 id beyond 2^53 cannot
        // round-trip through JSON text — one more reason binary is the 1.2
        // default.  (JSON peers never get that high: the client allocates ids
        // sequentially from 1.)
        let envelope = RequestEnvelope::new(
            (1u64 << 53) + 1,
            MatrixRequest {
                privacy_level: 1,
                delta: 0,
            },
        );
        let frame = WireCodec::Binary.encode_frame(&envelope);
        let mut buf = frame;
        let (_, payload) = crate::transport::try_decode_frame(&mut buf, usize::MAX)
            .unwrap()
            .unwrap();
        let back: RequestEnvelope = WireCodec::Binary.decode_payload(&payload).unwrap();
        assert_eq!(back.request_id, (1 << 53) + 1);
    }

    #[test]
    fn special_f64_values_are_preserved_bit_exactly() {
        let grid = corgi_hexgrid::HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let cells = grid.cells_at_level(1)[0].descendant_leaves();
        let k = cells.len();
        let mut data = vec![0.125f64; k * k];
        data[0] = f64::NAN;
        data[1] = -0.0;
        data[2] = 5e-324; // smallest positive subnormal
        data[3] = f64::INFINITY;
        data[4] = f64::from_bits(0x7ff8_0000_dead_beef); // NaN with payload
        let matrix = ObfuscationMatrix::from_wire_parts(cells.clone(), data.clone()).unwrap();
        let response = ResponseEnvelope::forest(
            7,
            Arc::new(PrivacyForestResponse {
                request: MatrixRequest {
                    privacy_level: 1,
                    delta: 0,
                },
                epsilon: f64::NAN,
                entries: vec![ForestEntry {
                    subtree_root: grid.cells_at_level(1)[0],
                    matrix,
                }],
            }),
        );
        let frame = WireCodec::Binary.encode_frame(&response);
        let mut buf = frame;
        let (_, payload) = crate::transport::try_decode_frame(&mut buf, usize::MAX)
            .unwrap()
            .unwrap();
        let back: ResponseEnvelope = WireCodec::Binary.decode_payload(&payload).unwrap();
        let forest = match back.payload {
            ResponsePayload::Forest(f) => f,
            ResponsePayload::Error(e) => panic!("unexpected error: {e}"),
        };
        assert_eq!(forest.epsilon.to_bits(), f64::NAN.to_bits());
        let got = forest.entries[0].matrix.data();
        assert_eq!(got.len(), data.len());
        for (g, want) in got.iter().zip(&data) {
            assert_eq!(g.to_bits(), want.to_bits(), "bit-exact f64 round trip");
        }
    }

    #[test]
    fn corrupted_payloads_fail_with_structured_errors() {
        let envelope = RequestEnvelope::new(
            1,
            MatrixRequest {
                privacy_level: 1,
                delta: 0,
            },
        );
        let mut payload = Vec::new();
        envelope.encode_binary(&mut payload);

        // Truncation at every prefix length fails cleanly (never panics).
        for cut in 0..payload.len() {
            let err = WireCodec::Binary
                .decode_payload::<RequestEnvelope>(&payload[..cut])
                .unwrap_err();
            assert_eq!(err.kind, ServiceErrorKind::Transport);
        }
        // Trailing garbage is rejected.
        let mut long = payload.clone();
        long.push(0);
        let err = WireCodec::Binary
            .decode_payload::<RequestEnvelope>(&long)
            .unwrap_err();
        assert_eq!(err.kind, ServiceErrorKind::Transport);
        assert!(err.message.contains("trailing"), "{}", err.message);
        // A wrong leading tag is named in the error.
        let mut bad = payload.clone();
        bad[0] = 0x7f;
        let err = WireCodec::Binary
            .decode_payload::<RequestEnvelope>(&bad)
            .unwrap_err();
        assert!(err.message.contains("tag"), "{}", err.message);
        // JSON bytes on a binary-negotiated connection: structured error too.
        let err = WireCodec::Binary
            .decode_payload::<RequestEnvelope>(br#"{"request_id":1}"#)
            .unwrap_err();
        assert_eq!(err.kind, ServiceErrorKind::Transport);
    }

    #[test]
    fn hostile_counts_cannot_overallocate() {
        // A response claiming u32::MAX forest entries in a tiny payload must
        // be rejected by the count/remaining-bytes sanity bound, not
        // by an allocation failure.
        let mut payload = Vec::new();
        put_u8(&mut payload, TAG_VERSION);
        put_version(&mut payload, &PROTOCOL_VERSION);
        put_u8(&mut payload, TAG_REQUEST_ID);
        put_u64(&mut payload, 1);
        put_u8(&mut payload, TAG_PAYLOAD);
        put_u8(&mut payload, 0); // forest
        put_u8(&mut payload, TAG_REQUEST);
        put_matrix_request(
            &mut payload,
            &MatrixRequest {
                privacy_level: 1,
                delta: 0,
            },
        );
        put_u8(&mut payload, TAG_EPSILON);
        put_f64(&mut payload, 1.0);
        put_u8(&mut payload, TAG_ENTRIES);
        put_u32(&mut payload, u32::MAX);
        let err = WireCodec::Binary
            .decode_payload::<ResponseEnvelope>(&payload)
            .unwrap_err();
        assert_eq!(err.kind, ServiceErrorKind::Transport);
        assert!(err.message.contains("count"), "{}", err.message);
    }

    #[test]
    fn binary_forest_is_much_smaller_than_json() {
        let response = ResponseEnvelope::forest(1, Arc::new(sample_forest()));
        let binary = WireCodec::Binary.encode_frame(&response);
        let json = WireCodec::Json.encode_frame(&response);
        assert!(
            binary.len() * 2 < json.len(),
            "binary {}B should be well under half of JSON {}B",
            binary.len(),
            json.len()
        );
    }
}
