//! The CORGI client/server framework (paper Section 5, Fig. 1 and Fig. 8).
//!
//! Three actors interact:
//!
//! * the **server** (untrusted, computationally powerful): builds the location
//!   tree over the area of interest, and — given only a privacy level and the
//!   *number* of locations the user intends to prune — generates a robust
//!   obfuscation matrix for **every** subtree of the privacy forest
//!   (Algorithm 3), so it never learns which subtree contains the user;
//! * the **user device** (trusted): evaluates the customization policy on its
//!   private metadata, selects the matrix of its own subtree, prunes it, reduces
//!   its precision and samples the obfuscated location (Algorithm 4);
//! * **third-party location-based services**: receive only the obfuscated cell.
//!
//! [`CorgiServer`] and [`CorgiClient`] implement the two trusted-boundary sides;
//! [`messages`] defines the serde-serializable wire format exchanged between
//! them, and [`MetadataAttributeProvider`] bridges the `corgi-datagen` location
//! labels into the policy evaluation of `corgi-core`.

#![warn(missing_docs)]

mod client;
pub mod messages;
mod provider;
mod server;

pub use client::{CorgiClient, ObfuscationOutcome};
pub use provider::MetadataAttributeProvider;
pub use server::{CorgiServer, ServerConfig};
