//! The CORGI client/server framework (paper Section 5, Fig. 1 and Fig. 8).
//!
//! Three actors interact:
//!
//! * the **server** (untrusted, computationally powerful): builds the location
//!   tree over the area of interest, and — given only a privacy level and the
//!   *number* of locations the user intends to prune — generates a robust
//!   obfuscation matrix for **every** subtree of the privacy forest
//!   (Algorithm 3), so it never learns which subtree contains the user;
//! * the **user device** (trusted): evaluates the customization policy on its
//!   private metadata, selects the matrix of its own subtree, prunes it, reduces
//!   its precision and samples the obfuscated location (Algorithm 4);
//! * **third-party location-based services**: receive only the obfuscated cell.
//!
//! # The serving stack
//!
//! The server side is organized around the [`MatrixService`] trait with three
//! implementations layered by composition:
//!
//! | Layer | Responsibility |
//! |---|---|
//! | [`ForestGenerator`] | Raw compute: per-subtree LP solves fanned out over a fixed-size [`ThreadPool`] |
//! | [`CachingService`] | Sharded, capacity-bounded LRU over `(privacy_level, δ)` keys with single-flight deduplication |
//! | [`InstrumentedService`] | Per-request latency / error counters ([`ServiceStats`]) |
//!
//! A typical deployment composes all three behind a trait object:
//!
//! ```text
//! Arc<dyn MatrixService> = InstrumentedService<CachingService<ForestGenerator>>
//! ```
//!
//! # The event-driven serving core
//!
//! Cross-process serving stacks four more layers under that trait object,
//! every one hand-rolled on `std` (the offline build has no tokio/mio):
//!
//! ```text
//! executor   executor::Executor — single-threaded future runner: atomic-state
//!    │        wakers, hashed timer wheel, oneshot completions, I/O poll set
//! reactor    transport::{AcceptTask, ConnectionTask} — nonblocking std::net
//!    │        sockets polled per tick, bounded per-connection write queues
//! transport  length-prefixed frames carrying the versioned envelopes of
//!    │        [`messages`] in the negotiated [`WireCodec`] (binary between
//!    │        1.2 peers, JSON fallback); version + codec negotiation on
//!    │        connect ([`mod@codec`] holds the binary encoding)
//! service    Arc<dyn MatrixService> — requests dispatched to a ThreadPool,
//!             responses re-entering the event loop as oneshot futures
//! ```
//!
//! [`TcpServer`] runs the three top layers on one reactor thread;
//! [`TcpTransport`] is the client side of the same frames and is itself a
//! [`MatrixService`], so [`CorgiClient`] works unchanged over a process
//! boundary.  The [`mod@warm`] subsystem precomputes the `(privacy_level, δ)` key
//! grid through whatever caching layer the stack holds, making steady-state
//! traffic cache-hit dominated.
//!
//! # The cluster subsystem (protocols 1.4–1.5)
//!
//! [`mod@cluster`] scales the single-server stack out horizontally:
//!
//! * [`ShardRouter`] — a client-side [`MatrixService`] that rendezvous-hashes
//!   each `(privacy_level, δ)` cache key across N server endpoints and fails
//!   over to the next-ranked shard with bounded retry/backoff;
//! * [`Replicator`] / [`ReplicatingService`] — after a cold miss, the solving
//!   shard pushes the key (and usually the solved forest) to its peers as
//!   fire-and-forget `WarmPush` frames over bounded drop-oldest queues, so a
//!   miss on shard A becomes a warm hit on shard B without a second LP solve;
//! * [`mod@auth`] — hand-rolled SHA-256/HMAC frame authentication
//!   ([`ClusterKey`]) negotiated at `Hello` time, appending a truncated MAC
//!   trailer to every frame of a keyed cluster;
//! * wire-level observability — a `Stats` frame returns a [`StatsReport`]
//!   (transport + cache + cluster counters) without touching in-process
//!   accessors.
//!
//! Protocol 1.5 adds the resilience layer: `Ping`/`Pong` liveness probes
//! drive a per-peer health state machine ([`cluster::PeerHealthState`]) so
//! routing skips known-dead shards before paying a connect timeout;
//! `Digest`/`DigestReply` frames let a restarted shard re-warm its cache
//! from peers without repeating any LP solve
//! ([`TcpServer::rewarm_from_peers`]); and an optional [`FaultPlan`]
//! ([`mod@fault`]) injects deterministic failures through the transport for
//! chaos testing.
//!
//! [`CorgiClient`] implements the trusted device side against the trait
//! object; [`messages`] defines the serde-serializable wire format — including
//! the versioned [`messages::RequestEnvelope`] / [`messages::ResponseEnvelope`]
//! — and [`MetadataAttributeProvider`] bridges the `corgi-datagen` location
//! labels into the policy evaluation of `corgi-core`.
//!
//! # Migrating from `CorgiServer`
//!
//! The monolithic `CorgiServer` is deprecated and now a thin facade over the
//! stack above. Old calls map one-to-one:
//!
//! ```text
//! // old
//! let server = CorgiServer::new(tree, prior, ServerConfig { epsilon: 15.0, ..Default::default() });
//! let response = server.handle_request(request)?;
//! let client = CorgiClient::new(&server, policy, provider)?;
//!
//! // new
//! let config = ServerConfig::builder().epsilon(15.0).build();
//! let service: Arc<dyn MatrixService> =
//!     Arc::new(CachingService::with_defaults(ForestGenerator::new(tree, prior, config)));
//! let response = service.privacy_forest(request)?;
//! let client = CorgiClient::new(Arc::clone(&service), policy, provider)?;
//! ```

#![warn(missing_docs)]

pub mod auth;
mod client;
pub mod cluster;
pub mod codec;
pub mod executor;
pub mod fault;
pub mod messages;
mod pool;
mod provider;
mod server;
mod service;
pub mod sys;
pub mod transport;
pub mod warm;

pub use auth::ClusterKey;
pub use client::{CorgiClient, ObfuscationOutcome};
pub use cluster::{
    rendezvous_rank, ClusterStats, HealthConfig, PeerHealthState, PeerStats, Ping, Pong,
    ReplicatingService, ReplicationConfig, Replicator, RouterConfig, ShardRouter, StatsReport,
    StatsRequest,
};
pub use codec::{WireMessage, WireReader};
pub use executor::ReactorBackend;
pub use fault::{FaultAction, FaultPlan, FaultSite};
pub use messages::{ServiceError, ServiceErrorKind, WireCodec};
pub use pool::{JobPanic, ThreadPool};
pub use provider::MetadataAttributeProvider;
#[allow(deprecated)]
pub use server::CorgiServer;
pub use server::{ServerConfig, ServerConfigBuilder};
pub use service::{
    CacheConfig, CacheStats, CachingService, ForestGenerator, InstrumentedService, MatrixService,
    ServiceStats, WarmInsertOutcome, WarmSeedStats,
};
pub use transport::{ClientConfig, TcpServer, TcpTransport, TransportConfig, TransportStats};
pub use warm::{
    warm, DigestReply, DigestRequest, RewarmReport, WarmFailure, WarmPush, WarmReport, WarmRequest,
};
