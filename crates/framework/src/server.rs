//! Server configuration and the deprecated [`CorgiServer`] facade.
//!
//! The serving stack itself lives in [`crate::service`]: compose
//! [`ForestGenerator`] with [`CachingService`] (and optionally
//! [`crate::InstrumentedService`]) behind an `Arc<dyn MatrixService>`.
//! [`CorgiServer`] remains only as a thin deprecated facade over that stack so
//! the pre-service API keeps compiling for one release.

use crate::messages::{MatrixRequest, PrivacyForestResponse};
use crate::service::{CacheConfig, CachingService, ForestGenerator, MatrixService};
use corgi_core::{CorgiError, LocationTree, ObfuscationProblem, Subtree};
use corgi_datagen::PriorDistribution;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Server-side configuration (set once for all users, footnote 6 of the paper).
///
/// Construct with [`ServerConfig::builder`] — the builder reads better than a
/// struct literal and keeps call sites stable as fields are added:
///
/// ```
/// use corgi_framework::ServerConfig;
///
/// let config = ServerConfig::builder()
///     .epsilon(15.0)
///     .robust_iterations(4)
///     .targets_per_subtree(20)
///     .build();
/// assert_eq!(config.epsilon, 15.0);
/// assert!(config.graph_approximation);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Privacy budget ε in 1/km (the paper sweeps 15–20).
    pub epsilon: f64,
    /// Number of Algorithm-1 iterations `t` (the paper uses 10, converging in ~4).
    pub robust_iterations: usize,
    /// Number of target locations (places of interest) per subtree used in the
    /// quality-loss objective (the paper's `NR_TARGET`, 49 in the experiments).
    pub targets_per_subtree: usize,
    /// Whether to use the graph approximation of Section 4.2 (on by default).
    pub graph_approximation: bool,
    /// Seed for the random selection of target locations (combined with the
    /// subtree root so every subtree draws its own target set).
    pub target_seed: u64,
    /// Worker threads solving subtree LPs in parallel; 0 sizes the pool to the
    /// available cores.
    pub worker_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            epsilon: 15.0,
            robust_iterations: 10,
            targets_per_subtree: 49,
            graph_approximation: true,
            target_seed: 7,
            worker_threads: 0,
        }
    }
}

impl ServerConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`ServerConfig`]; every setter has the paper's default.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Privacy budget ε in 1/km.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.config.epsilon = epsilon;
        self
    }

    /// Number of Algorithm-1 refinement iterations.
    pub fn robust_iterations(mut self, iterations: usize) -> Self {
        self.config.robust_iterations = iterations;
        self
    }

    /// Number of target locations per subtree.
    pub fn targets_per_subtree(mut self, targets: usize) -> Self {
        self.config.targets_per_subtree = targets;
        self
    }

    /// Enable or disable the Section-4.2 graph approximation.
    pub fn graph_approximation(mut self, enabled: bool) -> Self {
        self.config.graph_approximation = enabled;
        self
    }

    /// Seed for the per-subtree target selection.
    pub fn target_seed(mut self, seed: u64) -> Self {
        self.config.target_seed = seed;
        self
    }

    /// Worker threads for the per-subtree LP solves (0 = available cores).
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.config.worker_threads = threads;
        self
    }

    /// Finish building.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

/// The pre-service-layer server facade.
///
/// Delegates to a [`CachingService`]`<`[`ForestGenerator`]`>` internally; new
/// code should build that stack directly (see the [`MatrixService`] docs) and
/// hand `Arc<dyn MatrixService>` to [`crate::CorgiClient`].
///
/// **Removal timeline:** kept through the 0.1.x series so the pre-service API
/// keeps compiling; deleted in 0.2.0 together with this deprecation shim.  It
/// will not grow transport support — cross-process serving exists only on the
/// [`MatrixService`] stack via [`crate::TcpServer`] / [`crate::TcpTransport`].
/// Migration:
///
/// | old | new |
/// |---|---|
/// | `CorgiServer::new(tree, prior, config)` | `CachingService::with_defaults(ForestGenerator::new(tree, prior, config))` |
/// | `server.handle_request(req)` | `service.privacy_forest(req)` |
/// | `server.cached_forests()` | `caching_service.len()` / `cache_stats().entries` |
/// | `CorgiClient::new(&server, …)` | `CorgiClient::new(server.service(), …)` |
#[deprecated(
    since = "0.1.0",
    note = "compose ForestGenerator + CachingService behind Arc<dyn MatrixService> instead"
)]
pub struct CorgiServer {
    service: Arc<CachingService<ForestGenerator>>,
    prior: Arc<PriorDistribution>,
}

#[allow(deprecated)]
impl CorgiServer {
    /// Create a server over a location tree with a public prior distribution.
    pub fn new(tree: LocationTree, prior: PriorDistribution, config: ServerConfig) -> Self {
        let generator = ForestGenerator::new(tree, prior, config);
        let prior = generator.prior();
        Self {
            service: Arc::new(CachingService::new(generator, CacheConfig::default())),
            prior,
        }
    }

    /// The serving stack behind this facade, as a trait object for
    /// [`crate::CorgiClient`] and other new-API callers.
    pub fn service(&self) -> Arc<dyn MatrixService> {
        Arc::clone(&self.service) as Arc<dyn MatrixService>
    }

    /// The server's location tree (shared with clients in step ② of Fig. 1).
    pub fn tree(&self) -> Arc<LocationTree> {
        self.service.tree()
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        self.service.inner().config()
    }

    /// The public prior distribution over leaf cells.
    pub fn prior(&self) -> &PriorDistribution {
        &self.prior
    }

    /// Handle a matrix request (Algorithm 3): generate — or fetch from cache — a
    /// robust matrix for every subtree rooted at the requested privacy level.
    pub fn handle_request(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, CorgiError> {
        self.service
            .privacy_forest(request)
            .map_err(CorgiError::from)
    }

    /// Number of privacy forests currently cached.
    pub fn cached_forests(&self) -> usize {
        self.service.len()
    }

    /// Generate the privacy forest for a request without consulting the cache.
    pub fn generate_privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<PrivacyForestResponse, CorgiError> {
        self.service.inner().generate(request)
    }

    /// Build the LP instance for one subtree: restricted prior + randomly chosen
    /// target locations (the paper samples `NR_TARGET` leaf nodes as targets).
    pub fn problem_for_subtree(&self, subtree: &Subtree) -> Result<ObfuscationProblem, CorgiError> {
        self.service.inner().problem_for_subtree(subtree)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator};
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    fn server() -> CorgiServer {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let (dataset, _) =
            GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
        let tree = LocationTree::new(grid);
        CorgiServer::new(
            tree,
            prior,
            ServerConfig::builder()
                .robust_iterations(2)
                .targets_per_subtree(5)
                .build(),
        )
    }

    #[test]
    fn builder_defaults_match_default_config() {
        assert_eq!(ServerConfig::builder().build(), ServerConfig::default());
        let custom = ServerConfig::builder()
            .epsilon(17.0)
            .robust_iterations(3)
            .targets_per_subtree(9)
            .graph_approximation(false)
            .target_seed(99)
            .worker_threads(2)
            .build();
        assert_eq!(custom.epsilon, 17.0);
        assert_eq!(custom.robust_iterations, 3);
        assert_eq!(custom.targets_per_subtree, 9);
        assert!(!custom.graph_approximation);
        assert_eq!(custom.target_seed, 99);
        assert_eq!(custom.worker_threads, 2);
    }

    #[test]
    fn privacy_forest_covers_every_subtree() {
        let srv = server();
        let response = srv
            .handle_request(MatrixRequest {
                privacy_level: 1,
                delta: 1,
            })
            .unwrap();
        // Level 1 of the height-3 tree has 49 subtrees of 7 leaves each.
        assert_eq!(response.entries.len(), 49);
        for entry in &response.entries {
            assert_eq!(entry.subtree_root.level(), 1);
            assert_eq!(entry.matrix.size(), 7);
            entry.matrix.check_stochastic(1e-6).unwrap();
        }
        // Every leaf of the tree is covered by exactly one entry.
        for leaf in srv.tree().leaves() {
            let owners = response
                .entries
                .iter()
                .filter(|e| e.subtree_root.is_ancestor_of(leaf))
                .count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn responses_are_cached_per_request_key() {
        let srv = server();
        let req = MatrixRequest {
            privacy_level: 1,
            delta: 0,
        };
        let a = srv.handle_request(req).unwrap();
        let b = srv.handle_request(req).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(srv.cached_forests(), 1);
        let _ = srv
            .handle_request(MatrixRequest {
                privacy_level: 1,
                delta: 2,
            })
            .unwrap();
        assert_eq!(srv.cached_forests(), 2);
    }

    #[test]
    fn invalid_privacy_level_is_rejected() {
        let srv = server();
        assert!(srv
            .handle_request(MatrixRequest {
                privacy_level: 9,
                delta: 1,
            })
            .is_err());
    }
}
