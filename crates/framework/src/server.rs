//! The untrusted CORGI server (Algorithm 3).

use crate::messages::{ForestEntry, MatrixRequest, PrivacyForestResponse};
use corgi_core::{
    generate_robust_matrix, CorgiError, LocationTree, ObfuscationProblem, RobustConfig,
    SolverKind,
};
use corgi_datagen::PriorDistribution;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Server-side configuration (set once for all users, footnote 6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Privacy budget ε in 1/km (the paper sweeps 15–20).
    pub epsilon: f64,
    /// Number of Algorithm-1 iterations `t` (the paper uses 10, converging in ~4).
    pub robust_iterations: usize,
    /// Number of target locations (places of interest) per subtree used in the
    /// quality-loss objective (the paper's `NR_TARGET`, 49 in the experiments).
    pub targets_per_subtree: usize,
    /// Whether to use the graph approximation of Section 4.2 (on by default).
    pub graph_approximation: bool,
    /// Seed for the random selection of target locations.
    pub target_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            epsilon: 15.0,
            robust_iterations: 10,
            targets_per_subtree: 49,
            graph_approximation: true,
            target_seed: 7,
        }
    }
}

/// The untrusted server: owns the location tree and the public prior, and
/// generates robust obfuscation matrices for whole privacy forests.
///
/// Results are cached per `(privacy_level, δ)` because the server serves many
/// users with the same universal parameters; the cache is protected by a mutex so
/// a server instance can be shared across threads.
pub struct CorgiServer {
    tree: Arc<LocationTree>,
    prior: PriorDistribution,
    config: ServerConfig,
    cache: Mutex<HashMap<(u8, usize), Arc<PrivacyForestResponse>>>,
}

impl CorgiServer {
    /// Create a server over a location tree with a public prior distribution.
    pub fn new(tree: LocationTree, prior: PriorDistribution, config: ServerConfig) -> Self {
        Self {
            tree: Arc::new(tree),
            prior,
            config,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The server's location tree (shared with clients in step ② of Fig. 1).
    pub fn tree(&self) -> Arc<LocationTree> {
        Arc::clone(&self.tree)
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The public prior distribution over leaf cells.
    pub fn prior(&self) -> &PriorDistribution {
        &self.prior
    }

    /// Handle a matrix request (Algorithm 3): generate — or fetch from cache — a
    /// robust matrix for every subtree rooted at the requested privacy level.
    pub fn handle_request(
        &self,
        request: MatrixRequest,
    ) -> Result<Arc<PrivacyForestResponse>, CorgiError> {
        let key = (request.privacy_level, request.delta);
        if let Some(cached) = self.cache.lock().get(&key) {
            return Ok(Arc::clone(cached));
        }
        let response = Arc::new(self.generate_privacy_forest(request)?);
        self.cache.lock().insert(key, Arc::clone(&response));
        Ok(response)
    }

    /// Number of privacy forests currently cached.
    pub fn cached_forests(&self) -> usize {
        self.cache.lock().len()
    }

    /// Generate the privacy forest for a request without consulting the cache.
    pub fn generate_privacy_forest(
        &self,
        request: MatrixRequest,
    ) -> Result<PrivacyForestResponse, CorgiError> {
        let forest = self.tree.privacy_forest(request.privacy_level)?;
        let mut entries = Vec::with_capacity(forest.len());
        for subtree in &forest {
            let problem = self.problem_for_subtree(subtree)?;
            let run = generate_robust_matrix(
                &problem,
                &RobustConfig {
                    delta: request.delta,
                    iterations: if request.delta == 0 {
                        0
                    } else {
                        self.config.robust_iterations
                    },
                    solver: SolverKind::Auto,
                },
            )?;
            entries.push(ForestEntry {
                subtree_root: subtree.root(),
                matrix: run.matrix,
            });
        }
        Ok(PrivacyForestResponse {
            request,
            epsilon: self.config.epsilon,
            entries,
        })
    }

    /// Build the LP instance for one subtree: restricted prior + randomly chosen
    /// target locations (the paper samples `NR_TARGET` leaf nodes as targets).
    pub fn problem_for_subtree(
        &self,
        subtree: &corgi_core::Subtree,
    ) -> Result<ObfuscationProblem, CorgiError> {
        let leaves = subtree.leaves();
        let prior = self
            .prior
            .restricted_to(self.tree.grid(), leaves)
            .unwrap_or_else(|| vec![1.0 / leaves.len() as f64; leaves.len()]);
        let mut rng = StdRng::seed_from_u64(self.config.target_seed);
        let mut indices: Vec<usize> = (0..leaves.len()).collect();
        indices.shuffle(&mut rng);
        let n_targets = self.config.targets_per_subtree.clamp(1, leaves.len());
        let targets: Vec<usize> = indices.into_iter().take(n_targets).collect();
        ObfuscationProblem::new(
            &self.tree,
            subtree,
            &prior,
            &targets,
            self.config.epsilon,
            self.config.graph_approximation,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgi_datagen::{GowallaLikeConfig, GowallaLikeGenerator};
    use corgi_hexgrid::{HexGrid, HexGridConfig};

    fn server() -> CorgiServer {
        let grid = HexGrid::new(HexGridConfig::san_francisco()).unwrap();
        let (dataset, _) =
            GowallaLikeGenerator::new(GowallaLikeConfig::small_test()).generate(&grid);
        let prior = PriorDistribution::from_dataset(&grid, &dataset, 0.5);
        let tree = LocationTree::new(grid);
        CorgiServer::new(
            tree,
            prior,
            ServerConfig {
                robust_iterations: 2,
                targets_per_subtree: 5,
                ..ServerConfig::default()
            },
        )
    }

    #[test]
    fn privacy_forest_covers_every_subtree() {
        let srv = server();
        let response = srv
            .handle_request(MatrixRequest {
                privacy_level: 1,
                delta: 1,
            })
            .unwrap();
        // Level 1 of the height-3 tree has 49 subtrees of 7 leaves each.
        assert_eq!(response.entries.len(), 49);
        for entry in &response.entries {
            assert_eq!(entry.subtree_root.level(), 1);
            assert_eq!(entry.matrix.size(), 7);
            entry.matrix.check_stochastic(1e-6).unwrap();
        }
        // Every leaf of the tree is covered by exactly one entry.
        for leaf in srv.tree().leaves() {
            let owners = response
                .entries
                .iter()
                .filter(|e| e.subtree_root.is_ancestor_of(leaf))
                .count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn responses_are_cached_per_request_key() {
        let srv = server();
        let req = MatrixRequest {
            privacy_level: 1,
            delta: 0,
        };
        let a = srv.handle_request(req).unwrap();
        let b = srv.handle_request(req).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(srv.cached_forests(), 1);
        let _ = srv
            .handle_request(MatrixRequest {
                privacy_level: 1,
                delta: 2,
            })
            .unwrap();
        assert_eq!(srv.cached_forests(), 2);
    }

    #[test]
    fn invalid_privacy_level_is_rejected() {
        let srv = server();
        assert!(srv
            .handle_request(MatrixRequest {
                privacy_level: 9,
                delta: 1,
            })
            .is_err());
    }
}
