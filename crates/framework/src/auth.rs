//! Keyed frame authentication: hand-rolled SHA-256 and HMAC-SHA-256.
//!
//! The build environment has no network access, so no cryptography crates are
//! available; this module implements FIPS 180-4 SHA-256 and RFC 2104
//! HMAC-SHA-256 from scratch (validated against the FIPS example vectors and
//! RFC 4231 test cases in the unit tests below) and layers the transport's
//! frame-authentication scheme on top.
//!
//! # Scheme
//!
//! A cluster shares one secret.  [`ClusterKey::from_secret`] normalizes any
//! byte string through SHA-256 into the 32-byte MAC key; operators usually set
//! it via the `CORGI_CLUSTER_KEY` environment variable
//! ([`ClusterKey::from_env`]).  Whether a connection authenticates is
//! negotiated in the `Hello`/`HelloReply` exchange (which always travels as
//! plain JSON, so a key mismatch produces a *legible* structured rejection
//! rather than undecodable bytes); once negotiated, **every** subsequent frame
//! carries a MAC trailer:
//!
//! ```text
//! | magic 2B | kind 1B | len 4B |   payload   | mac 16B |
//!                       ^ len counts payload + MAC
//!   mac = HMAC-SHA-256(key, header ‖ payload)[..16]
//! ```
//!
//! The MAC covers the *final* header (with the trailer already counted in
//! `len`), so length-truncation and kind-swapping are tamper-evident along
//! with the payload itself.  Verification failures surface as structured
//! [`Unauthenticated`](crate::messages::ServiceErrorKind::Unauthenticated)
//! errors and are counted in [`ClusterStats`](crate::cluster::ClusterStats).
//!
//! The scheme authenticates and tamper-proofs traffic between nodes that
//! already share the key; it is not encryption (payloads travel in the clear)
//! and the hello itself is unauthenticated (an active attacker can force a
//! handshake failure, but never an accepted forged frame).
//!
//! # Key rotation (protocol 1.5)
//!
//! Keys rotate without a full-cluster restart through a dual-key acceptance
//! window: `CORGI_CLUSTER_KEY_PREVIOUS` names a second secret that frames are
//! *verified* against when the primary fails, while every outbound frame is
//! always *signed* with the primary ([`ClusterKey::with_previous`]).  Rolling
//! a cluster from key A to key B is a two-phase swap — first deploy
//! `KEY=A, PREVIOUS=B` everywhere (still signing A, now accepting B), then
//! `KEY=B, PREVIOUS=A` (signing B, still accepting A), then drop the previous
//! key — so at every step both sides of any connection verify what the other
//! signs.

use std::fmt;

/// Bytes of HMAC-SHA-256 output kept as the per-frame trailer.
///
/// 16 bytes (128 bits) is the conventional truncation floor (RFC 2104 §5
/// requires at least half the hash output); forging a frame still requires
/// 2^128 work while halving the per-frame overhead.
pub const MAC_LEN: usize = 16;

/// Name of the only authentication scheme, as advertised in hello frames.
pub const AUTH_SCHEME: &str = "hmac-sha256";

/// Environment variable holding the shared cluster secret.
pub const CLUSTER_KEY_ENV: &str = "CORGI_CLUSTER_KEY";

/// Environment variable holding the *previous* cluster secret during a key
/// rotation window: frames are verified against it when the primary key
/// fails, but outbound frames are always signed with the primary.
pub const CLUSTER_KEY_PREVIOUS_ENV: &str = "CORGI_CLUSTER_KEY_PREVIOUS";

// --------------------------------------------------------------------------
// SHA-256 (FIPS 180-4)
// --------------------------------------------------------------------------

/// The 64 round constants: fractional parts of the cube roots of the first 64
/// primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: fractional parts of the square roots of the first 8
/// primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
///
/// ```
/// use corgi_framework::auth::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize()[..4],
///     [0xba, 0x78, 0x16, 0xbf],
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    /// Total message length in bytes (the padding encodes it in bits).
    length: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorb more message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        // Top up a partial block first.
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Apply the FIPS 180-4 padding and return the digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_length = self.length.wrapping_mul(8);
        // 0x80 terminator, zeros to 56 mod 64, then the 64-bit bit length.
        self.update(&[0x80]);
        // `update` above may have advanced `length`, but the captured
        // `bit_length` is what the padding must encode; only the buffer
        // position matters from here on.
        while self.buffered != 56 {
            let zeros = if self.buffered < 56 {
                56 - self.buffered
            } else {
                64 - self.buffered
            };
            const ZEROS: [u8; 64] = [0u8; 64];
            self.update(&ZEROS[..zeros]);
        }
        self.update(&bit_length.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut digest = [0u8; 32];
        for (chunk, word) in digest.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        digest
    }

    /// One compression round over a 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// HMAC-SHA-256 over the concatenation of `parts` (RFC 2104).
///
/// Taking the message as parts lets callers MAC a frame header and payload
/// that live in separate buffers without copying them together first.
pub fn hmac_sha256(key: &[u8], parts: &[&[u8]]) -> [u8; 32] {
    const BLOCK: usize = 64;
    let mut padded = [0u8; BLOCK];
    if key.len() > BLOCK {
        padded[..32].copy_from_slice(&sha256(key));
    } else {
        padded[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let mut ipad = [0u8; BLOCK];
    for (o, k) in ipad.iter_mut().zip(padded.iter()) {
        *o = k ^ 0x36;
    }
    inner.update(&ipad);
    for part in parts {
        inner.update(part);
    }
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let mut opad = [0u8; BLOCK];
    for (o, k) in opad.iter_mut().zip(padded.iter()) {
        *o = k ^ 0x5c;
    }
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time byte-slice equality (no early exit on the first mismatch).
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

// --------------------------------------------------------------------------
// Cluster key + frame trailer scheme
// --------------------------------------------------------------------------

/// Why an authenticated frame failed verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// The frame is too short to even hold a MAC trailer.
    Truncated,
    /// The MAC trailer does not match the frame contents.
    BadMac,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::Truncated => write!(f, "frame too short to carry a MAC trailer"),
            AuthError::BadMac => write!(f, "frame MAC verification failed"),
        }
    }
}

impl std::error::Error for AuthError {}

/// The shared cluster secret, normalized to a 32-byte MAC key — plus, during
/// a rotation window, the previous key that inbound frames are still accepted
/// under ([`ClusterKey::with_previous`]).
///
/// Compare with `==` for key-agreement checks in tests; the `Debug` impl
/// never prints key material.
#[derive(Clone, PartialEq, Eq)]
pub struct ClusterKey {
    primary: [u8; 32],
    previous: Option<[u8; 32]>,
}

impl fmt::Debug for ClusterKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never leak key bytes through logs; the fingerprint (first 4 bytes of
        // SHA-256 of the key) is enough to tell two keys apart when debugging.
        let fp = sha256(&self.primary);
        write!(
            f,
            "ClusterKey(fp={:02x}{:02x}{:02x}{:02x}{})",
            fp[0],
            fp[1],
            fp[2],
            fp[3],
            if self.previous.is_some() {
                ", rotating"
            } else {
                ""
            }
        )
    }
}

impl ClusterKey {
    /// Derive the key from an arbitrary secret byte string.
    pub fn from_secret(secret: &[u8]) -> Self {
        Self {
            primary: sha256(secret),
            previous: None,
        }
    }

    /// Open a rotation window: keep signing with this key, but also accept
    /// frames signed with the key derived from `secret`.
    pub fn with_previous(mut self, secret: &[u8]) -> Self {
        self.previous = Some(sha256(secret));
        self
    }

    /// Read the key from the `CORGI_CLUSTER_KEY` environment variable, and
    /// the rotation-window secondary from `CORGI_CLUSTER_KEY_PREVIOUS`.
    ///
    /// Returns `None` when the primary variable is unset or empty
    /// (authentication disabled; a previous key alone enables nothing).
    pub fn from_env() -> Option<Self> {
        let key = std::env::var(CLUSTER_KEY_ENV)
            .ok()
            .filter(|s| !s.is_empty())
            .map(|s| Self::from_secret(s.as_bytes()))?;
        Some(
            match std::env::var(CLUSTER_KEY_PREVIOUS_ENV)
                .ok()
                .filter(|s| !s.is_empty())
            {
                Some(prev) => key.with_previous(prev.as_bytes()),
                None => key,
            },
        )
    }

    /// Whether a rotation window is open (a previous key is accepted).
    pub fn is_rotating(&self) -> bool {
        self.previous.is_some()
    }

    /// Truncated HMAC over the concatenation of `parts`, signed with the
    /// primary key.
    pub fn mac(&self, parts: &[&[u8]]) -> [u8; MAC_LEN] {
        Self::mac_with(&self.primary, parts)
    }

    fn mac_with(key: &[u8; 32], parts: &[&[u8]]) -> [u8; MAC_LEN] {
        let full = hmac_sha256(key, parts);
        let mut mac = [0u8; MAC_LEN];
        mac.copy_from_slice(&full[..MAC_LEN]);
        mac
    }

    /// Verify `trailer` against the primary key, falling back to the previous
    /// key when a rotation window is open.
    fn verify(&self, parts: &[&[u8]], trailer: &[u8]) -> bool {
        if constant_time_eq(&Self::mac_with(&self.primary, parts), trailer) {
            return true;
        }
        match &self.previous {
            Some(previous) => constant_time_eq(&Self::mac_with(previous, parts), trailer),
            None => false,
        }
    }

    /// Append the MAC trailer to a sealed frame (header + payload), patching
    /// the header length to count the trailer.
    pub fn seal(&self, mut frame: Vec<u8>) -> Vec<u8> {
        let header = crate::transport::FRAME_HEADER_LEN;
        debug_assert!(frame.len() >= header, "seal() takes a framed message");
        let body_len = (frame.len() - header + MAC_LEN) as u32;
        frame[header - 4..header].copy_from_slice(&body_len.to_be_bytes());
        let mac = self.mac(&[&frame]);
        frame.extend_from_slice(&mac);
        frame
    }

    /// Verify a complete authenticated frame (header + payload + trailer) and
    /// return the bare payload slice.
    pub fn open<'a>(&self, frame: &'a [u8]) -> Result<&'a [u8], AuthError> {
        let header = crate::transport::FRAME_HEADER_LEN;
        if frame.len() < header + MAC_LEN {
            return Err(AuthError::Truncated);
        }
        let body_end = frame.len() - MAC_LEN;
        if !self.verify(&[&frame[..body_end]], &frame[body_end..]) {
            return Err(AuthError::BadMac);
        }
        Ok(&frame[header..body_end])
    }

    /// Verify a frame read as separate header and body buffers, truncating the
    /// MAC trailer off `body` on success.
    ///
    /// This is the shape of the blocking client read path, which reads the
    /// 7-byte header and the length-prefixed body into separate buffers.
    pub fn open_split(&self, header: &[u8], body: &mut Vec<u8>) -> Result<(), AuthError> {
        if body.len() < MAC_LEN {
            return Err(AuthError::Truncated);
        }
        let payload_len = body.len() - MAC_LEN;
        if !self.verify(&[header, &body[..payload_len]], &body[payload_len..]) {
            return Err(AuthError::BadMac);
        }
        body.truncate(payload_len);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        // FIPS 180-4 / NIST example vectors.
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_streams_across_odd_chunk_boundaries() {
        // One million 'a's, fed in chunk sizes that straddle block boundaries.
        let chunk = [b'a'; 997];
        let mut hasher = Sha256::new();
        let mut remaining = 1_000_000usize;
        while remaining > 0 {
            let take = remaining.min(chunk.len());
            hasher.update(&chunk[..take]);
            remaining -= take;
        }
        assert_eq!(
            hex(&hasher.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hmac_matches_rfc4231_vectors() {
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], &[b"Hi There"])),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: short key, message split across parts.
        assert_eq!(
            hex(&hmac_sha256(
                b"Jefe",
                &[b"what do ya want ", b"for nothing?"]
            )),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 6: key longer than one block (hashed down first).
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                &[b"Test Using Larger Than Block-Size Key - Hash Key First".as_slice()]
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn frame_seal_and_open_round_trip() {
        let key = ClusterKey::from_secret(b"test-cluster");
        // A hand-built frame: magic, kind 2, len 5, payload "hello".
        let mut frame = vec![b'C', b'G', 2, 0, 0, 0, 5];
        frame.extend_from_slice(b"hello");
        let sealed = key.seal(frame);
        assert_eq!(sealed.len(), 7 + 5 + MAC_LEN);
        // The header length now counts the trailer.
        assert_eq!(
            u32::from_be_bytes([sealed[3], sealed[4], sealed[5], sealed[6]]),
            (5 + MAC_LEN) as u32
        );
        assert_eq!(key.open(&sealed).expect("verifies"), b"hello");

        // Split-read shape: header and body in separate buffers.
        let mut body = sealed[7..].to_vec();
        key.open_split(&sealed[..7], &mut body).expect("verifies");
        assert_eq!(body, b"hello");
    }

    #[test]
    fn tampering_is_detected() {
        let key = ClusterKey::from_secret(b"test-cluster");
        let mut frame = vec![b'C', b'G', 2, 0, 0, 0, 5];
        frame.extend_from_slice(b"hello");
        let sealed = key.seal(frame);

        // Payload flip.
        let mut tampered = sealed.clone();
        tampered[8] ^= 0x01;
        assert_eq!(key.open(&tampered), Err(AuthError::BadMac));
        // Kind swap.
        let mut tampered = sealed.clone();
        tampered[2] = 3;
        assert_eq!(key.open(&tampered), Err(AuthError::BadMac));
        // Trailer flip.
        let mut tampered = sealed.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x80;
        assert_eq!(key.open(&tampered), Err(AuthError::BadMac));
        // Wrong key.
        let other = ClusterKey::from_secret(b"other-cluster");
        assert_eq!(other.open(&sealed), Err(AuthError::BadMac));
        // Too short.
        assert_eq!(key.open(&sealed[..10]), Err(AuthError::Truncated));
    }

    #[test]
    fn debug_never_prints_key_material() {
        let key = ClusterKey::from_secret(b"super-secret").with_previous(b"older-secret");
        let printed = format!("{key:?}");
        assert!(printed.starts_with("ClusterKey(fp="));
        assert!(!printed.contains("super-secret"));
        assert!(!printed.contains("older-secret"));
        for window in key.primary.windows(4) {
            assert!(!printed.contains(&hex(window)));
        }
        for window in key.previous.expect("rotation window open").windows(4) {
            assert!(!printed.contains(&hex(window)));
        }
    }

    #[test]
    fn rotation_window_accepts_either_key_but_signs_with_primary() {
        let old = ClusterKey::from_secret(b"key-a");
        let new = ClusterKey::from_secret(b"key-b");
        let rotating = ClusterKey::from_secret(b"key-b").with_previous(b"key-a");
        assert!(rotating.is_rotating());
        assert!(!new.is_rotating());

        let mut frame = vec![b'C', b'G', 2, 0, 0, 0, 5];
        frame.extend_from_slice(b"hello");

        // A frame signed with the OLD key verifies under the rotating key...
        let sealed_old = old.seal(frame.clone());
        assert_eq!(
            rotating.open(&sealed_old).expect("previous accepted"),
            b"hello"
        );
        let mut body = sealed_old[7..].to_vec();
        rotating
            .open_split(&sealed_old[..7], &mut body)
            .expect("previous accepted on the split path");
        // ...and so does one signed with the NEW key.
        let sealed_new = new.seal(frame.clone());
        assert_eq!(
            rotating.open(&sealed_new).expect("primary accepted"),
            b"hello"
        );

        // The rotating key SIGNS with its primary: a peer holding only the
        // new key verifies its output; a peer holding only the old one
        // cannot.
        let sealed_rotating = rotating.seal(frame.clone());
        assert_eq!(
            new.open(&sealed_rotating).expect("signed with primary"),
            b"hello"
        );
        assert_eq!(old.open(&sealed_rotating), Err(AuthError::BadMac));

        // A third key is still rejected by the rotating verifier.
        let sealed_other = ClusterKey::from_secret(b"key-c").seal(frame);
        assert_eq!(rotating.open(&sealed_other), Err(AuthError::BadMac));
    }

    #[test]
    fn from_env_reads_the_rotation_window() {
        // Env-var manipulation is process-global; this test owns both vars
        // and restores them, and is the only test touching them.
        std::env::set_var(CLUSTER_KEY_ENV, "env-new");
        std::env::set_var(CLUSTER_KEY_PREVIOUS_ENV, "env-old");
        let key = ClusterKey::from_env().expect("primary set");
        assert_eq!(
            key,
            ClusterKey::from_secret(b"env-new").with_previous(b"env-old")
        );
        std::env::remove_var(CLUSTER_KEY_PREVIOUS_ENV);
        let key = ClusterKey::from_env().expect("primary set");
        assert_eq!(key, ClusterKey::from_secret(b"env-new"));
        // A previous key alone enables nothing.
        std::env::remove_var(CLUSTER_KEY_ENV);
        std::env::set_var(CLUSTER_KEY_PREVIOUS_ENV, "env-old");
        assert!(ClusterKey::from_env().is_none());
        std::env::remove_var(CLUSTER_KEY_PREVIOUS_ENV);
    }
}
