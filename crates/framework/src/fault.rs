//! Deterministic fault injection for the transport and cluster layers.
//!
//! Distributed-systems failures are ordering bugs: a frame lost *between* a
//! request and its reply, a MAC corrupted on exactly the third push, a peer
//! partitioned for the window between two probes.  Reproducing them with real
//! packet loss is flaky; this module instead threads an optional
//! [`FaultPlan`] through the send paths of [`crate::transport`] and the
//! connect paths of [`crate::cluster`], so a test (see `tests/chaos.rs`) can
//! script *exact* failure sequences — "drop the 2nd server send, corrupt the
//! MAC of the 5th" — and assert the recovery contract deterministically.
//!
//! Two construction modes:
//!
//! * [`FaultPlan::scripted`] — an explicit `(site, step, action)` list; each
//!   injection site keeps its own step counter, so "the nth send" is exact
//!   and independent of scheduling on other sites;
//! * [`FaultPlan::seeded`] — a seeded xorshift stream decides per step
//!   whether (and which) fault fires, for soak-style runs (`loadgen
//!   --chaos`); the same seed replays the same fault sequence.
//!
//! Peer partitions are level-triggered rather than step-indexed: a partition
//! set via [`FaultPlan::partition`] makes every connect attempt to that
//! endpoint fail fast until [`FaultPlan::heal`] is called, which is how the
//! chaos tests simulate a dead-then-recovered shard without real process
//! boundaries.
//!
//! The hooks are `Option<Arc<FaultPlan>>` fields on
//! [`TransportConfig`](crate::transport::TransportConfig),
//! [`ClientConfig`](crate::ClientConfig) and
//! [`ReplicationConfig`](crate::ReplicationConfig), defaulting to `None`:
//! production builds pay one pointer check per send.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What a firing fault does to the operation it intercepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Silently discard the outbound frame (the peer never sees it).
    DropFrame,
    /// Sleep for the given duration before the operation proceeds.  Only
    /// honoured at blocking injection sites ([`FaultSite::ClientSend`],
    /// [`FaultSite::PeerConnect`]); on the reactor-side
    /// [`FaultSite::ServerSend`] it degrades to [`FaultAction::DropFrame`]
    /// (the reactor thread must never sleep).
    Delay(Duration),
    /// Close the connection out from under the operation.
    CloseConnection,
    /// Let the frame through with its MAC trailer (or, unkeyed, its last
    /// payload byte) flipped, so the receiver sees a tampered frame.
    CorruptMac,
}

/// Where in the stack a fault fires.  Each site keeps an independent step
/// counter, advanced once per intercepted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A server reactor queueing an outbound frame on a connection.
    ServerSend,
    /// A blocking client ([`TcpTransport`](crate::TcpTransport)) about to
    /// send a request frame.
    ClientSend,
    /// A replication or probe task dialing a peer.
    PeerConnect,
}

impl FaultSite {
    const COUNT: usize = 3;

    fn index(self) -> usize {
        match self {
            FaultSite::ServerSend => 0,
            FaultSite::ClientSend => 1,
            FaultSite::PeerConnect => 2,
        }
    }
}

/// Seeded pseudo-random fault source (xorshift64*; no `rand` dependency so
/// the framework stays self-contained).
#[derive(Debug, Clone)]
struct SeededFaults {
    seed: u64,
    /// Probability of a fault per step, in parts per million.
    rate_ppm: u64,
}

impl SeededFaults {
    fn action_for(&self, site: FaultSite, step: u64) -> Option<FaultAction> {
        // Mix seed, site and step through xorshift64* so per-site streams are
        // independent but fully determined by the seed.
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(step)
            .wrapping_add((site.index() as u64) << 32)
            | 1;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let r = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
        if r % 1_000_000 >= self.rate_ppm {
            return None;
        }
        Some(match (r >> 32) % 4 {
            0 => FaultAction::DropFrame,
            1 => FaultAction::Delay(Duration::from_millis(1 + (r >> 40) % 5)),
            2 => FaultAction::CloseConnection,
            _ => FaultAction::CorruptMac,
        })
    }
}

/// A deterministic schedule of injected faults; see the module docs.
///
/// Cheap to share: the send-path check is one atomic increment plus (for
/// scripted plans) a sorted-slice lookup.
#[derive(Debug)]
pub struct FaultPlan {
    steps: [AtomicU64; FaultSite::COUNT],
    /// Scripted `(site, step, action)` triples, sorted for binary search.
    scripted: Vec<(FaultSite, u64, FaultAction)>,
    seeded: Option<SeededFaults>,
    partitioned: Mutex<HashSet<String>>,
}

impl FaultPlan {
    fn new(scripted: Vec<(FaultSite, u64, FaultAction)>, seeded: Option<SeededFaults>) -> Self {
        let mut scripted = scripted;
        scripted.sort_by_key(|(site, step, _)| (site.index(), *step));
        Self {
            steps: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            scripted,
            seeded,
            partitioned: Mutex::new(HashSet::new()),
        }
    }

    /// A plan firing exactly the given `(site, step, action)` triples; step
    /// numbers are 0-based per site.
    pub fn scripted(steps: impl IntoIterator<Item = (FaultSite, u64, FaultAction)>) -> Self {
        Self::new(steps.into_iter().collect(), None)
    }

    /// A plan that never fires on its own (steps still advance); useful as a
    /// pure partition switch.
    pub fn empty() -> Self {
        Self::new(Vec::new(), None)
    }

    /// A seeded pseudo-random plan: each intercepted operation faults with
    /// probability `rate` (clamped to `[0, 1]`), the action chosen by the
    /// same deterministic stream.  Equal seeds replay equal sequences.
    pub fn seeded(seed: u64, rate: f64) -> Self {
        let rate_ppm = (rate.clamp(0.0, 1.0) * 1_000_000.0) as u64;
        Self::new(Vec::new(), Some(SeededFaults { seed, rate_ppm }))
    }

    /// Advance `site`'s step counter and return the fault (if any) scheduled
    /// for the step just consumed.
    pub fn check(&self, site: FaultSite) -> Option<FaultAction> {
        let step = self.steps[site.index()].fetch_add(1, Ordering::Relaxed);
        if let Ok(found) = self
            .scripted
            .binary_search_by_key(&(site.index(), step), |(s, n, _)| (s.index(), *n))
        {
            return Some(self.scripted[found].2);
        }
        self.seeded
            .as_ref()
            .and_then(|seeded| seeded.action_for(site, step))
    }

    /// Steps consumed so far at `site` (how many operations were
    /// intercepted, faulted or not).
    pub fn steps_taken(&self, site: FaultSite) -> u64 {
        self.steps[site.index()].load(Ordering::Relaxed)
    }

    /// Partition `endpoint`: every subsequent connect attempt to it fails
    /// fast until [`FaultPlan::heal`] is called.
    pub fn partition(&self, endpoint: &str) {
        self.partitioned
            .lock()
            .expect("fault partition set poisoned")
            .insert(endpoint.to_string());
    }

    /// Lift a partition set by [`FaultPlan::partition`].
    pub fn heal(&self, endpoint: &str) {
        self.partitioned
            .lock()
            .expect("fault partition set poisoned")
            .remove(endpoint);
    }

    /// Whether connects to `endpoint` are currently partitioned.
    pub fn is_partitioned(&self, endpoint: &str) -> bool {
        self.partitioned
            .lock()
            .expect("fault partition set poisoned")
            .contains(endpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_steps_fire_exactly_once_per_site() {
        let plan = FaultPlan::scripted([
            (FaultSite::ServerSend, 1, FaultAction::DropFrame),
            (FaultSite::ClientSend, 0, FaultAction::CorruptMac),
        ]);
        // ServerSend: step 0 clean, step 1 fires, step 2 clean.
        assert_eq!(plan.check(FaultSite::ServerSend), None);
        assert_eq!(
            plan.check(FaultSite::ServerSend),
            Some(FaultAction::DropFrame)
        );
        assert_eq!(plan.check(FaultSite::ServerSend), None);
        // Sites count independently: ClientSend step 0 fires even though
        // ServerSend already consumed three steps.
        assert_eq!(
            plan.check(FaultSite::ClientSend),
            Some(FaultAction::CorruptMac)
        );
        assert_eq!(plan.check(FaultSite::ClientSend), None);
        assert_eq!(plan.steps_taken(FaultSite::ServerSend), 3);
        assert_eq!(plan.steps_taken(FaultSite::ClientSend), 2);
        assert_eq!(plan.steps_taken(FaultSite::PeerConnect), 0);
    }

    #[test]
    fn seeded_streams_replay_and_respect_rate_bounds() {
        let a = FaultPlan::seeded(7, 0.5);
        let b = FaultPlan::seeded(7, 0.5);
        let run: Vec<_> = (0..64).map(|_| a.check(FaultSite::ClientSend)).collect();
        let replay: Vec<_> = (0..64).map(|_| b.check(FaultSite::ClientSend)).collect();
        assert_eq!(run, replay, "same seed replays the same fault sequence");
        let fired = run.iter().filter(|f| f.is_some()).count();
        assert!(fired > 0, "a 50% rate over 64 steps fires at least once");
        assert!(fired < 64, "...and spares at least one step");
        // Rate 0 never fires; rate 1 always fires.
        let never = FaultPlan::seeded(7, 0.0);
        assert!((0..64).all(|_| never.check(FaultSite::ServerSend).is_none()));
        let always = FaultPlan::seeded(7, 1.0);
        assert!((0..64).all(|_| always.check(FaultSite::ServerSend).is_some()));
    }

    #[test]
    fn partitions_are_level_triggered() {
        let plan = FaultPlan::empty();
        assert!(!plan.is_partitioned("127.0.0.1:9000"));
        plan.partition("127.0.0.1:9000");
        assert!(plan.is_partitioned("127.0.0.1:9000"));
        assert!(!plan.is_partitioned("127.0.0.1:9001"));
        plan.heal("127.0.0.1:9000");
        assert!(!plan.is_partitioned("127.0.0.1:9000"));
    }
}
